//! Offline before/after performance probe for the hash-consed expression
//! arena and the compiled guard runtime.
//!
//! The criterion benches (`crates/bench/benches/algebra.rs`) are the
//! high-resolution instrument, but they need the registry (criterion) and
//! minutes of runtime. This binary measures the same four before/after
//! pairs with plain `std::time` medians and writes the machine-readable
//! `BENCH_algebra.json` summary the repository keeps at its root:
//!
//! - `residuate`: tree residuation vs arena residuation with the
//!   persistent `(ExprId, Literal)` memo;
//! - `machine_compile`: per-dependency tree compilation vs the shared-
//!   arena `compile_all` path;
//! - `e2e_schedule`: a full distributed run of the `pipeline10` spec
//!   under the symbolic dependency runtime vs the precompiled automata;
//! - `product_reach`: wfcheck-style product-automaton reachability with
//!   `Vec<StateId>` state keys vs packed `u64` keys.
//!
//! With `--obs-out PATH` the probe additionally measures the flight
//! recorder's end-to-end cost — the same `e2e_schedule` run with
//! `ExecConfig::record` off vs on — and writes the delta to `PATH`
//! (`BENCH_obs.json`), pinning the zero-cost-when-disabled claim.
//!
//! With `--monitor-out PATH` it does the same for the online runtime
//! monitors (`ExecConfig::monitor` off vs on, no recorder either way) and
//! writes `BENCH_monitor.json`: armed monitors ride the event-sink
//! stream, disarmed ones must add no measurable hot-path cost.
//!
//! Usage: `perfprobe [--quick] [--spec PATH] [--out PATH] [--obs-out PATH]
//! [--monitor-out PATH]`.

use constrained_events::algebra::{
    normalize, residuate, DependencyMachine, Expr, ExprArena, Literal, ProductMachine, StateBudget,
};
use constrained_events::{DepRuntime, ExecConfig, WorkflowBuilder};
use std::hint::black_box;
use std::time::Instant;

/// One before/after measurement.
struct Entry {
    name: &'static str,
    baseline_ns: u128,
    optimized_ns: u128,
}

impl Entry {
    fn speedup(&self) -> f64 {
        if self.optimized_ns == 0 {
            f64::INFINITY
        } else {
            self.baseline_ns as f64 / self.optimized_ns as f64
        }
    }
}

/// Median wall time of `iters` runs of `f`.
fn median_ns(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn locate_spec(explicit: Option<String>) -> String {
    if let Some(p) = explicit {
        return p;
    }
    let candidates = [
        "examples/specs/pipeline10.wf",
        concat!(env!("CARGO_MANIFEST_DIR"), "/examples/specs/pipeline10.wf"),
    ];
    for c in candidates {
        if std::path::Path::new(c).exists() {
            return c.to_string();
        }
    }
    candidates[0].to_string()
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_algebra.json");
    let mut obs_out: Option<String> = None;
    let mut monitor_out: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out PATH"),
            "--obs-out" => obs_out = Some(args.next().expect("--obs-out PATH")),
            "--monitor-out" => monitor_out = Some(args.next().expect("--monitor-out PATH")),
            "--spec" => spec_path = Some(args.next().expect("--spec PATH")),
            other => panic!("unknown argument {other:?}"),
        }
    }
    let spec_path = locate_spec(spec_path);
    let src = std::fs::read_to_string(&spec_path)
        .unwrap_or_else(|e| panic!("cannot read {spec_path}: {e}"));
    let workflow = WorkflowBuilder::from_spec(&src).expect("spec parses").build();
    let deps: Vec<Expr> = workflow.spec.dependencies.iter().map(normalize).collect();
    let mut lits: Vec<Literal> = deps
        .iter()
        .flat_map(|d| d.symbols())
        .flat_map(|s| [Literal::pos(s), Literal::neg(s)])
        .collect();
    lits.sort();
    lits.dedup();
    let (algebra_iters, e2e_iters) = if quick { (5, 3) } else { (61, 15) };
    let mut entries = Vec::new();

    // ---- residuate: tree vs persistent-arena memo ----
    let baseline_ns = median_ns(algebra_iters, || {
        let mut acc = 0usize;
        for d in &deps {
            for &l in &lits {
                acc += residuate(d, l).node_count();
            }
        }
        black_box(acc);
    });
    let mut arena = ExprArena::new();
    let ids: Vec<_> = deps.iter().map(|d| arena.intern(d)).collect();
    let optimized_ns = median_ns(algebra_iters, || {
        let mut acc = 0usize;
        for &id in &ids {
            for &l in &lits {
                acc += arena.residuate(id, l).index();
            }
        }
        black_box(acc);
    });
    entries.push(Entry { name: "residuate", baseline_ns, optimized_ns });

    // ---- machine compilation: per-dep tree vs shared arena ----
    let baseline_ns = median_ns(algebra_iters, || {
        let n: usize =
            deps.iter().map(|d| DependencyMachine::compile_tree_reference(d).state_count()).sum();
        black_box(n);
    });
    let optimized_ns = median_ns(algebra_iters, || {
        let n: usize =
            DependencyMachine::compile_all(&deps).iter().map(DependencyMachine::state_count).sum();
        black_box(n);
    });
    entries.push(Entry { name: "machine_compile", baseline_ns, optimized_ns });

    // ---- machine compilation, replicated dependencies ----
    // The arena path's structural dedup: a workflow instantiating the
    // same dependency pattern n times compiles it once. The tree path
    // recompiles every copy.
    let replicated: Vec<Expr> = (0..deps.len()).map(|_| deps[0].clone()).collect();
    let baseline_ns = median_ns(algebra_iters, || {
        let n: usize = replicated
            .iter()
            .map(|d| DependencyMachine::compile_tree_reference(d).state_count())
            .sum();
        black_box(n);
    });
    let optimized_ns = median_ns(algebra_iters, || {
        let n: usize = DependencyMachine::compile_all(&replicated)
            .iter()
            .map(DependencyMachine::state_count)
            .sum();
        black_box(n);
    });
    entries.push(Entry { name: "machine_compile_dedup", baseline_ns, optimized_ns });

    // ---- end-to-end schedule: symbolic vs compiled dependency runtime ----
    let run = |runtime: DepRuntime| {
        let mut config = ExecConfig::seeded(1);
        config.max_steps = 5_000_000;
        config.dep_runtime = runtime;
        let report = constrained_events::run_workflow(&workflow.spec, config);
        assert!(report.all_satisfied(), "{} must satisfy its dependencies", workflow.name);
        report.steps
    };
    let baseline_ns = median_ns(e2e_iters, || {
        black_box(run(DepRuntime::Symbolic));
    });
    let optimized_ns = median_ns(e2e_iters, || {
        black_box(run(DepRuntime::Compiled));
    });
    entries.push(Entry { name: "e2e_schedule", baseline_ns, optimized_ns });

    // ---- flight-recorder overhead: recorder off vs on ----
    // Same e2e run; `record: None` must cost nothing (the Obs handle is a
    // no-op), `record: Some(..)` pays for span construction and the ring.
    // Agent-less events get an attempt at t=1 (as `wftrace record` does)
    // so the measured run carries real protocol traffic.
    if let Some(obs_path) = &obs_out {
        let mut driven = workflow.spec.clone();
        for f in &mut driven.free_events {
            if f.attrs.controllable && f.attempt_after.is_none() {
                f.attempt_after = Some(1);
            }
        }
        let run_recorded = |record: Option<obs::RecordConfig>| {
            let mut config = ExecConfig::seeded(1);
            config.max_steps = 5_000_000;
            config.record = record;
            let report = constrained_events::run_workflow(&driven, config);
            assert!(report.all_satisfied(), "{} must satisfy its dependencies", workflow.name);
            (report.steps, report.recording.map_or(0, |r| r.events.len()))
        };
        let off_ns = median_ns(e2e_iters, || {
            black_box(run_recorded(None));
        });
        let on_ns = median_ns(e2e_iters, || {
            black_box(run_recorded(Some(obs::RecordConfig::default())));
        });
        let (_, recorded_events) = run_recorded(Some(obs::RecordConfig::default()));
        let overhead = if off_ns == 0 { f64::INFINITY } else { on_ns as f64 / off_ns as f64 };
        let json = format!(
            "{{\n  \"spec\": {:?},\n  \"quick\": {quick},\n  \"recorder_off_ns\": {off_ns},\n  \"recorder_on_ns\": {on_ns},\n  \"overhead\": {overhead:.3},\n  \"recorded_events\": {recorded_events}\n}}\n",
            workflow.name
        );
        std::fs::write(obs_path, &json).unwrap_or_else(|e| panic!("cannot write {obs_path}: {e}"));
        println!("wrote {obs_path}");
        println!(
            "recorder        off      {off_ns:>12} ns   on        {on_ns:>12} ns   overhead {overhead:.3}x ({recorded_events} events)"
        );
    }

    // ---- online-monitor overhead: monitors off vs armed ----
    // Same e2e run, no flight recorder either way: `monitor: None` leaves
    // the event-sink stream empty (one `enabled()` branch per would-be
    // span), `monitor: Some(..)` steps every dependency machine and guard
    // check online.
    if let Some(mon_path) = &monitor_out {
        let mut driven = workflow.spec.clone();
        for f in &mut driven.free_events {
            if f.attrs.controllable && f.attempt_after.is_none() {
                f.attempt_after = Some(1);
            }
        }
        let run_monitored = |armed: bool| {
            let mut config = ExecConfig::seeded(1);
            config.max_steps = 5_000_000;
            config.monitor = armed.then(constrained_events::MonitorConfig::default);
            let report = constrained_events::run_workflow(&driven, config);
            assert!(report.all_satisfied(), "{} must satisfy its dependencies", workflow.name);
            assert!(report.alerts.is_empty(), "clean run must raise no alerts");
            let (facts, checks) =
                report.monitor.as_ref().map_or((0, 0), |m| (m.facts, m.guard_checks));
            (report.steps, facts, checks)
        };
        let off_ns = median_ns(e2e_iters, || {
            black_box(run_monitored(false));
        });
        let on_ns = median_ns(e2e_iters, || {
            black_box(run_monitored(true));
        });
        let (_, facts, guard_checks) = run_monitored(true);
        let overhead = if off_ns == 0 { f64::INFINITY } else { on_ns as f64 / off_ns as f64 };
        let json = format!(
            "{{\n  \"spec\": {:?},\n  \"quick\": {quick},\n  \"monitor_off_ns\": {off_ns},\n  \"monitor_on_ns\": {on_ns},\n  \"overhead\": {overhead:.3},\n  \"facts\": {facts},\n  \"guard_checks\": {guard_checks}\n}}\n",
            workflow.name
        );
        std::fs::write(mon_path, &json).unwrap_or_else(|e| panic!("cannot write {mon_path}: {e}"));
        println!("wrote {mon_path}");
        println!(
            "monitor         off      {off_ns:>12} ns   armed     {on_ns:>12} ns   overhead {overhead:.3}x ({facts} facts, {guard_checks} guard checks)"
        );
    }

    // ---- product reachability: wide Vec keys vs packed u64 keys ----
    let machines = DependencyMachine::compile_all(&deps);
    let budget_limit = 1 << 20;
    let baseline_ns = median_ns(algebra_iters, || {
        let mut pm = ProductMachine::from_machines_wide(machines.clone());
        let mut budget = StateBudget::new(budget_limit);
        black_box(pm.reach_accepting(None, &mut budget).found());
    });
    let optimized_ns = median_ns(algebra_iters, || {
        let mut pm = ProductMachine::from_machines(machines.clone());
        let mut budget = StateBudget::new(budget_limit);
        black_box(pm.reach_accepting(None, &mut budget).found());
    });
    entries.push(Entry { name: "product_reach", baseline_ns, optimized_ns });

    // ---- report ----
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"spec\": {:?},\n", workflow.name));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": {:?}, \"baseline_ns\": {}, \"optimized_ns\": {}, \"speedup\": {:.2}}}{}\n",
            e.name,
            e.baseline_ns,
            e.optimized_ns,
            e.speedup(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
    for e in &entries {
        println!(
            "{:<16} baseline {:>12} ns   optimized {:>12} ns   speedup {:.2}x",
            e.name,
            e.baseline_ns,
            e.optimized_ns,
            e.speedup()
        );
    }
}
