//! Fault-conformance driver: run every workflow spec through the
//! standard fault-plan matrix across a band of seeds and audit each run
//! for guard safety, view consistency, convergence, liveness and
//! determinism. Exits nonzero on the first nonconforming scenario.
//!
//! ```text
//! conformance [--seeds N] [--max-steps N] [--parallel] [SPEC.wf ...]
//! ```
//!
//! With no spec arguments, sweeps `examples/specs/*.wf`. Liveness is
//! only demanded of specs the static analyzer reports error-free — a
//! spec wfcheck already rejects is run for safety alone.
//!
//! `--parallel` switches to the tenth audit instead of the fault
//! matrix: every spec runs fault-free on the work-stealing parallel
//! executor across worker counts 1/2/4, held to the single-queue
//! simulator oracle (`testkit::conformance::audit_parallel_conformance`)
//! for each seed.
//!
//! `--monitor-equiv` switches to the eleventh audit: every spec runs
//! each (seed, fault plan) scenario twice — fused monitor stepping vs
//! the legacy sink-driven oracle — and the two monitor reports must
//! agree (`testkit::conformance::audit_monitor_equivalence`).

use analyze::{analyze_workflow, AnalyzeOptions, Severity};
use constrained_events::{ExecConfig, LoweredWorkflow, ReliableConfig, WorkflowBuilder};
use std::path::PathBuf;
use std::process::ExitCode;
use testkit::conformance::{
    audit_monitor_equivalence, audit_parallel_conformance, explore, standard_plans,
};

struct Args {
    seeds: u64,
    max_steps: u64,
    parallel: bool,
    monitor_equiv: bool,
    specs: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 10,
        max_steps: 2_000_000,
        parallel: false,
        monitor_equiv: false,
        specs: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                args.seeds = v.parse().map_err(|e| format!("--seeds {v}: {e}"))?;
            }
            "--max-steps" => {
                let v = it.next().ok_or("--max-steps needs a value")?;
                args.max_steps = v.parse().map_err(|e| format!("--max-steps {v}: {e}"))?;
            }
            "--parallel" => args.parallel = true,
            "--monitor-equiv" => args.monitor_equiv = true,
            "--help" | "-h" => {
                println!(
                    "usage: conformance [--seeds N] [--max-steps N] [--parallel] \
                     [--monitor-equiv] [SPEC.wf ...]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            path => args.specs.push(PathBuf::from(path)),
        }
    }
    if args.specs.is_empty() {
        let dir = PathBuf::from("examples/specs");
        let mut found: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "wf"))
            .collect();
        found.sort();
        args.specs = found;
    }
    if args.specs.is_empty() {
        return Err("no .wf specs found".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::from(2);
        }
    };

    let plan_count = standard_plans(0).len() as u64;
    let mut total_failures = 0usize;
    for path in &args.specs {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("conformance: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let lowered = match LoweredWorkflow::parse(&src) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("conformance: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        // Liveness is a theorem about statically clean workflows only.
        let verdict = analyze_workflow(&lowered, &AnalyzeOptions::default());
        let expect_live = verdict.count(Severity::Error) == 0;

        let workflow = match WorkflowBuilder::from_spec(&src) {
            Ok(b) => b.build(),
            Err(e) => {
                eprintln!("conformance: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let mut config = ExecConfig::seeded(0);
        config.reliable = Some(ReliableConfig::default());
        config.max_steps = args.max_steps;

        if args.monitor_equiv {
            // Eleventh audit: fused monitor stepping vs the sink-driven
            // oracle over the full (seed x fault plan) matrix.
            let mut failures = Vec::new();
            for seed in 0..args.seeds {
                let mut cfg = config.clone();
                cfg.sim.seed = seed;
                for (plan_name, plan) in standard_plans(seed ^ 0x5EED) {
                    failures.extend(
                        audit_monitor_equivalence(&workflow.spec, &cfg, &plan)
                            .into_iter()
                            .map(|f| format!("[{}/{plan_name}/seed {seed}] {f}", workflow.name)),
                    );
                }
            }
            let scenarios = args.seeds * plan_count;
            if failures.is_empty() {
                println!(
                    "conformance: {:<12} {} monitor-equivalence scenarios ok \
                     ({} seeds x {} plans, fused == sink oracle)",
                    workflow.name, scenarios, args.seeds, plan_count
                );
            } else {
                for f in &failures {
                    eprintln!("FAIL {f}");
                }
                eprintln!(
                    "conformance: {:<12} {}/{} monitor-equivalence scenarios nonconforming",
                    workflow.name,
                    failures.len(),
                    scenarios
                );
                total_failures += failures.len();
            }
            continue;
        }

        if args.parallel {
            // Tenth audit: fault-free parallel runs across worker counts,
            // held to the single-queue oracle per seed. The raw (unwrapped)
            // transport is the parallel runtime's scope.
            const WORKERS: &[usize] = &[1, 2, 4];
            let mut failures = Vec::new();
            for seed in 0..args.seeds {
                let mut cfg = config.clone();
                cfg.reliable = None;
                cfg.sim.seed = seed;
                let (fails, run) = audit_parallel_conformance(&workflow.spec, &cfg, WORKERS);
                failures.extend(
                    fails.into_iter().map(|f| format!("[{}/seed {seed}] {f}", workflow.name)),
                );
                if expect_live && !run.report.all_satisfied() {
                    failures.push(format!(
                        "[{}/seed {seed}] parallel run left dependencies unsatisfied",
                        workflow.name
                    ));
                }
            }
            let scenarios = args.seeds * WORKERS.len() as u64;
            if failures.is_empty() {
                println!(
                    "conformance: {:<12} {} parallel scenarios ok ({} seeds x workers {WORKERS:?})",
                    workflow.name, scenarios, args.seeds
                );
            } else {
                for f in &failures {
                    eprintln!("FAIL {f}");
                }
                eprintln!(
                    "conformance: {:<12} {}/{} parallel scenarios nonconforming",
                    workflow.name,
                    failures.len(),
                    scenarios
                );
                total_failures += failures.len();
            }
            continue;
        }

        let failures = explore(&workflow.name, &workflow.spec, config, 0..args.seeds, expect_live);
        let scenarios = args.seeds * plan_count;
        if failures.is_empty() {
            println!(
                "conformance: {:<12} {} scenarios ok ({} seeds x {} plans, liveness {})",
                workflow.name,
                scenarios,
                args.seeds,
                plan_count,
                if expect_live { "checked" } else { "waived: static errors" }
            );
        } else {
            for f in &failures {
                eprintln!("FAIL {f}");
            }
            eprintln!(
                "conformance: {:<12} {}/{} scenarios nonconforming",
                workflow.name,
                failures.len(),
                scenarios
            );
            total_failures += failures.len();
        }
    }
    if total_failures > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
