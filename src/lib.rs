//! Repository facade for the reproduction of Singh's ICDE 1996 paper
//! *Synthesizing Distributed Constrained Events from Transactional
//! Workflow Specifications*. Re-exports the [`constrained_events`] crate;
//! see README.md, DESIGN.md and EXPERIMENTS.md at the repository root,
//! and the `examples/` directory for runnable walkthroughs.

pub use constrained_events::*;
