//! Acceptance for the static interference analyzer: certified shard
//! plans on the example specifications, shard-pinned execution with plan
//! stats in the metrics snapshot, dynamic validation of independence
//! claims across the standard fault matrix, and the mutation harness
//! proving a falsified claim is detected.

use analyze::{analyze_workflow, AnalyzeOptions, ShardPlan};
use constrained_events::{ExecConfig, Literal, LoweredWorkflow, ReliableConfig, WorkflowBuilder};
use event_algebra::ShardClass;
use std::sync::Arc;
use testkit::conformance::{audit_schedule_races, audit_schedule_races_against, explore};

fn plan_for(path: &str) -> (ShardPlan, LoweredWorkflow) {
    let src = std::fs::read_to_string(path).expect(path);
    let w = LoweredWorkflow::parse(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
    let r = analyze_workflow(&w, &AnalyzeOptions::default());
    (r.shard_plan.expect("the interference pass always emits a plan"), w)
}

#[test]
fn pipeline10_plan_is_maximally_parallel_and_refines_lemma5() {
    let (plan, w) = plan_for("examples/specs/pipeline10.wf");
    assert_eq!(plan.class_count(), 10, "arrows commute: every stage is its own shard");
    assert_eq!(plan.max_class_size(), 1);
    assert!(plan.refines_site_coupling, "singleton classes trivially refine the quotient");
    let sym = |n: &str| w.table.lookup(n).unwrap();
    // Adjacent stages commute but are guard-coupled — ordered by the
    // □/◇ protocol, not by colocation — so they are not independent.
    assert!(plan.commutes(sym("e0"), sym("e1")));
    assert!(!plan.is_independent(sym("e0"), sym("e1")));
    // Stages sharing no dependency are fully independent.
    assert!(plan.is_independent(sym("e0"), sym("e5")));
    assert!(plan.is_independent(sym("e2"), sym("e9")));
    // Every cross-class pair sharing a machine carries an obligation.
    assert!(!plan.obligations.is_empty());
}

#[test]
fn travel_plan_colocates_the_noncommutable_commit_pair() {
    let (plan, w) = plan_for("examples/specs/travel.wf");
    let buy = w.table.lookup("buy.commit").unwrap();
    let book = w.table.lookup("book.commit").unwrap();
    // d2's sequence `book::commit . buy::commit` reaches ⊤ one way and 0
    // the other: the commits must share a shard.
    assert!(!plan.commutes(buy, book));
    assert!(plan.colocated(buy, book));
    assert!(plan.max_class_size() >= 2);
    assert!(plan.refines_site_coupling, "colocation stays inside the coupling component");
}

#[test]
fn pinned_plan_drives_placement_and_surfaces_metrics() {
    let (plan, _) = plan_for("examples/specs/pipeline10.wf");
    let src = std::fs::read_to_string("examples/specs/pipeline10.wf").unwrap();
    let wf = WorkflowBuilder::from_spec(&src).unwrap().build();
    let mut config = ExecConfig::seeded(3);
    config.shard_plan = Some(Arc::new(plan));
    config.monitor = Some(constrained_events::MonitorConfig::default());
    let report = wf.run_with(config);
    assert!(report.all_satisfied(), "{report:#?}");
    assert_eq!(report.metrics.gauge("shard.classes", &[]), Some(10));
    assert_eq!(report.metrics.gauge("shard.max_class_size", &[]), Some(1));
    assert_eq!(report.metrics.gauge("shard.pinned_classes", &[]), Some(0));
    assert!(report.metrics.gauge("shard.independent_pairs", &[]).unwrap_or(0) > 0);
    // The monitor learned the shard boundaries; a clean run never sees a
    // cross-shard divergence.
    let mrep = report.monitor.as_ref().expect("monitors armed");
    assert_eq!(mrep.cross_shard_divergence, 0);
}

#[test]
fn independence_audit_green_across_the_fault_matrix() {
    for path in ["examples/specs/pipeline10.wf", "examples/specs/travel.wf"] {
        let src = std::fs::read_to_string(path).expect(path);
        let wf = WorkflowBuilder::from_spec(&src).expect(path).build();
        let mut config = ExecConfig::seeded(0);
        config.reliable = Some(ReliableConfig::default());
        config.max_steps = 2_000_000;
        let failures = explore(&wf.name, &wf.spec, config, 0..2, true);
        assert!(failures.is_empty(), "{failures:?}");
    }
}

#[test]
fn mutation_forged_independence_on_travel_is_detected() {
    let src = std::fs::read_to_string("examples/specs/travel.wf").unwrap();
    let wf = WorkflowBuilder::from_spec(&src).unwrap().build();
    let buy = wf.spec.table.lookup("buy.commit").unwrap();
    let book = wf.spec.table.lookup("book.commit").unwrap();
    let pair = event_algebra::shard::canonical(buy, book);
    let forged = ShardPlan {
        classes: vec![
            ShardClass { id: 0, events: vec![pair.0], site: None },
            ShardClass { id: 1, events: vec![pair.1], site: None },
        ],
        commuting: vec![pair],
        independent: vec![pair],
        ..ShardPlan::default()
    };
    // Find a seed whose realized trace has the two commits adjacent (the
    // simulator is deterministic, so this is stable), then prove the
    // transposition replay rejects the forged claim while the honest
    // re-derived plan stays green on the very same run.
    let mut detected = false;
    for seed in 0..50 {
        let report = wf.run(seed);
        assert!(report.all_satisfied(), "seed {seed}: {report:#?}");
        assert_eq!(
            audit_schedule_races(&wf.spec, &report),
            Vec::<String>::new(),
            "honest plan must pass on seed {seed}"
        );
        let ev = report.maximal_trace.events().to_vec();
        let adjacent =
            ev.windows(2).any(|w| w[0] == Literal::pos(book) && w[1] == Literal::pos(buy));
        if adjacent {
            let failures = audit_schedule_races_against(&wf.spec, &report, &forged);
            assert!(!failures.is_empty(), "seed {seed}: forged claim went undetected");
            assert!(failures[0].contains("schedule race"), "{failures:?}");
            detected = true;
            break;
        }
    }
    assert!(detected, "no seed realized the commits adjacently");
}
