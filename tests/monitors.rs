//! Acceptance for the online runtime monitors: arming them on a clean
//! travel run yields zero alerts and all-satisfied verdicts, the monitor
//! metrics land in the unified snapshot, and the causal trace query the
//! `wftrace query --from/--to` subcommand exposes — a concrete
//! happens-before path from an event's attempt to its occurrence — is
//! non-empty and verified edge by edge by DAG precedence.

use constrained_events::{DepVerdict, ExecConfig, MonitorConfig, WorkflowBuilder};
use obs::{recording::Dag, RecordConfig, SpanKind};

fn travel() -> constrained_events::Workflow {
    let src = std::fs::read_to_string("examples/specs/travel.wf").expect("travel.wf");
    WorkflowBuilder::from_spec(&src).expect("travel.wf parses").build()
}

#[test]
fn armed_monitors_stay_quiet_on_a_clean_travel_run() {
    let workflow = travel();
    let mut config = ExecConfig::seeded(3);
    config.monitor = Some(MonitorConfig::default());
    let report = workflow.run_with(config);
    assert!(report.all_satisfied(), "{report:?}");
    assert!(report.alerts.is_empty(), "{:?}", report.alerts);
    let mrep = report.monitor.as_ref().expect("monitors were armed");
    assert!(!mrep.has_violation(), "{mrep:?}");
    assert!(
        mrep.verdicts.iter().all(|v| *v == DepVerdict::Satisfied),
        "every dependency ends satisfied: {mrep:?}"
    );
    assert!(mrep.facts > 0, "the monitors observed the occurrence stream");
    assert!(mrep.guard_checks > 0, "gated firings were re-checked");
    // The monitor's counters surface through the unified metrics.
    assert_eq!(report.metrics.counter("monitor.facts", &[]), Some(mrep.facts));
    assert_eq!(report.metrics.counter("monitor.guard_checks", &[]), Some(mrep.guard_checks));
}

#[test]
fn disarmed_monitors_report_nothing() {
    let workflow = travel();
    let report = workflow.run(3);
    assert!(report.monitor.is_none());
    assert!(report.alerts.is_empty());
    assert_eq!(report.metrics.counter("monitor.facts", &[]), None);
}

#[test]
fn monitors_and_recorder_share_one_event_stream() {
    // Both subscribers on: the ring keeps the spans and the monitor sees
    // the same occurrences, so its fact count equals the recording's
    // `Occurred` spans net of crash-replay duplicates (none on a clean
    // run).
    let workflow = travel();
    let mut config = ExecConfig::seeded(3);
    config.record = Some(RecordConfig::default());
    config.monitor = Some(MonitorConfig::default());
    let report = workflow.run_with(config);
    let rec = report.recording.as_ref().expect("recording on");
    let occurred =
        rec.events.iter().filter(|e| matches!(e.kind, SpanKind::Occurred { .. })).count() as u64;
    let mrep = report.monitor.as_ref().expect("monitors armed");
    assert_eq!(mrep.facts, occurred, "monitor and recorder saw the same stream");
    assert!(report.alerts.is_empty(), "{:?}", report.alerts);
    // Ring never overflowed, and the overflow counter says so too.
    assert_eq!(rec.dropped, 0);
    assert_eq!(report.metrics.counter("obs.recorder.dropped_spans", &[]), Some(0));
}

#[test]
fn attempt_to_commit_has_a_concrete_verified_causal_path() {
    // The `wftrace query --from attempt:buy::commit --to
    // occurred:buy::commit` acceptance path, at the library level.
    let workflow = travel();
    let mut config = ExecConfig::seeded(3);
    config.record = Some(RecordConfig::default());
    let report = workflow.run_with(config);
    let rec = report.recording.as_ref().expect("recording on");
    let commit = rec.lit_by_name("buy::commit").expect("buy.commit is interned");
    let attempt = rec
        .events
        .iter()
        .find(|e| matches!(e.kind, SpanKind::Attempt { lit } if lit == commit))
        .expect("buy.commit was attempted");
    let fired = rec
        .events
        .iter()
        .find(|e| matches!(e.kind, SpanKind::Occurred { lit, .. } if lit == commit))
        .expect("buy.commit occurred");
    let dag = Dag::new(rec);
    let path = dag.path(attempt.id, fired.id).expect("attempt causally precedes the firing");
    assert!(path.len() >= 2, "a real path, not a degenerate one: {path:?}");
    assert_eq!(*path.first().unwrap(), attempt.id);
    assert_eq!(*path.last().unwrap(), fired.id);
    for w in path.windows(2) {
        assert!(dag.precedes(w[0], w[1]), "edge {} -> {} unverified", w[0], w[1]);
    }
    // And no path runs backwards in causality.
    assert!(dag.path(fired.id, attempt.id).is_none());
}
