//! Acceptance: every example spec, run under the acceptance fault plan
//! (20% drop + 20% duplication + a partition that heals), reaches
//! `all_satisfied()` with zero false guard firings across 50 seeds, and
//! identical scenarios produce byte-identical journals.

use constrained_events::{DepRuntime, ExecConfig, FaultPlan, ReliableConfig, WorkflowBuilder};
use sim::SiteId;
use testkit::conformance::{check_determinism, check_run};

const SEEDS: u64 = 50;

fn acceptance_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0xACCE).drop_rate(0.2).duplicate_rate(0.2).partition(
        SiteId(0),
        SiteId(1),
        20,
        400,
    )
}

fn hardened(seed: u64) -> ExecConfig {
    let mut config = ExecConfig::seeded(seed);
    config.reliable = Some(ReliableConfig::default());
    config.max_steps = 2_000_000;
    config
}

fn accept(spec_path: &str) {
    let src = std::fs::read_to_string(spec_path).expect(spec_path);
    let workflow = WorkflowBuilder::from_spec(&src).expect(spec_path).build();
    for seed in 0..SEEDS {
        let run = check_run(&workflow.spec, hardened(seed), acceptance_plan(seed), true);
        assert!(run.is_conformant(), "{} seed {seed}: {:?}", workflow.name, run.failures);
    }
    // Replay determinism on a sample of the band (every run above was
    // already audited; journal comparison doubles the cost per seed).
    for seed in [0, SEEDS / 2, SEEDS - 1] {
        let failures = check_determinism(&workflow.spec, hardened(seed), acceptance_plan(seed));
        assert!(failures.is_empty(), "{} seed {seed}: {failures:?}", workflow.name);
    }
}

#[test]
fn pipeline10_conforms_under_acceptance_faults() {
    accept("examples/specs/pipeline10.wf");
}

#[test]
fn travel_conforms_under_acceptance_faults() {
    accept("examples/specs/travel.wf");
}

/// The symbolic residuation path stays selectable as the reference
/// oracle, and the default compiled-automaton runtime is observationally
/// identical to it: same conformance verdicts and, scenario for
/// scenario, the very same occurrence sequence.
#[test]
fn compiled_runtime_matches_symbolic_oracle_under_faults() {
    for spec_path in ["examples/specs/pipeline10.wf", "examples/specs/travel.wf"] {
        let src = std::fs::read_to_string(spec_path).expect(spec_path);
        let workflow = WorkflowBuilder::from_spec(&src).expect(spec_path).build();
        for seed in 0..10 {
            let mut symbolic = hardened(seed);
            symbolic.dep_runtime = DepRuntime::Symbolic;
            let oracle = check_run(&workflow.spec, symbolic, acceptance_plan(seed), true);
            assert!(
                oracle.is_conformant(),
                "{} seed {seed} (symbolic): {:?}",
                workflow.name,
                oracle.failures
            );
            let fast = check_run(&workflow.spec, hardened(seed), acceptance_plan(seed), true);
            assert!(
                fast.is_conformant(),
                "{} seed {seed} (compiled): {:?}",
                workflow.name,
                fast.failures
            );
            assert_eq!(
                fast.report.occurrences, oracle.report.occurrences,
                "{} seed {seed}: compiled and symbolic runtimes diverged",
                workflow.name
            );
        }
    }
}
