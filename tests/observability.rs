//! Acceptance for the flight-recorder observability layer: recording the
//! travel workflow yields a justification chain for `buy::commit` whose
//! every node happens-before the firing, the causal audit stays green
//! across the standard fault matrix, and the unified metrics snapshot
//! subsumes the net/fault counters on every run — recorder on or off.

use constrained_events::{ExecConfig, ReliableConfig, WorkflowBuilder};
use obs::{explain, recording::Dag, RecordConfig};
use testkit::conformance::{check_run, standard_plans};

fn travel() -> constrained_events::Workflow {
    let src = std::fs::read_to_string("examples/specs/travel.wf").expect("travel.wf");
    WorkflowBuilder::from_spec(&src).expect("travel.wf parses").build()
}

fn recording_config(seed: u64) -> ExecConfig {
    let mut config = ExecConfig::seeded(seed);
    config.record = Some(RecordConfig::default());
    config
}

#[test]
fn travel_buy_commit_has_a_verified_justification_chain() {
    let workflow = travel();
    let report = workflow.run_with(recording_config(3));
    assert!(report.all_satisfied(), "{report:?}");
    let rec = report.recording.as_ref().expect("recording on");
    assert_eq!(rec.dropped, 0, "ring must not overflow on travel");

    let ex = explain(rec, "buy::commit", None).expect("buy::commit occurred");
    assert!(ex.verified, "chain must verify:\n{}", ex.render(rec));
    assert!(!ex.chain.is_empty(), "the commit is not a root cause");
    // Re-check the invariant independently of `Explanation::verified`:
    // every chain node strictly precedes the firing in the DAG.
    let dag = Dag::new(rec);
    for (_, node) in &ex.chain {
        assert!(
            dag.precedes(node.id, ex.firing.id),
            "{} does not precede the firing {}",
            node.id,
            ex.firing.id
        );
    }
    // The ordering core of the paper's Example 4: the non-compensatable
    // buy commits only after book commits, and the chain shows the fact
    // flow that enforced it.
    let text = ex.render(rec);
    assert!(text.contains("book.commit"), "chain misses the ordering fact:\n{text}");
}

#[test]
fn causal_audit_green_across_fault_matrix() {
    let workflow = travel();
    let mut config = recording_config(17);
    config.reliable = Some(ReliableConfig::default());
    config.max_steps = 2_000_000;
    for (name, plan) in standard_plans(17) {
        let run = check_run(&workflow.spec, config.clone(), plan, true);
        assert!(run.is_conformant(), "{name}: {:?}", run.failures);
        let rec = run.report.recording.as_ref().expect("recording on");
        assert!(!rec.events.is_empty(), "{name}: recorder captured nothing");
    }
}

#[test]
fn ring_overflow_truncates_but_stays_causally_sound() {
    // Regression: a ring far too small for the travel workflow must
    // overflow loudly — `dropped` counted in the recording AND surfaced
    // as the `obs.recorder.dropped_spans` metric — while the causal
    // audit still accepts the truncated DAG (dangling parents are
    // excused only because the recording admits to the loss).
    let workflow = travel();
    let mut config = ExecConfig::seeded(3);
    config.record = Some(RecordConfig::with_capacity(32));
    let report = workflow.run_with(config);
    assert!(report.all_satisfied(), "{report:?}");
    let rec = report.recording.as_ref().expect("recording on");
    assert!(rec.dropped > 0, "capacity 32 must overflow on travel");
    assert_eq!(rec.events.len(), 32, "ring keeps exactly its capacity");
    assert_eq!(
        report.metrics.counter("obs.recorder.dropped_spans", &[]),
        Some(rec.dropped),
        "dropped spans must reach the metrics snapshot"
    );
    assert_eq!(obs::causal_audit(rec), Vec::<String>::new());
}

#[test]
fn sampled_recording_keeps_safety_spans_exact() {
    // Deterministic sampling: non-safety spans are elided by the
    // seed-derived coin, safety-class spans survive untouched, the
    // elision is counted, and the thinned DAG still passes the causal
    // audit (span ids are allocated before the coin flip, so parent
    // edges stay stable whatever the rate).
    let workflow = travel();
    let full = workflow.run_with(recording_config(3));
    let frec = full.recording.as_ref().expect("recording on");
    let mut config = ExecConfig::seeded(3);
    config.record = Some(RecordConfig::default().sampled(4, 0xC0FFEE));
    let sampled = workflow.run_with(config);
    let srec = sampled.recording.as_ref().expect("recording on");
    assert!(srec.sampled_out > 0, "rate 1/4 must elide something on travel");
    assert_eq!(
        srec.events.len() as u64 + srec.sampled_out,
        frec.events.len() as u64,
        "every span is either kept or counted as sampled out"
    );
    let safety = |rec: &obs::Recording| rec.events.iter().filter(|e| e.kind.is_safety()).count();
    assert_eq!(safety(srec), safety(frec), "safety-class spans are never sampled");
    assert_eq!(sampled.metrics.counter("obs.recorder.sampled_out", &[]), Some(srec.sampled_out));
    assert_eq!(obs::causal_audit(srec), Vec::<String>::new());
}

#[test]
fn metrics_snapshot_subsumes_net_and_fault_stats() {
    let workflow = travel();
    // Recorder OFF: the metrics registry must still be populated, and
    // the fault-free path must report zeroed (not absent) fault stats.
    let report = workflow.run(5);
    assert!(report.recording.is_none());
    assert_eq!(report.fault_stats, Some(sim::FaultStats::default()));
    let m = &report.metrics;
    assert_eq!(m.counter("net.sent_total", &[]), Some(report.net.sent_total));
    assert_eq!(m.counter("faults.dropped", &[]), Some(0));
    assert_eq!(m.counter("run.steps", &[]), Some(report.steps));
    let commits: u64 = report
        .actor_stats
        .iter()
        .filter(|(sym, _)| workflow.spec.table.name(**sym).is_some_and(|n| n.ends_with(".commit")))
        .map(|(_, st)| st.granted)
        .sum();
    let metric_commits = m.counter("actor.granted", &[("event", "buy.commit")]).unwrap_or(0)
        + m.counter("actor.granted", &[("event", "book.commit")]).unwrap_or(0);
    assert_eq!(metric_commits, commits);

    // Recorder ON: the recording embeds the identical snapshot.
    let on = workflow.run_with(recording_config(5));
    let rec = on.recording.as_ref().expect("recording on");
    assert_eq!(rec.metrics, on.metrics);
    // JSON round trip of a real run (not just the generated ones).
    let back = obs::Recording::parse(&rec.to_json_string()).expect("parses");
    assert_eq!(&back, rec);
}
