//! Integration test X3: the travel workflow of Example 4 across seeds,
//! executors and schedulers — every realized run satisfies all three
//! dependencies, the commit order of dependency 2 always holds, and the
//! compensation of dependency 3 triggers exactly when buy fails.

use constrained_events::agents::library::{rda_transaction, typical_application};
use constrained_events::{Engine, Script, Workflow, WorkflowBuilder};

fn build(buy_script: &[&str]) -> Workflow {
    let mut b = WorkflowBuilder::new("travel");
    let buy = rda_transaction("buy", b.table());
    let book = rda_transaction("book", b.table());
    let cancel = typical_application("cancel", b.table());
    b.add_agent(0, buy, Script::of(buy_script));
    b.add_agent(1, book, Script::of(&["commit"]));
    b.add_agent(2, cancel, Script::of(&[]));
    b.dependency_str("~buy::start + book::start").unwrap();
    b.dependency_str("~buy::commit + book::commit . buy::commit").unwrap();
    b.dependency_str("~book::commit + buy::commit + cancel::start").unwrap();
    b.build()
}

fn pos_of(report: &constrained_events::RunReport, wf: &Workflow, name: &str) -> Option<usize> {
    report
        .trace
        .events()
        .iter()
        .position(|l| l.is_pos() && wf.spec.table.name(l.symbol()) == Some(name))
}

#[test]
fn success_path_across_seeds() {
    for seed in 0..40 {
        let wf = build(&["start", "commit"]);
        let report = wf.run(seed);
        assert!(report.all_satisfied(), "seed {seed}: {report:#?}");
        let b = pos_of(&report, &wf, "book.commit")
            .unwrap_or_else(|| panic!("seed {seed}: book did not commit: {}", report.trace));
        let a = pos_of(&report, &wf, "buy.commit")
            .unwrap_or_else(|| panic!("seed {seed}: buy did not commit: {}", report.trace));
        assert!(b < a, "seed {seed}: dependency 2 order violated: {}", report.trace);
        assert!(
            pos_of(&report, &wf, "cancel.start").is_none(),
            "seed {seed}: spurious compensation: {}",
            report.trace
        );
    }
}

#[test]
fn failure_path_triggers_compensation_across_seeds() {
    for seed in 0..40 {
        let wf = build(&["start", "abort"]);
        let report = wf.run(seed);
        assert!(report.all_satisfied(), "seed {seed}: {report:#?}");
        assert!(
            pos_of(&report, &wf, "cancel.start").is_some(),
            "seed {seed}: compensation missing: {}",
            report.trace
        );
        assert!(
            pos_of(&report, &wf, "buy.commit").is_none(),
            "seed {seed}: aborted buy committed?!"
        );
    }
}

#[test]
fn centralized_schedulers_agree_on_correctness() {
    for seed in 0..10 {
        for engine in [Engine::Symbolic, Engine::Automata] {
            let wf = build(&["start", "commit"]);
            let report = wf.run_centralized(seed, engine);
            assert!(report.all_satisfied(), "seed {seed} {engine:?}: {report:#?}");
            if let (Some(b), Some(a)) =
                (pos_of(&report, &wf, "book.commit"), pos_of(&report, &wf, "buy.commit"))
            {
                assert!(b < a, "seed {seed} {engine:?}: order violated");
            }
        }
    }
}

#[test]
fn threaded_executor_is_safe_on_travel() {
    for round in 0..5 {
        let wf = build(&["start", "commit"]);
        let report = wf.run_threaded(round);
        assert!(report.all_satisfied(), "round {round}: {report:#?}");
        if let (Some(b), Some(a)) =
            (pos_of(&report, &wf, "book.commit"), pos_of(&report, &wf, "buy.commit"))
        {
            assert!(b < a, "round {round}: order violated: {}", report.trace);
        }
    }
}

#[test]
fn guards_match_paper_closed_forms() {
    let wf = build(&["start", "commit"]);
    // Dependency 2 alone is c_book < c_buy restricted — conjoined guards:
    // buy.commit waits for book.commit's occurrence.
    assert_eq!(wf.guard_text("buy.commit").unwrap(), "[]book.commit");
    // buy.start needs the workflow's book.start eventuality (Example 11
    // shape).
    assert_eq!(wf.guard_text("buy.start").unwrap(), "<>book.start");
    assert_eq!(wf.guard_text("book.start").unwrap(), "T");
}
