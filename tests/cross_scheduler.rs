//! Cross-scheduler integration: the same workflow specifications run
//! under the distributed event-centric scheduler and under both
//! centralized baseline engines; each must realize only dependency-
//! satisfying traces, and the two centralized engines must agree
//! decision-for-decision.

use constrained_events::{
    run_centralized, run_workflow, CentralConfig, Engine, EventAttrs, ExecConfig, FreeEventSpec,
    WorkflowSpec,
};
use event_algebra::{Expr, Literal, SymbolId, SymbolTable};
use sim::SiteId;
use testkit::Gen;

fn spec(deps: Vec<Expr>, nsyms: u32) -> WorkflowSpec {
    let mut table = SymbolTable::new();
    let free_events = (0..nsyms)
        .map(|i| {
            table.intern(&format!("e{i}"));
            FreeEventSpec {
                site: SiteId(i),
                lit: Literal::pos(SymbolId(i)),
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            }
        })
        .collect();
    WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
}

#[test]
fn all_schedulers_enforce_klein_pipelines() {
    for seed in 0..15 {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let deps = testkit::klein_pipeline(&syms);
        let d = run_workflow(&spec(deps.clone(), 4), ExecConfig::seeded(seed));
        assert!(d.all_satisfied(), "distributed seed {seed}: {d:#?}");
        for engine in [Engine::Symbolic, Engine::Automata] {
            let c = run_centralized(&spec(deps.clone(), 4), CentralConfig::new(seed, engine));
            assert!(c.all_satisfied(), "central {engine:?} seed {seed}: {c:#?}");
        }
    }
}

#[test]
fn engines_agree_on_random_workflows() {
    for gen_seed in 0..15 {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let mut g = Gen::new(gen_seed);
        let deps = g.workflow(&syms, 2, 2);
        for seed in 0..5 {
            let a =
                run_centralized(&spec(deps.clone(), 4), CentralConfig::new(seed, Engine::Symbolic));
            let b =
                run_centralized(&spec(deps.clone(), 4), CentralConfig::new(seed, Engine::Automata));
            assert_eq!(a.trace, b.trace, "gen {gen_seed} seed {seed}");
            assert_eq!(a.satisfied, b.satisfied, "gen {gen_seed} seed {seed}");
        }
    }
}

#[test]
fn distributed_and_centralized_are_both_safe_on_random_workflows() {
    for gen_seed in 0..15 {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let mut g = Gen::new(gen_seed + 100);
        let deps = g.workflow(&syms, 2, 2);
        for seed in 0..5 {
            let d = run_workflow(&spec(deps.clone(), 4), ExecConfig::seeded(seed));
            if d.unresolved.is_empty() && d.broken_promises.is_empty() {
                assert!(d.all_satisfied(), "dist gen {gen_seed} seed {seed}: {d:#?}");
            }
            let c =
                run_centralized(&spec(deps.clone(), 4), CentralConfig::new(seed, Engine::Symbolic));
            if c.unresolved.is_empty() {
                assert!(c.all_satisfied(), "central gen {gen_seed} seed {seed}: {c:#?}");
            }
        }
    }
}

#[test]
fn centralized_decisions_route_remotely_distributed_stay_local() {
    // The architectural claim (C1) in miniature: with events on distinct
    // sites and the scheduler on site 0, centralized attempts always cross
    // the network; distributed actors decide next to their agents.
    let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
    let deps = testkit::klein_pipeline(&syms);
    let d = run_workflow(&spec(deps.clone(), 4), ExecConfig::seeded(3));
    let c = run_centralized(&spec(deps, 4), CentralConfig::new(3, Engine::Symbolic));
    assert!(d.all_satisfied() && c.all_satisfied());
    // Both ran; message counts are recorded for the bench harness.
    assert!(d.net.sent_total > 0 && c.net.sent_total > 0);
}
