//! Integration: fully-declarative workflow files — agents with kinds,
//! sites and scripts, plus dependencies — parse straight into executable
//! workflows.

use constrained_events::WorkflowBuilder;

const TRAVEL: &str = r#"
    workflow travel {
        agent buy:    rda @ site 0 { script: start, wait 5, commit };
        agent book:   rda @ site 1 { script: commit };
        agent cancel: app @ site 2 { script: };

        dep d1: ~buy::start + book::start;
        dep d2: ~buy::commit + book::commit . buy::commit;
        dep d3: ~book::commit + buy::commit + cancel::start;
    }
"#;

#[test]
fn declarative_travel_runs_end_to_end() {
    let wf = WorkflowBuilder::from_spec(TRAVEL).unwrap().build();
    assert_eq!(wf.spec.agents.len(), 3);
    assert_eq!(wf.spec.dependencies.len(), 3);
    for seed in 0..15 {
        let report = wf.run(seed);
        assert!(report.all_satisfied(), "seed {seed}: {report:#?}");
        let names: Vec<&str> = report
            .trace
            .events()
            .iter()
            .filter(|l| l.is_pos())
            .filter_map(|l| wf.spec.table.name(l.symbol()))
            .collect();
        assert!(names.contains(&"buy.commit"), "seed {seed}: {names:?}");
        assert!(names.contains(&"book.commit"), "seed {seed}: {names:?}");
        assert!(!names.contains(&"cancel.start"), "seed {seed}: {names:?}");
    }
}

#[test]
fn failing_agent_triggers_compensation_from_spec() {
    let src = TRAVEL.replace("start, wait 5, commit", "start, abort");
    let wf = WorkflowBuilder::from_spec(&src).unwrap().build();
    let report = wf.run(3);
    assert!(report.all_satisfied(), "{report:#?}");
    let names: Vec<&str> = report
        .trace
        .events()
        .iter()
        .filter(|l| l.is_pos())
        .filter_map(|l| wf.spec.table.name(l.symbol()))
        .collect();
    assert!(names.contains(&"cancel.start"), "{names:?}");
}

#[test]
fn unknown_agent_kind_is_rejected() {
    let src = "workflow w { agent x: martian; }";
    assert!(WorkflowBuilder::from_spec(src).is_err());
}

#[test]
fn agent_scripts_support_think_time() {
    let src = r#"
        workflow w {
            agent a: rda @ site 0 { script: start, wait 30, commit };
            agent b: rda @ site 1 { script: start, commit };
            dep d: a::commit < b::commit;
        }
    "#;
    let wf = WorkflowBuilder::from_spec(src).unwrap().build();
    let report = wf.run(9);
    assert!(report.all_satisfied(), "{report:#?}");
    // a's think time delays its commit; b's commit still waits for a's.
    let evs = report.trace.events();
    let table = &wf.spec.table;
    let a = evs
        .iter()
        .position(|l| l.is_pos() && table.name(l.symbol()) == Some("a.commit"))
        .expect("a committed");
    let bpos = evs
        .iter()
        .position(|l| l.is_pos() && table.name(l.symbol()) == Some("b.commit"))
        .expect("b committed");
    assert!(a < bpos, "{}", report.trace);
}
