//! Integration: the declarative pipeline end to end — parse a workflow
//! specification file, compile guards, and execute.

use constrained_events::{GuardScope, WorkflowBuilder};
use guard::CompiledWorkflow;

const SPEC: &str = r#"
    workflow demo {
        // The `<`-ordered trio shares site 1 (non-commutable pairs must
        // colocate — WF032 would reject a cross-site placement); the
        // triggerable archive lives on its own site.
        event submit              @ site 1;
        event approve             @ site 1;
        event reject  { immediate } @ site 1;
        event archive { triggerable } @ site 2;

        // approval only after submission; archive once approved.
        dep d1: submit < approve;
        dep d2: approve -> archive;
        dep d3: submit < reject;
    }
"#;

#[test]
fn spec_file_compiles_and_guards_match_paper_shapes() {
    let wf = WorkflowBuilder::from_spec(SPEC).unwrap().build();
    assert_eq!(wf.name, "demo");
    assert_eq!(wf.spec.dependencies.len(), 3);
    assert_eq!(wf.spec.free_events.len(), 4);
    // d1 is Klein's <: G(submit) = ¬approve, G(approve) = ◇~submit + □submit
    // (Examples 9.6 and 9.8) — conjoined with d3's analogue for submit.
    let g_approve = wf.guard_text("approve").unwrap();
    assert!(g_approve.contains("[]submit"), "{g_approve}");
    let compiled = CompiledWorkflow::compile(&wf.spec.dependencies, GuardScope::Mentioning);
    assert_eq!(compiled.machines.len(), 3);
}

#[test]
fn wfcheck_passes_run_against_the_spec() {
    // The compile-phase check of the paper's Section 6: verify the spec
    // statically before building an executable workflow from it.
    let lowered = speclang::LoweredWorkflow::parse(SPEC).unwrap();
    let report = analyze::analyze_workflow(&lowered, &analyze::AnalyzeOptions::default());
    assert_eq!(report.workflow.as_deref(), Some("demo"));
    // Nothing contradictory, dead, or forced in the demo pipeline…
    assert_eq!(report.count(analyze::Severity::Error), 0, "{}", report.render_text(None));
    assert!(report.dead.is_empty() && report.forced.is_empty());
    // …but the spec places coupled events on different sites, so the
    // Lemma 5 independence precondition fails and strict mode rejects it.
    assert!(report.has_code("WF011"), "{}", report.render_text(None));
    assert_eq!(report.exit_code(false), 0);
    assert_eq!(report.exit_code(true), 1);
}

#[test]
fn parametrized_deps_flow_to_templates() {
    let src = r#"
        workflow p {
            event probe;
            dep d1: ~f[y] + g[y];
            dep d2: probe -> probe2;
        }
    "#;
    let wf = WorkflowBuilder::from_spec(src).unwrap().build();
    assert_eq!(wf.templates.len(), 1);
    assert_eq!(wf.spec.dependencies.len(), 1);
    assert_eq!(wf.templates[0].vars().len(), 1);
}

#[test]
fn spec_driven_execution_satisfies_dependencies() {
    // Attach attempt times by rebuilding free events through the builder
    // API (the spec file declares shapes; the harness decides schedules).
    let mut b = WorkflowBuilder::new("exec");
    let submit =
        b.add_free_event(0, "submit", constrained_events::EventAttrs::controllable(), Some(1));
    let approve =
        b.add_free_event(1, "approve", constrained_events::EventAttrs::controllable(), Some(1));
    b.dependency_spec("submit < approve").unwrap();
    let wf = b.build();
    for seed in 0..20 {
        let r = wf.run(seed);
        assert!(r.all_satisfied(), "seed {seed}: {r:#?}");
        let evs = r.trace.events();
        if let (Some(s), Some(a)) =
            (evs.iter().position(|&l| l == submit), evs.iter().position(|&l| l == approve))
        {
            assert!(s < a, "seed {seed}: {}", r.trace);
        }
    }
}
