#!/usr/bin/env bash
# Tier-1 gate: everything a merge must pass. Requires registry access for
# the dev-dependencies (proptest, rand); in network-restricted
# environments run scripts/shadow-check.sh instead, which mirrors the
# registry-free crates and runs the same build/test/clippy/fmt steps.
#
# `check.sh --faults` runs the fault-conformance tier instead: the
# `conformance` driver sweeps every example spec through the standard
# fault-plan matrix (clean, drop20, dup20, jitter, partition, crash,
# chaos) on fixed seeds with a hard step budget. Budgeted to finish well
# under a minute.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

if [ "${1:-}" = "--faults" ]; then
    echo "==> cargo build --release --bin conformance"
    cargo build --release --bin conformance
    echo "==> conformance over examples/specs/*.wf x fault matrix"
    "$REPO/target/release/conformance" --seeds 8 --max-steps 2000000 \
        "$REPO"/examples/specs/*.wf
    echo "==> fault tier passed"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> wfcheck --deny warnings over example specs"
WFCHECK="$REPO/target/release/wfcheck"
specs=("$REPO"/examples/specs/*.wf)
"$WFCHECK" --deny warnings "${specs[@]}"

echo "==> wftrace smoke: record travel -> explain -> export --chrome"
WFTRACE="$REPO/target/release/wftrace"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
"$WFTRACE" record --spec "$REPO/examples/specs/travel.wf" \
    --out "$TRACE_TMP/travel.trace.json" --seed 3
"$WFTRACE" explain --event buy::commit "$TRACE_TMP/travel.trace.json" \
    | grep -q "chain verified"
"$WFTRACE" audit "$TRACE_TMP/travel.trace.json"
"$WFTRACE" export --chrome --out "$TRACE_TMP/travel.chrome.json" \
    "$TRACE_TMP/travel.trace.json"
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['traceEvents'], 'empty trace'" \
    "$TRACE_TMP/travel.chrome.json"

echo "==> tier-1 gate passed"
