#!/usr/bin/env bash
# Tier-1 gate: everything a merge must pass. Requires registry access for
# the dev-dependencies (proptest, rand); in network-restricted
# environments run scripts/shadow-check.sh instead, which mirrors the
# registry-free crates and runs the same build/test/clippy/fmt steps.
#
# `check.sh --faults` runs the fault-conformance tier instead: the
# `conformance` driver sweeps every example spec through the standard
# fault-plan matrix (clean, drop20, dup20, jitter, partition, crash,
# chaos) on fixed seeds with a hard step budget. Budgeted to finish well
# under a minute. Since the conformance harness arms the online monitors
# by default, this tier also proves zero false alerts under faults.
#
# `check.sh --monitors` runs the runtime-verification tier: record the
# travel workflow, replay the recording through the derived dependency
# and guard monitors (`wftrace monitor` must exit clean), and walk a
# causal path from the buy-commit attempt to its firing (`wftrace query
# --from/--to` must verify every hop by happens-before precedence).
#
# `check.sh --scale` runs the multi-tenant scale tier: `perfprobe
# --scale-out` executes the quick open-loop fleet (120 mixed travel +
# pipeline10 instances through `dist::run_tenant`), every instance must
# quiesce, and the emitted JSON must match the committed
# BENCH_scale.json schema.
#
# `check.sh --obs` runs the always-on observability tier: the
# `conformance --monitor-equiv` audit proves the fused (scheduler-stepped)
# monitor path produces the same verdicts, counters, and alerts as the
# legacy sink-driven oracle across the standard fault-plan matrix on 20
# seeds, and `perfprobe --quick --monitor-out` drives a monitored
# multi-tenant fleet through `dist::run_tenant` (monitors armed on every
# instance), gating on zero violations. The committed full-run
# BENCH_monitor.json / BENCH_obs.json overhead ratios are enforced by the
# tier-1 gate below (<= 1.10 armed-monitor, <= 1.15 recorder).
#
# `check.sh --parallel` runs the work-stealing runtime tier: the
# `conformance --parallel` audit proves the sharded runtime reproduces
# the deterministic simulator oracle on the standard fault-free matrix,
# and `perfprobe --quick --parallel-out` runs the quick pipeline10
# fleet, gating on the emitted JSON's schema and a sane modeled
# core-scaling curve. The committed full-run BENCH_parallel.json is
# schema- and threshold-checked by the tier-1 gate below.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

if [ "${1:-}" = "--monitors" ]; then
    echo "==> cargo build --release --bin wftrace"
    cargo build --release --bin wftrace
    WFTRACE="$REPO/target/release/wftrace"
    TRACE_TMP="$(mktemp -d)"
    trap 'rm -rf "$TRACE_TMP"' EXIT
    echo "==> record travel -> wftrace monitor (must be alert-free)"
    "$WFTRACE" record --spec "$REPO/examples/specs/travel.wf" \
        --out "$TRACE_TMP/travel.trace.json" --seed 3
    "$WFTRACE" monitor "$TRACE_TMP/travel.trace.json" > "$TRACE_TMP/monitor.out"
    grep -q "alerts: none" "$TRACE_TMP/monitor.out"
    echo "==> wftrace query: causal path attempt:buy::commit -> occurred:buy::commit"
    "$WFTRACE" query --from attempt:buy::commit --to occurred:buy::commit \
        "$TRACE_TMP/travel.trace.json" > "$TRACE_TMP/query.out"
    grep -q "edges verified by happens-before precedence" "$TRACE_TMP/query.out"
    echo "==> monitor tier passed"
    exit 0
fi

if [ "${1:-}" = "--scale" ]; then
    echo "==> cargo build --release --bin perfprobe"
    cargo build --release --bin perfprobe
    SCALE_TMP="$(mktemp -d)"
    trap 'rm -rf "$SCALE_TMP"' EXIT
    echo "==> perfprobe --quick --scale-out (120-instance mixed fleet)"
    "$REPO/target/release/perfprobe" --quick --scale-out "$SCALE_TMP/BENCH_scale.json"
    python3 - "$SCALE_TMP/BENCH_scale.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
required = {"spec", "quick", "instances", "events", "shards", "quiesced",
            "exhausted", "makespan", "fire_p50", "fire_p99",
            "instances_per_sec", "events_per_sec"}
missing = required - data.keys()
assert not missing, f"missing keys {sorted(missing)}"
assert data["exhausted"] == 0, "a fleet instance ran out of budget"
assert data["quiesced"] == data["instances"], "not every instance quiesced"
print("scale fleet ok:", data["instances"], "instances,", data["events"], "events")
PY
    echo "==> scale tier passed"
    exit 0
fi

if [ "${1:-}" = "--parallel" ]; then
    echo "==> cargo build --release --bin conformance --bin perfprobe"
    cargo build --release --bin conformance --bin perfprobe
    echo "==> conformance --parallel (sharded runtime vs simulator oracle)"
    "$REPO/target/release/conformance" --parallel
    PAR_TMP="$(mktemp -d)"
    trap 'rm -rf "$PAR_TMP"' EXIT
    echo "==> perfprobe --quick --parallel-out (80-instance pipeline10 fleet)"
    "$REPO/target/release/perfprobe" --quick --parallel-out "$PAR_TMP/BENCH_parallel.json"
    python3 - "$PAR_TMP/BENCH_parallel.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
required = {"spec", "quick", "instances", "events", "shards", "rounds",
            "max_round_width", "wall_ns", "busy_ns", "merge_ns",
            "speedup_4_vs_1", "sweep"}
missing = required - data.keys()
assert not missing, f"missing keys {sorted(missing)}"
sweep = {entry["workers"]: entry["modeled_ns"] for entry in data["sweep"]}
assert set(sweep) == {1, 2, 4, 8}, f"unexpected worker sweep {sorted(sweep)}"
assert all(sweep[a] >= sweep[b] for a, b in [(1, 2), (2, 4), (4, 8)]), \
    "modeled makespan must not grow with more workers"
assert data["speedup_4_vs_1"] > 1.3, \
    f"quick fleet shows no core scaling: {data['speedup_4_vs_1']}"
print("parallel fleet ok:", data["instances"], "instances,",
      data["events"], "events, 4-worker speedup", data["speedup_4_vs_1"])
PY
    echo "==> parallel tier passed"
    exit 0
fi

if [ "${1:-}" = "--obs" ]; then
    echo "==> cargo build --release --bin conformance --bin perfprobe"
    cargo build --release --bin conformance --bin perfprobe
    echo "==> conformance --monitor-equiv (fused monitor vs sink oracle, 20 seeds)"
    "$REPO/target/release/conformance" --monitor-equiv --seeds 20 \
        "$REPO/examples/specs/travel.wf" "$REPO/examples/specs/pipeline10.wf"
    OBS_TMP="$(mktemp -d)"
    trap 'rm -rf "$OBS_TMP"' EXIT
    echo "==> perfprobe --quick --monitor-out (monitored tenant-fleet smoke)"
    "$REPO/target/release/perfprobe" --quick --monitor-out "$OBS_TMP/BENCH_monitor.json"
    python3 - "$OBS_TMP/BENCH_monitor.json" <<'PY'
import json, sys
data = json.load(open(sys.argv[1]))
fleet = data["monitored_fleet"]
assert fleet["monitor_violations"] == 0, "monitored fleet raised violations"
assert fleet["instances"] > 0 and fleet["events"] > 0, "empty monitored fleet"
assert fleet["monitor_facts"] > 0, "armed monitors recorded no facts"
print("monitored fleet ok:", fleet["instances"], "instances,",
      fleet["events"], "events,", fleet["monitor_facts"], "monitor facts")
PY
    echo "==> obs tier passed"
    exit 0
fi

if [ "${1:-}" = "--faults" ]; then
    echo "==> cargo build --release --bin conformance"
    cargo build --release --bin conformance
    echo "==> conformance over examples/specs/*.wf x fault matrix"
    "$REPO/target/release/conformance" --seeds 8 --max-steps 2000000 \
        "$REPO"/examples/specs/*.wf
    echo "==> fault tier passed"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo bench --no-run"
cargo bench --no-run

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> wfcheck --deny warnings over example specs"
WFCHECK="$REPO/target/release/wfcheck"
specs=("$REPO"/examples/specs/*.wf)
"$WFCHECK" --deny warnings "${specs[@]}"

echo "==> wfcheck --shard-plan golden diff (travel, pipeline10)"
PLAN_TMP="$(mktemp -d)"
for spec in travel pipeline10; do
    "$WFCHECK" --deny warnings --shard-plan "$PLAN_TMP/$spec.plan.json" \
        "$REPO/examples/specs/$spec.wf" > /dev/null
    diff -u "$REPO/examples/specs/golden/$spec.plan.json" "$PLAN_TMP/$spec.plan.json"
done
rm -rf "$PLAN_TMP"

echo "==> wftrace smoke: record travel -> explain -> export --chrome"
WFTRACE="$REPO/target/release/wftrace"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT
"$WFTRACE" record --spec "$REPO/examples/specs/travel.wf" \
    --out "$TRACE_TMP/travel.trace.json" --seed 3
"$WFTRACE" explain --event buy::commit "$TRACE_TMP/travel.trace.json" \
    | grep -q "chain verified"
"$WFTRACE" audit "$TRACE_TMP/travel.trace.json"
"$WFTRACE" export --chrome --out "$TRACE_TMP/travel.chrome.json" \
    "$TRACE_TMP/travel.trace.json"
python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['traceEvents'], 'empty trace'" \
    "$TRACE_TMP/travel.chrome.json"

echo "==> BENCH_*.json schema sanity"
python3 - "$REPO" <<'PY'
import json, os, sys
repo = sys.argv[1]
schemas = {
    "BENCH_algebra.json": {"spec", "quick", "benches"},
    "BENCH_obs.json": {"spec", "quick", "recorder_off_ns", "recorder_on_ns", "overhead"},
    "BENCH_monitor.json": {"spec", "quick", "monitor_off_ns", "monitor_on_ns",
                           "overhead", "oracle_on_ns", "oracle_overhead",
                           "monitored_fleet"},
    "BENCH_scale.json": {"spec", "quick", "instances", "events", "shards",
                         "quiesced", "exhausted", "makespan", "fire_p50",
                         "fire_p99", "instances_per_sec", "events_per_sec",
                         "monitors_armed", "monitor_violations", "per_shard"},
    "BENCH_parallel.json": {"spec", "quick", "instances", "events", "shards",
                            "rounds", "max_round_width", "wall_ns", "busy_ns",
                            "merge_ns", "metric", "speedup_4_vs_1", "sweep"},
}
for name, required in schemas.items():
    path = os.path.join(repo, name)
    with open(path) as fh:
        data = json.load(fh)
    missing = required - data.keys()
    assert not missing, f"{name}: missing keys {sorted(missing)}"
    for key in required:
        assert data[key] is not None, f"{name}: {key} is null"
    if name == "BENCH_parallel.json":
        assert data["speedup_4_vs_1"] >= 2.5, (
            f"committed parallel bench regressed: 4-worker speedup "
            f"{data['speedup_4_vs_1']} < 2.5")
    if name == "BENCH_monitor.json":
        assert data["overhead"] <= 1.10, (
            f"committed armed-monitor bench regressed: fused overhead "
            f"{data['overhead']} > 1.10")
        assert data["monitored_fleet"]["monitor_violations"] == 0, (
            "committed monitored fleet recorded violations")
    if name == "BENCH_obs.json":
        assert data["overhead"] <= 1.15, (
            f"committed recorder bench regressed: overhead "
            f"{data['overhead']} > 1.15")
    if name == "BENCH_scale.json":
        assert data["monitors_armed"] is True, "scale fleet ran unmonitored"
        assert data["monitor_violations"] == 0, "scale fleet recorded violations"
print("BENCH schemas ok:", ", ".join(sorted(schemas)))
PY

echo "==> tier-1 gate passed"
