#!/usr/bin/env bash
# Tier-1 gate: everything a merge must pass. Requires registry access for
# the dev-dependencies (proptest, rand); in network-restricted
# environments run scripts/shadow-check.sh instead, which mirrors the
# registry-free crates and runs the same build/test/clippy/fmt steps.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> wfcheck --deny warnings over example specs"
WFCHECK="$REPO/target/release/wfcheck"
specs=("$REPO"/examples/specs/*.wf)
"$WFCHECK" --deny warnings "${specs[@]}"

echo "==> tier-1 gate passed"
