#!/usr/bin/env bash
# Performance gate: build and run the offline perf probe, refreshing
# BENCH_algebra.json at the repository root with before/after medians for
# the arena/automaton hot paths (residuation, machine compilation, the
# end-to-end pipeline10 schedule, product reachability),
# BENCH_obs.json with the flight recorder's recorder-on vs recorder-off
# end-to-end delta, BENCH_monitor.json with the online runtime monitors'
# armed vs disarmed end-to-end delta (the fused scheduler-stepped path,
# the legacy sink-driven oracle for comparison, and a monitored
# multi-tenant fleet's throughput), and BENCH_scale.json with the
# multi-tenant engine's throughput on a 1,000-instance open-loop fleet
# (120 instances in --quick mode) run with monitors armed and per-shard
# telemetry recorded, and BENCH_parallel.json with the
# work-stealing runtime's modeled 1/2/4/8-worker core-scaling sweep on
# the pipeline10 fleet.
#
#   scripts/bench.sh            full probe (and criterion benches when the
#                               registry is reachable)
#   scripts/bench.sh --quick    smoke mode: few iterations, no criterion —
#                               what the shadow-check harness runs
#
# The criterion suite (crates/bench/benches/algebra.rs) is attempted only
# in full mode and only if the dev-dependency registry is available; the
# probe's JSON is the artifact either way, so offline environments still
# produce a complete BENCH_algebra.json.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO"

QUICK=""
if [ "${1:-}" = "--quick" ]; then
    QUICK="--quick"
fi

echo "==> cargo build --release --bin perfprobe"
cargo build --release --bin perfprobe

echo "==> perfprobe ${QUICK:-(full)}"
"$REPO/target/release/perfprobe" $QUICK \
    --spec "$REPO/examples/specs/pipeline10.wf" \
    --out "$REPO/BENCH_algebra.json" \
    --obs-out "$REPO/BENCH_obs.json" \
    --monitor-out "$REPO/BENCH_monitor.json"

echo "==> perfprobe --scale-out ${QUICK:-(full, 1000 instances)}"
"$REPO/target/release/perfprobe" $QUICK --scale-out "$REPO/BENCH_scale.json"

echo "==> perfprobe --parallel-out ${QUICK:-(full, 1000 instances)}"
"$REPO/target/release/perfprobe" $QUICK --parallel-out "$REPO/BENCH_parallel.json"

if [ -z "$QUICK" ]; then
    echo "==> cargo bench -p bench --bench algebra (skipped if registry unavailable)"
    cargo bench -p bench --bench algebra || \
        echo "criterion suite unavailable (offline registry); BENCH_algebra.json is complete"
fi

echo "==> bench gate done: $REPO/BENCH_algebra.json, $REPO/BENCH_obs.json, $REPO/BENCH_monitor.json, $REPO/BENCH_scale.json"
