#!/usr/bin/env bash
# Offline verification harness: mirrors the dependency-free crates into a
# shadow workspace (external registry deps stripped) so `cargo build` /
# `cargo test` / `cargo clippy` run without network access. Used when the
# crates-io mirror is unreachable; the real tier-1 gate is scripts/check.sh.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
SHADOW="${SHADOW_DIR:-/tmp/shadow-wf}"
CRATES=(event-algebra temporal guard speclang analyze wfcheck)

rm -rf "$SHADOW"
mkdir -p "$SHADOW/crates"

for c in "${CRATES[@]}"; do
    [ -d "$REPO/crates/$c" ] || continue
    cp -r "$REPO/crates/$c" "$SHADOW/crates/$c"
    # Strip dev-deps on registry crates (proptest, rand) and the test
    # files that use them.
    sed -i '/^proptest = /d; /^rand = /d' "$SHADOW/crates/$c/Cargo.toml"
done
rm -f "$SHADOW"/crates/*/tests/*_props.rs \
      "$SHADOW"/crates/*/tests/*_prop.rs \
      "$SHADOW"/crates/*/tests/laws.rs \
      "$SHADOW"/crates/*/tests/*.proptest-regressions
cp "$REPO/rustfmt.toml" "$SHADOW/rustfmt.toml" 2>/dev/null || true

members=""
for c in "${CRATES[@]}"; do
    [ -d "$SHADOW/crates/$c" ] && members="$members\"crates/$c\", "
done

cat > "$SHADOW/Cargo.toml" <<EOF
[workspace]
members = [$members]
resolver = "2"

[workspace.package]
version = "0.1.0"
edition = "2021"
license = "MIT"
repository = "https://example.org/constrained-events"

[workspace.dependencies]
event-algebra = { path = "crates/event-algebra" }
temporal = { path = "crates/temporal" }
guard = { path = "crates/guard" }
speclang = { path = "crates/speclang" }
analyze = { path = "crates/analyze" }

[workspace.lints.rust]
unsafe_code = "warn"

[workspace.lints.clippy]
all = { level = "warn", priority = -1 }
dbg_macro = "warn"
todo = "warn"
unimplemented = "warn"
large_types_passed_by_value = "warn"
semicolon_if_nothing_returned = "warn"
uninlined_format_args = "warn"
EOF

cd "$SHADOW"
cargo build --offline "$@"
cargo test --offline -q
