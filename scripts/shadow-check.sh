#!/usr/bin/env bash
# Offline verification harness: mirrors the workspace into a shadow
# directory where the registry dependencies (rand, proptest, crossbeam,
# parking_lot) are replaced by the API-compatible stubs in scripts/stubs/,
# so `cargo build` / `cargo test` run without network access. The stub
# RNGs sample different streams than the real crates, so shadow-run tests
# must assert structural properties, never exact sampled values. Property
# tests using rich proptest strategies are stripped (the stub only
# supports plain range strategies) and run only under the real tier-1
# gate, scripts/check.sh. The bench crate (criterion) is skipped.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
SHADOW="${SHADOW_DIR:-/tmp/shadow-wf}"
CRATES=(event-algebra temporal guard speclang analyze wfcheck obs monitor wftrace sim agent dist baseline testkit core)

rm -rf "$SHADOW"
mkdir -p "$SHADOW/crates" "$SHADOW/root"

for c in "${CRATES[@]}"; do
    [ -d "$REPO/crates/$c" ] || continue
    cp -r "$REPO/crates/$c" "$SHADOW/crates/$c"
done

# The root package (lib facade, integration tests, examples, bins).
for d in src tests examples; do
    [ -d "$REPO/$d" ] && cp -r "$REPO/$d" "$SHADOW/root/$d"
done
sed -n '/^\[package\]/,$p' "$REPO/Cargo.toml" > "$SHADOW/root/Cargo.toml"

# The registry stubs.
cp -r "$REPO/scripts/stubs" "$SHADOW/stubs"

# Strip the property-test files that need real proptest strategies
# (prop::collection, prop_oneof, any::<T>); the simple-range fault
# property tests stay and run against the stub.
rm -f "$SHADOW/crates/event-algebra/tests/laws.rs" \
      "$SHADOW/crates/event-algebra/tests/arena_oracle.rs" \
      "$SHADOW/crates/temporal/tests/guard_props.rs" \
      "$SHADOW/crates/guard/tests/theorem_props.rs" \
      "$SHADOW/crates/analyze/tests/soundness_props.rs" \
      "$SHADOW/crates/analyze/tests/interference_props.rs" \
      "$SHADOW/crates/dist/tests/param_props.rs" \
      "$SHADOW/crates/dist/tests/exec_props.rs" \
      "$SHADOW"/crates/*/tests/*.proptest-regressions
cp "$REPO/rustfmt.toml" "$SHADOW/rustfmt.toml" 2>/dev/null || true

cat > "$SHADOW/Cargo.toml" <<EOF
[workspace]
members = ["crates/*", "stubs/*", "root"]
resolver = "2"

[workspace.package]
version = "0.1.0"
edition = "2021"
license = "MIT"
repository = "https://example.org/constrained-events"

[workspace.dependencies]
event-algebra = { path = "crates/event-algebra" }
temporal = { path = "crates/temporal" }
guard = { path = "crates/guard" }
sim = { path = "crates/sim" }
agent = { path = "crates/agent" }
dist = { path = "crates/dist" }
baseline = { path = "crates/baseline" }
speclang = { path = "crates/speclang" }
analyze = { path = "crates/analyze" }
wfcheck = { path = "crates/wfcheck" }
wftrace = { path = "crates/wftrace" }
obs = { path = "crates/obs" }
monitor = { path = "crates/monitor" }
testkit = { path = "crates/testkit" }
constrained-events = { path = "crates/core" }
rand = { path = "stubs/rand" }
proptest = { path = "stubs/proptest" }
crossbeam = { path = "stubs/crossbeam" }
parking_lot = { path = "stubs/parking_lot" }

[workspace.lints.rust]
unsafe_code = "warn"

[workspace.lints.clippy]
all = { level = "warn", priority = -1 }
dbg_macro = "warn"
todo = "warn"
unimplemented = "warn"
large_types_passed_by_value = "warn"
semicolon_if_nothing_returned = "warn"
uninlined_format_args = "warn"
EOF

cd "$SHADOW"
cargo build --offline "$@"
cargo test --offline -q

# Smoke the perf probe (scripts/bench.sh's measurement binary) in quick
# mode: a handful of iterations into a scratch JSON, proving the
# before/after harness itself still runs end-to-end — including the
# flight-recorder on/off delta (scripts/bench.sh's BENCH_obs.json) and
# the monitor armed/disarmed delta (BENCH_monitor.json).
cargo run --offline -q -p constrained-events-repro --bin perfprobe -- \
    --quick --spec "$SHADOW/root/examples/specs/pipeline10.wf" \
    --out "$SHADOW/BENCH_smoke.json" \
    --obs-out "$SHADOW/BENCH_obs_smoke.json" \
    --monitor-out "$SHADOW/BENCH_monitor_smoke.json"

# Smoke the multi-tenant scale probe (mirrors check.sh --scale): a
# 120-instance mixed travel + pipeline10 fleet through dist::run_tenant;
# the probe itself asserts every instance quiesces satisfied.
./target/debug/perfprobe --quick --scale-out "$SHADOW/BENCH_scale_smoke.json"
grep -q '"exhausted": 0' "$SHADOW/BENCH_scale_smoke.json"

# Smoke the observability tier (mirrors check.sh --obs): the fused
# scheduler-stepped monitor must match the legacy sink-driven oracle's
# verdicts, counters, and alerts across the standard fault-plan matrix,
# and the quick monitored tenant fleet (embedded in --monitor-out above)
# must report zero violations.
cargo run --offline -q -p constrained-events-repro --bin conformance -- \
    --monitor-equiv --seeds 5 \
    "$SHADOW/root/examples/specs/travel.wf" \
    "$SHADOW/root/examples/specs/pipeline10.wf"
grep -q '"monitor_violations": 0' "$SHADOW/BENCH_monitor_smoke.json"

# Smoke the work-stealing runtime probe (mirrors check.sh --parallel):
# the quick pipeline10 fleet through dist::run_parallel_fleet; the probe
# itself asserts every instance satisfies its workflow and that a live
# 2-worker pool reproduces the modeled run's history bit for bit.
./target/debug/perfprobe --quick --parallel-out "$SHADOW/BENCH_parallel_smoke.json"
grep -q '"speedup_4_vs_1"' "$SHADOW/BENCH_parallel_smoke.json"

# Smoke wftrace (mirrors the tier-1 gate's record -> explain -> export
# pipeline, minus python): the justification chain must verify and the
# Chrome export must be non-trivial JSON.
cargo build --offline -q -p wftrace
./target/debug/wftrace record --spec "$SHADOW/root/examples/specs/travel.wf" \
    --out "$SHADOW/travel.trace.json" --seed 3
./target/debug/wftrace explain --event buy::commit "$SHADOW/travel.trace.json" \
    | grep -q "chain verified"
./target/debug/wftrace audit "$SHADOW/travel.trace.json"
./target/debug/wftrace export --chrome --out "$SHADOW/travel.chrome.json" \
    "$SHADOW/travel.trace.json"
grep -q '"traceEvents":\[{' "$SHADOW/travel.chrome.json"

# Smoke the shard-plan certificate path (mirrors the tier-1 gate's
# golden diff, offline): wfcheck under --deny warnings must emit the
# committed interference-pass certificates byte for byte.
cargo build --offline -q -p wfcheck
for spec in travel pipeline10; do
    ./target/debug/wfcheck --deny warnings \
        --shard-plan "$SHADOW/$spec.plan.json" \
        "$SHADOW/root/examples/specs/$spec.wf" > /dev/null
    diff -u "$REPO/examples/specs/golden/$spec.plan.json" "$SHADOW/$spec.plan.json"
done

# Smoke the runtime-verification tier (mirrors check.sh --monitors):
# replaying the recording through the derived monitors must be
# alert-free, and the attempt -> occurrence causal path must verify
# every hop. Capture first, grep after — `grep -q` on a live pipe
# closes it early and the writer dies on SIGPIPE.
./target/debug/wftrace monitor "$SHADOW/travel.trace.json" \
    > "$SHADOW/monitor.out"
grep -q "alerts: none" "$SHADOW/monitor.out"
./target/debug/wftrace query --from attempt:buy::commit \
    --to occurred:buy::commit "$SHADOW/travel.trace.json" \
    > "$SHADOW/query.out"
grep -q "edges verified by happens-before precedence" "$SHADOW/query.out"
