//! Offline stand-in for `parking_lot` (see Cargo.toml for scope).

use std::sync::PoisonError;

/// A non-poisoning mutex, API-compatible with `parking_lot::Mutex` for
/// the calls this workspace makes (`new`, `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Lock, ignoring poisoning (parking_lot mutexes never poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
