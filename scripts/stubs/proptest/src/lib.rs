//! Offline stand-in for `proptest` (see Cargo.toml for supported subset).

use std::ops::{Range, RangeInclusive};

/// Mirror of `proptest::test_runner::Config` for the one constructor the
/// workspace uses. The stub ignores the requested case count beyond
/// capping it (deterministic sampling needs no large budgets offline).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Requested number of cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// A range the stub can sample a case value from.
pub trait StubStrategy {
    /// The sampled value type.
    type Value;
    /// Deterministically sample case `ix` of `total`.
    fn sample(&self, state: &mut u64) -> Self::Value;
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! stub_strategy_int {
    ($($t:ty),*) => {$(
        impl StubStrategy for Range<$t> {
            type Value = $t;
            fn sample(&self, state: &mut u64) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (splitmix(state) % span) as $t
            }
        }
        impl StubStrategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, state: &mut u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    splitmix(state) as $t
                } else {
                    lo + (splitmix(state) % span) as $t
                }
            }
        }
    )*};
}
stub_strategy_int!(u8, u16, u32, u64, usize);

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Stub of the `proptest!` macro: expands each property to a plain
/// `#[test]` looping over deterministically sampled cases.
#[macro_export]
macro_rules! proptest {
    // Internal arms first: the trailing catch-all would otherwise match
    // `@cfg ...` inputs and recurse forever.
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cases: u32 = ($cfg).cases.min(64);
            let mut __state: u64 = 0xDEFA_17ED_5EED_u64 ^ (stringify!($name).len() as u64);
            for __case in 0..__cases {
                $(let $arg = $crate::StubStrategy::sample(&$strat, &mut __state);)*
                let __run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                if let Err(e) = __run() {
                    panic!(
                        "property {} failed at case {}: {}",
                        stringify!($name), __case, e
                    );
                }
            }
        }
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Stub of `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Stub of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, $($fmt)*);
    }};
}

/// Stub of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn samples_stay_in_bounds(a in 3u64..10, b in 0usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
        }

        fn arithmetic_holds(x in 0u32..100) {
            prop_assert_eq!(x + x, 2 * x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 5u64..6) {
                prop_assert_eq!(x, 0, "x was {}", x);
            }
        }
        // Invoke the generated test body directly.
        inner();
    }
}
