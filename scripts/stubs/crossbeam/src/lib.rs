//! Offline stand-in for `crossbeam` (see Cargo.toml for scope).

/// MPMC channels over std sync primitives.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; clonable. Dropping the last sender disconnects the
    /// channel, waking blocked receivers.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.chan.ready.notify_all();
            }
        }
    }

    /// Receiving half; clonable (competitive consumers, like crossbeam).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver { chan: Arc::clone(&self.chan) }
        }
    }

    /// Send failed (never happens here: the stub does not track receiver
    /// drops).
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Blocking receive failed: every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Timed receive failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never fails in the stub.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.chan.queue.lock().expect("stub channel lock");
            q.push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.chan.queue.lock().expect("stub channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) =
                    self.chan.ready.wait_timeout(q, deadline - now).expect("stub channel lock");
                q = guard;
                if res.timed_out() && q.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeue a message, blocking until one arrives or every sender
        /// is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().expect("stub channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).expect("stub channel lock");
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Messages queued right now.
        pub fn len(&self) -> usize {
            self.chan.queue.lock().expect("stub channel lock").len()
        }

        /// `true` when no message is queued right now.
        pub fn is_empty(&self) -> bool {
            self.chan.queue.lock().expect("stub channel lock").is_empty()
        }
    }

    /// Blocking iterator over received messages (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                tx2.send(41).unwrap();
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(41));
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
            h.join().unwrap();
            assert!(rx.is_empty());
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(100)),
                Err(RecvTimeoutError::Disconnected),
                "both senders are gone once the thread finishes"
            );
        }

        #[test]
        fn iter_ends_on_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.iter().sum::<u32>());
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(h.join().unwrap(), 45);
        }

        #[test]
        fn len_counts_queued_messages() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.len(), 0);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.len(), 1);
        }
    }
}
