//! Offline stand-in for `crossbeam` (see Cargo.toml for scope).

/// MPMC channels over std sync primitives.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Send failed (never happens here: the stub channel cannot close).
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Timed receive failed.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders dropped (not modelled by the stub).
        Disconnected,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never fails in the stub.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.chan.queue.lock().expect("stub channel lock");
            q.push_back(value);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.chan.queue.lock().expect("stub channel lock");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) =
                    self.chan.ready.wait_timeout(q, deadline - now).expect("stub channel lock");
                q = guard;
                if res.timed_out() && q.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// `true` when no message is queued right now.
        pub fn is_empty(&self) -> bool {
            self.chan.queue.lock().expect("stub channel lock").is_empty()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            std::thread::spawn(move || {
                tx2.send(41).unwrap();
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(41));
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
            assert!(rx.is_empty());
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        }
    }
}
