//! Offline stand-in for the `rand` crate (see Cargo.toml for scope).
//! Deterministic splitmix64 generator behind the same trait names the
//! workspace imports; NOT statistically equivalent to upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring the subset of `rand::Rng`
/// this workspace calls.
pub trait Rng: RngCore {
    /// Uniform sample from a (half-open or inclusive) integer range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleVal,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        let v = if span == 0 { self.next_u64() } else { lo.wrapping_add(self.next_u64() % span) };
        T::from_u64(v)
    }

    /// Bernoulli sample: `true` with probability `p` in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        // 53 uniform mantissa bits in [0, 1); p == 1.0 is always true,
        // p == 0.0 always false.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Integer types the stub can sample.
pub trait SampleVal: Copy {
    /// Reinterpret a `u64` sample as `Self` (values fit by construction).
    fn from_u64(v: u64) -> Self;
    /// Widen to `u64` for range arithmetic.
    fn to_u64(self) -> u64;
}

macro_rules! sample_val {
    ($($t:ty),*) => {$(
        impl SampleVal for $t {
            fn from_u64(v: u64) -> Self {
                v as $t
            }
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}
sample_val!(u8, u16, u32, u64, usize, i32, i64);

/// Ranges the stub can sample from.
pub trait SampleRange<T> {
    /// Inclusive `(lo, hi)` bounds widened to `u64`.
    fn bounds(&self) -> (u64, u64);
}

impl<T: SampleVal> SampleRange<T> for Range<T> {
    fn bounds(&self) -> (u64, u64) {
        let end = self.end.to_u64();
        assert!(end > 0, "cannot sample empty range");
        (self.start.to_u64(), end - 1)
    }
}

impl<T: SampleVal> SampleRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (u64, u64) {
        (self.start().to_u64(), self.end().to_u64())
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small generator (splitmix64 — not the upstream
    /// xoshiro; streams differ from real `rand`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: u64 = a.random_range(3..10);
            assert_eq!(x, b.random_range(3..10));
            assert!((3..10).contains(&x));
            let y: usize = a.random_range(0..=4);
            assert_eq!(y, b.random_range(0..=4));
            assert!(y <= 4);
        }
    }

    #[test]
    fn bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!((0..50).all(|_| r.random_bool(1.0)));
        assert!((0..50).all(|_| !r.random_bool(0.0)));
        let trues = (0..1000).filter(|_| r.random_bool(0.5)).count();
        assert!((300..700).contains(&trues), "roughly balanced: {trues}");
    }
}
