//! Drives the compiled `wfcheck` binary end to end: exit codes, text and
//! JSON rendering, strictness flags, and the state-budget cutoff.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn write_spec(body: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wfcheck-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("spec{}.wf", COUNTER.fetch_add(1, Ordering::Relaxed)));
    std::fs::write(&path, body).expect("write spec");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wfcheck")).args(args).output().expect("spawn wfcheck")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const CLEAN: &str = "workflow chain {\n\
                     \x20   event submit;\n\
                     \x20   event approve;\n\
                     \x20   dep d1: submit -> approve;\n\
                     }\n";

const DEAD: &str = "workflow dead {\n\
                    \x20   event go;\n\
                    \x20   dep d1: ~go;\n\
                    }\n";

const CLASH: &str = "workflow clash {\n\
                     \x20   event pay;\n\
                     \x20   dep want: pay;\n\
                     \x20   dep veto: ~pay;\n\
                     }\n";

#[test]
fn clean_spec_exits_zero_even_denying_warnings() {
    let spec = write_spec(CLEAN);
    let out = run(&["--deny", "warnings", spec.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("0 errors, 0 warnings"), "{}", stdout(&out));
}

#[test]
fn dead_event_warns_with_span_and_denies() {
    let spec = write_spec(DEAD);
    let path = spec.to_str().unwrap();
    let relaxed = run(&[path]);
    assert_eq!(relaxed.status.code(), Some(0));
    let text = stdout(&relaxed);
    assert!(text.contains(&format!("{path}:2:5: warning[WF002]")), "{text}");
    let strict = run(&["--deny", "warnings", path]);
    assert_eq!(strict.status.code(), Some(1));
}

#[test]
fn contradiction_always_fails() {
    let spec = write_spec(CLASH);
    let out = run(&[spec.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("error[WF001]"), "{}", stdout(&out));
}

#[test]
fn json_output_is_structured() {
    let spec = write_spec(DEAD);
    let out = run(&["--json", spec.to_str().unwrap()]);
    let text = stdout(&out);
    let line = text.lines().next().unwrap();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"workflow\":\"dead\""), "{line}");
    assert!(line.contains("\"code\":\"WF002\""), "{line}");
    assert!(line.contains("\"line\":2"), "{line}");
    assert!(line.contains("\"warnings\":1"), "{line}");
}

#[test]
fn parse_error_is_wf000_with_position() {
    let spec = write_spec("workflow x {\n  dep d1 ~e;\n}\n");
    let out = run(&[spec.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("2:7: error[WF000]"), "{text}");
}

#[test]
fn three_cycle_and_cross_site_are_denied() {
    let ring = write_spec(
        "workflow ring {\n\
         \x20   event e @ site 0;\n\
         \x20   event f @ site 1;\n\
         \x20   event g @ site 1;\n\
         \x20   dep d1: e -> f;\n\
         \x20   dep d2: f -> g;\n\
         \x20   dep d3: g -> e;\n\
         }\n",
    );
    let out = run(&["--deny", "warnings", ring.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("[WF020]"), "{text}");
    assert!(text.contains("[WF011]"), "{text}");
    assert!(text.contains("site 0") && text.contains("site 1"), "{text}");
}

#[test]
fn state_budget_cutoff_reports_wf006() {
    let mut big = String::from("workflow big {\n");
    for i in 0..10 {
        big.push_str(&format!("    event e{i};\n"));
    }
    for i in 0..9 {
        big.push_str(&format!("    dep d{i}: e{i} -> e{};\n", i + 1));
    }
    big.push('}');
    let spec = write_spec(&big);
    let path = spec.to_str().unwrap();
    // Default budget: the product machine finishes the 10-symbol chain.
    let full = run(&["--deny", "warnings", path]);
    assert_eq!(full.status.code(), Some(0), "{}", stdout(&full));
    // Tiny budget: explicit WF006 instead of an unbounded search.
    let tight = run(&["--deny", "warnings", "--state-budget", "4", path]);
    assert_eq!(tight.status.code(), Some(1));
    assert!(stdout(&tight).contains("[WF006]"), "{}", stdout(&tight));
}

#[test]
fn multiple_files_take_the_worst_exit() {
    let good = write_spec(CLEAN);
    let bad = write_spec(CLASH);
    let out = run(&[good.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn shard_plan_writes_certificate_to_file() {
    let spec = write_spec(CLEAN);
    let plan_path = spec.with_extension("plan.json");
    let out = run(&[
        "--deny",
        "warnings",
        "--shard-plan",
        plan_path.to_str().unwrap(),
        spec.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let plan = std::fs::read_to_string(&plan_path).expect("plan written");
    assert!(plan.contains("\"classes\":["), "{plan}");
    assert!(plan.contains("\"submit\"") && plan.contains("\"approve\""), "{plan}");
    assert!(plan.contains("\"refines_site_coupling\":true"), "{plan}");
    assert!(plan.ends_with('\n'), "newline-terminated for golden diffs");
}

#[test]
fn shard_plan_dash_streams_to_stdout() {
    let spec = write_spec(CLEAN);
    let out = run(&["--shard-plan", "-", spec.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    let plan_line = text.lines().next().expect("plan precedes diagnostics");
    assert!(plan_line.starts_with("{\"workflow\":\"chain\""), "{plan_line}");
    assert!(plan_line.ends_with('}'), "{plan_line}");
}

#[test]
fn shard_plan_rejects_multiple_files_and_parse_failures() {
    let a = write_spec(CLEAN);
    let b = write_spec(DEAD);
    let out = run(&["--shard-plan", "p.json", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "exactly one spec required");
    let broken = write_spec("workflow x {\n  dep d1 ~e;\n}\n");
    let out = run(&["--shard-plan", "p.json", broken.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "no plan for an unparsed spec");
}

#[test]
fn site_conflict_is_wf032_error() {
    let spec = write_spec(
        "workflow bad {\n\
         \x20   event e @ site 0;\n\
         \x20   event f @ site 1;\n\
         \x20   dep d: ~e + ~f + e.f;\n\
         }\n",
    );
    let out = run(&[spec.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("error[WF032]"), "{}", stdout(&out));
}

#[test]
fn json_diagnostics_always_carry_the_file() {
    // A span-less diagnostic (WF001 carries dep spans, but parse errors
    // and summary diagnostics may not) still names its file in --json.
    let spec = write_spec(CLASH);
    let path = spec.to_str().unwrap();
    let out = run(&["--json", path]);
    let text = stdout(&out);
    let line = text.lines().next().unwrap();
    assert!(line.contains(&format!("\"file\":\"{}\"", path.replace('\\', "\\\\"))), "{line}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["--frobnicate", "x.wf"]).status.code(), Some(2));
    assert_eq!(run(&["--deny", "everything", "x.wf"]).status.code(), Some(2));
    assert_eq!(run(&["/nonexistent/missing.wf"]).status.code(), Some(2));
    let help = run(&["--help"]);
    assert_eq!(help.status.code(), Some(0));
    assert!(stdout(&help).contains("USAGE"));
}
