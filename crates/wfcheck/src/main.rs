//! `wfcheck` — static verification of workflow specifications.
//!
//! Parses each `.wf` file, runs the five analysis passes of the
//! [`analyze`] crate, and reports `WF0xx` diagnostics as compiler-style
//! text or JSON. `--shard-plan` additionally writes the interference
//! pass's certified [`analyze::ShardPlan`] as JSON. Exit code 0 means
//! clean, 1 means findings at or above the deny level, 2 means a usage
//! or I/O error.

use analyze::{analyze_workflow, AnalyzeOptions, Report, DEFAULT_STATE_BUDGET};
use speclang::LoweredWorkflow;
use std::io::Write;
use std::process::ExitCode;

const HELP: &str = "\
wfcheck - static verification of workflow specifications

USAGE:
    wfcheck [OPTIONS] <SPEC.wf>...

OPTIONS:
    --json                machine-readable output, one JSON object per file
    --deny warnings       exit non-zero on warnings, not just errors
    --state-budget <N>    product-state cap for reachability queries
                          (default 1048576); exceeding it degrades to a
                          WF006 diagnostic instead of an unbounded search
    --shard-plan <PATH>   write the interference pass's shard-plan
                          certificate (colocation classes, independence
                          relation, proof obligations) as JSON; requires
                          exactly one spec file; '-' writes to stdout
    -h, --help            print this help

EXIT CODES:
    0  no findings at or above the deny level
    1  errors (or warnings under --deny warnings)
    2  usage or I/O error
";

struct Args {
    files: Vec<String>,
    json: bool,
    deny_warnings: bool,
    state_budget: usize,
    shard_plan: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        files: Vec::new(),
        json: false,
        deny_warnings: false,
        state_budget: DEFAULT_STATE_BUDGET,
        shard_plan: None,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => args.deny_warnings = true,
                Some(other) => return Err(format!("--deny expects 'warnings', got '{other}'")),
                None => return Err("--deny expects 'warnings'".to_owned()),
            },
            "--deny=warnings" => args.deny_warnings = true,
            "--state-budget" => {
                let v = it.next().ok_or("--state-budget expects a number")?;
                args.state_budget = v.parse().map_err(|_| format!("invalid state budget '{v}'"))?;
            }
            s if s.starts_with("--state-budget=") => {
                let v = &s["--state-budget=".len()..];
                args.state_budget = v.parse().map_err(|_| format!("invalid state budget '{v}'"))?;
            }
            "--shard-plan" => {
                let v = it.next().ok_or("--shard-plan expects a path")?;
                args.shard_plan = Some(v.clone());
            }
            s if s.starts_with("--shard-plan=") => {
                args.shard_plan = Some(s["--shard-plan=".len()..].to_owned());
            }
            s if s.starts_with('-') => return Err(format!("unknown option '{s}'")),
            s => args.files.push(s.to_owned()),
        }
    }
    if args.files.is_empty() {
        return Err("no specification files given".to_owned());
    }
    if args.shard_plan.is_some() && args.files.len() != 1 {
        return Err("--shard-plan requires exactly one specification file".to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        let _ = std::io::stdout().write_all(HELP.as_bytes());
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wfcheck: {e}");
            eprintln!("run 'wfcheck --help' for usage");
            return ExitCode::from(2);
        }
    };
    let opts = AnalyzeOptions { state_budget: args.state_budget, ..AnalyzeOptions::default() };
    let mut worst = 0i32;
    for file in &args.files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("wfcheck: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let (report, table) = match LoweredWorkflow::parse(&src) {
            Ok(w) => (analyze_workflow(&w, &opts), Some(w.table)),
            Err(e) => (Report::from_spec_error(&e), None),
        };
        if let Some(path) = &args.shard_plan {
            match (&report.shard_plan, &table) {
                (Some(plan), Some(table)) => {
                    let mut json = plan.to_json(table);
                    json.push('\n');
                    if path == "-" {
                        let _ = std::io::stdout().write_all(json.as_bytes());
                    } else if let Err(e) = std::fs::write(path, &json) {
                        eprintln!("wfcheck: {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
                _ => {
                    eprintln!("wfcheck: {file}: no shard plan emitted (spec did not parse)");
                    return ExitCode::from(2);
                }
            }
        }
        let rendered = if args.json {
            let mut line = report.to_json(Some(file));
            line.push('\n');
            line
        } else {
            report.render_text(Some(file))
        };
        // Ignore write failures (e.g. a closed pipe under `wfcheck | head`)
        // so the exit code still reflects the analysis of every file.
        let _ = std::io::stdout().write_all(rendered.as_bytes());
        worst = worst.max(report.exit_code(args.deny_warnings));
    }
    ExitCode::from(u8::try_from(worst).unwrap_or(1))
}
