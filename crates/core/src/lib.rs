//! **constrained-events** — a faithful implementation of
//! *Synthesizing Distributed Constrained Events from Transactional
//! Workflow Specifications* (Munindar P. Singh, ICDE 1996).
//!
//! Declaratively specify intertask dependencies in an event algebra,
//! compile them into localized temporal guards (Definition 2), and
//! execute workflows **without a centralized scheduler**: one actor per
//! event evaluates its own guard, exchanging `□e` announcements, `◇e`
//! promises and not-yet agreements over a (simulated) distributed
//! network.
//!
//! # Quickstart
//!
//! ```
//! use constrained_events::WorkflowBuilder;
//! use constrained_events::agents::library::rda_transaction;
//! use constrained_events::Script;
//!
//! // Example 4: buy a ticket, book a car; book is compensatable, buy is
//! // not, so buy commits only after book.
//! let mut b = WorkflowBuilder::new("travel");
//! let buy = rda_transaction("buy", b.table());
//! let book = rda_transaction("book", b.table());
//! b.add_agent(0, buy, Script::of(&["start", "commit"]));
//! b.add_agent(1, book, Script::of(&["start", "commit"]));
//! b.dependency_str("~buy::start + book::start").unwrap();
//! b.dependency_str("~buy::commit + book::commit . buy::commit").unwrap();
//! let workflow = b.build();
//!
//! let report = workflow.run(42);
//! assert!(report.all_satisfied());
//! ```
//!
//! The re-exported crates provide the full stack: [`algebra`] (event
//! expressions, residuation, dependency machines), [`logic`] (the guard
//! language `T`), [`guards`] (guard synthesis), [`network`] (the
//! deterministic simulator), [`agents`] (task skeletons),
//! [`distributed`] (the event-centric scheduler), [`centralized`]
//! (baselines), [`monitors`] (online runtime verification) and [`spec`]
//! (the declarative language).

#![warn(missing_docs)]

pub use agent as agents;
pub use baseline as centralized;
pub use dist as distributed;
pub use event_algebra as algebra;
pub use guard as guards;
pub use monitor as monitors;
pub use sim as network;
pub use speclang as spec;
pub use temporal as logic;

pub use agent::{EventAttrs, TaskAgent};
pub use baseline::{run_centralized, CentralConfig, Engine};
pub use dist::{
    run_workflow, run_workflow_threaded, run_workflow_with_faults, AgentSpec, DepRuntime,
    ExecConfig, FreeEventSpec, GuardMode, ReliableConfig, RunReport, Script, WorkflowSpec,
};
pub use event_algebra::{Expr, Literal, SymbolId, SymbolTable, Trace};
pub use guard::{CompiledWorkflow, GuardScope};
pub use monitor::{Alert, AlertKind, DepVerdict, MonitorConfig, MonitorReport, WorkflowMonitor};
pub use sim::{FaultPlan, Termination};
pub use speclang::LoweredWorkflow;
pub use temporal::{Guard, TExpr};

pub mod models;
mod template;

pub use template::{travel_template, TemplateEvent, WorkflowTemplate};

use event_algebra::{parse_expr, PExpr};
use sim::SiteId;

/// Builder assembling a workflow: agents, free events and dependencies
/// over one shared symbol table.
pub struct WorkflowBuilder {
    name: String,
    table: SymbolTable,
    deps: Vec<Expr>,
    templates: Vec<PExpr>,
    agents: Vec<AgentSpec>,
    free: Vec<FreeEventSpec>,
}

impl WorkflowBuilder {
    /// Start a workflow named `name`.
    pub fn new(name: &str) -> WorkflowBuilder {
        WorkflowBuilder {
            name: name.to_owned(),
            table: SymbolTable::new(),
            deps: Vec::new(),
            templates: Vec::new(),
            agents: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Build from a specification file (see the `speclang` crate for the
    /// syntax): declared events become free events, declared agents are
    /// instantiated from the agent library (`rda`, `app`, `compensatable`,
    /// `two_phase`, `looper`) with their scripts, dependencies are
    /// lowered, parametrized templates retained.
    pub fn from_spec(src: &str) -> Result<WorkflowBuilder, speclang::SpecError> {
        let lowered = LoweredWorkflow::parse(src)?;
        let mut b = WorkflowBuilder::new(&lowered.name);
        b.table = lowered.table.clone();
        b.deps = lowered.ground_deps.clone();
        b.templates = lowered.templates.clone();
        for ev in &lowered.events {
            let attrs = EventAttrs {
                controllable: ev.controllable || ev.triggerable,
                triggerable: ev.triggerable,
                rejectable: !ev.immediate,
            };
            b.free.push(FreeEventSpec {
                site: SiteId(ev.site.unwrap_or(0)),
                lit: ev.literal,
                attrs,
                attempt_after: None,
            });
        }
        for a in &lowered.agents {
            let task = match a.kind.as_str() {
                "rda" => agent::library::rda_transaction(&a.name, &mut b.table),
                "app" => agent::library::typical_application(&a.name, &mut b.table),
                "compensatable" => agent::library::compensatable_task(&a.name, &mut b.table),
                "two_phase" => agent::library::two_phase_participant(&a.name, &mut b.table),
                "looper" => agent::library::looping_task(&a.name, &mut b.table),
                other => {
                    return Err(speclang::SpecError {
                        line: 0,
                        col: 0,
                        message: format!("unknown agent kind {other}"),
                    })
                }
            };
            let mut script = Script::default();
            for step in &a.script {
                script = match step {
                    speclang::ScriptItem::Event(name) => script.then(name),
                    speclang::ScriptItem::Wait(t) => script.wait(*t),
                };
            }
            b.agents.push(AgentSpec { site: SiteId(a.site), agent: task, script });
        }
        Ok(b)
    }

    /// The shared symbol table (pass to `agent::library` constructors).
    pub fn table(&mut self) -> &mut SymbolTable {
        &mut self.table
    }

    /// Place a task agent on a site with a script.
    pub fn add_agent(&mut self, site: u32, agent: TaskAgent, script: Script) -> &mut Self {
        self.agents.push(AgentSpec { site: SiteId(site), agent, script });
        self
    }

    /// Add an agent-less event.
    pub fn add_free_event(
        &mut self,
        site: u32,
        name: &str,
        attrs: EventAttrs,
        attempt_after: Option<u64>,
    ) -> Literal {
        let lit = self.table.event(name);
        self.free.push(FreeEventSpec { site: SiteId(site), lit, attrs, attempt_after });
        lit
    }

    /// Add a dependency given as an expression.
    pub fn dependency(&mut self, d: Expr) -> &mut Self {
        self.deps.push(d);
        self
    }

    /// Add a dependency in the plain algebra syntax (`~e + f`).
    pub fn dependency_str(&mut self, src: &str) -> Result<&mut Self, String> {
        let d = parse_expr(src, &mut self.table).map_err(|e| e.to_string())?;
        self.deps.push(d);
        Ok(self)
    }

    /// Add a dependency in the full spec syntax (Klein sugar, macros,
    /// parameters). Parametrized dependencies become templates.
    pub fn dependency_spec(&mut self, src: &str) -> Result<&mut Self, String> {
        let d = speclang::parse_dependency(src).map_err(|e| e.to_string())?;
        if d.vars().is_empty() {
            let ground = d.instantiate(&event_algebra::Binding::new(), &mut self.table);
            self.deps.push(ground);
        } else {
            self.templates.push(d);
        }
        Ok(self)
    }

    /// Append every agent's *structure dependencies* (derived from its
    /// skeleton by dominator analysis — e.g. `~commit + start.commit`) to
    /// the workflow, so the scheduler can reason over task structure:
    /// once a task's start is ruled out, its commit is provably never
    /// coming, which cascades into compensations. Opt-in because it
    /// enlarges guards and traffic.
    pub fn add_structure_deps(&mut self) -> &mut Self {
        let mut extra = Vec::new();
        for a in &self.agents {
            extra.extend(a.agent.structure_dependencies());
        }
        self.deps.extend(extra);
        self
    }

    /// Finish building.
    pub fn build(self) -> Workflow {
        Workflow {
            name: self.name,
            templates: self.templates,
            spec: WorkflowSpec {
                table: self.table,
                dependencies: self.deps,
                agents: self.agents,
                free_events: self.free,
            },
        }
    }
}

/// A ready-to-run workflow.
pub struct Workflow {
    /// Workflow name.
    pub name: String,
    /// The executable specification.
    pub spec: WorkflowSpec,
    /// Parametrized templates for the dynamic scheduler (Section 5).
    pub templates: Vec<PExpr>,
}

impl Workflow {
    /// Run on the deterministic simulated network with the distributed
    /// event-centric scheduler.
    pub fn run(&self, seed: u64) -> RunReport {
        run_workflow(&self.spec, ExecConfig::seeded(seed))
    }

    /// Run with a custom executor configuration.
    pub fn run_with(&self, config: ExecConfig) -> RunReport {
        run_workflow(&self.spec, config)
    }

    /// Run with fault injection: messages are dropped, duplicated,
    /// delayed or cut by partitions, and nodes crash and restart, as the
    /// plan dictates. Pair with [`ExecConfig::reliable`] to keep the
    /// protocol's guarantees on the lossy network.
    pub fn run_faulty(&self, config: ExecConfig, plan: FaultPlan) -> RunReport {
        run_workflow_with_faults(&self.spec, config, plan)
    }

    /// Run on the threaded executor (real concurrency, nondeterministic).
    pub fn run_threaded(&self, seed: u64) -> RunReport {
        run_workflow_threaded(&self.spec, ExecConfig::seeded(seed))
    }

    /// Run under the centralized baseline scheduler.
    pub fn run_centralized(&self, seed: u64, engine: Engine) -> RunReport {
        run_centralized(&self.spec, CentralConfig::new(seed, engine))
    }

    /// Compile the per-event guard table (Definition 2).
    pub fn compile_guards(&self) -> CompiledWorkflow {
        CompiledWorkflow::compile(&self.spec.dependencies, GuardScope::Mentioning)
    }

    /// Render the guard on a named event, using the workflow's names.
    pub fn guard_text(&self, event: &str) -> Option<String> {
        let sym = self.spec.table.lookup(event)?;
        let compiled = self.compile_guards();
        let g = compiled.guard(Literal::pos(sym));
        Some(format!("{}", g.to_texpr().display(&self.spec.table)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agent::library::rda_transaction;

    #[test]
    fn builder_assembles_and_runs() {
        let mut b = WorkflowBuilder::new("t");
        let e = b.add_free_event(0, "e", EventAttrs::controllable(), Some(1));
        let f = b.add_free_event(1, "f", EventAttrs::controllable(), Some(1));
        b.dependency_str("~e + ~f + e.f").unwrap();
        let w = b.build();
        let r = w.run(11);
        assert!(r.all_satisfied(), "{r:?}");
        let _ = (e, f);
    }

    #[test]
    fn guard_text_matches_paper() {
        let mut b = WorkflowBuilder::new("t");
        b.add_free_event(0, "e", EventAttrs::controllable(), None);
        b.add_free_event(0, "f", EventAttrs::controllable(), None);
        b.dependency_str("~e + ~f + e.f").unwrap();
        let w = b.build();
        // G(D<, e) = ¬f (Example 9.6).
        assert_eq!(w.guard_text("e").unwrap(), "!f");
        // G(D<, f) = ◇ē + □e (Example 9.8; printed in canonical order).
        assert_eq!(w.guard_text("f").unwrap(), "[]e + <>~e");
        assert!(w.guard_text("zzz").is_none());
    }

    #[test]
    fn from_spec_roundtrip() {
        let src = r#"
            workflow demo {
                event e;
                event f { immediate } @ site 2;
                dep d: e < f;
            }
        "#;
        let b = WorkflowBuilder::from_spec(src).unwrap();
        let w = b.build();
        assert_eq!(w.name, "demo");
        assert_eq!(w.spec.dependencies.len(), 1);
        assert_eq!(w.spec.free_events.len(), 2);
        assert_eq!(w.spec.free_events[1].site, SiteId(2));
    }

    #[test]
    fn agents_share_the_builder_table() {
        let mut b = WorkflowBuilder::new("t");
        let agent = rda_transaction("buy", b.table());
        b.add_agent(0, agent, Script::of(&["start", "commit"]));
        b.dependency_str("~buy::commit + done").unwrap();
        let w = b.build();
        let r = w.run(3);
        // buy.commit's guard requires ◇done; done is never attempted, so
        // the promise is denied and commit stays parked; the maximal
        // extension appends complements and d is judged on it.
        assert!(w.spec.table.lookup("buy.commit").is_some());
        let _ = r;
    }

    #[test]
    fn parametrized_specs_become_templates() {
        let mut b = WorkflowBuilder::new("t");
        b.dependency_spec("~f[y] + g[y]").unwrap();
        b.dependency_spec("a -> c").unwrap();
        let w = b.build();
        assert_eq!(w.templates.len(), 1);
        assert_eq!(w.spec.dependencies.len(), 1);
    }
}
