//! Prebuilt extended-transaction workflow models.
//!
//! The paper's thesis is that "intertask dependencies can be used to
//! formalize the scheduling aspects of a large variety of, and
//! combinations of, workflow and transaction models" (Section 1). This
//! module instantiates that claim: the classic extended-transaction
//! models — sagas, contingency (alternative) tasks, DAG-structured
//! workflows — are expressed purely as dependency sets over the agent
//! library, with no bespoke scheduler support.

use crate::{Script, Workflow, WorkflowBuilder};
use agent::library::{rda_transaction, typical_application};

/// A **saga**: a chain of transactions `t₁ … tₙ`, each compensatable.
/// Forward flow: tᵢ₊₁ starts when tᵢ commits. Backward recovery: if any
/// tᵢ aborts, compensations `cⱼ` run for every j < i that committed.
///
/// Scripts: every step works `think` ticks then commits; `fail_at`
/// (0-based) makes that step abort instead, exercising recovery.
pub fn saga(steps: usize, think: u64, fail_at: Option<usize>) -> Workflow {
    assert!(steps >= 2, "a saga needs at least two steps");
    let mut b = WorkflowBuilder::new("saga");
    for i in 0..steps {
        let t = rda_transaction(&format!("t{i}"), b.table());
        let script = if fail_at == Some(i) {
            Script::default().wait(think).then("abort")
        } else if i == 0 {
            Script::default().then("start").wait(think).then("commit")
        } else {
            Script::default().wait(think).then("commit")
        };
        b.add_agent(i as u32, t, script);
        // Compensation task for every step that can need undoing (all but
        // the last).
        if i + 1 < steps {
            let c = typical_application(&format!("c{i}"), b.table());
            b.add_agent(i as u32, c, Script::of(&[]));
        }
    }
    let last = steps - 1;
    for i in 0..steps - 1 {
        // Forward: t_{i+1} begins exactly when t_i commits.
        b.dependency_spec(&format!("begin_on_commit(t{i}, t{})", i + 1)).unwrap();
        // Backward: a saga is committed iff its *final* step commits; any
        // committed step whose saga never completes is compensated
        // (Example 4's pattern, keyed to the last step).
        b.dependency_spec(&format!("compensate(t{i}, t{last}, c{i})")).unwrap();
    }
    // Structure dependencies (commit-after-start etc.) let the scheduler
    // conclude "t_last will never commit" as soon as its start is ruled
    // out, cascading into the compensations.
    b.add_structure_deps();
    b.build()
}

/// A **contingency** pair: try `primary`; if it aborts, run `alternate`
/// (Günthör-style alternative tasks). At most one of the two commits.
pub fn contingency(think: u64, primary_fails: bool) -> Workflow {
    let mut b = WorkflowBuilder::new("contingency");
    let p = rda_transaction("primary", b.table());
    let a = rda_transaction("alternate", b.table());
    let p_script = if primary_fails {
        Script::default().then("start").wait(think).then("abort")
    } else {
        Script::default().then("start").wait(think).then("commit")
    };
    b.add_agent(0, p, p_script);
    // The alternate runs only when triggered.
    b.add_agent(1, a, Script::default().then("commit"));
    // If the primary aborts, the alternate starts (and its agent commits).
    b.dependency_str("~primary::abort + alternate::start").unwrap();
    // The alternate starts and commits only after the primary's abort —
    // this is the *operational* exclusion: if the primary commits, its
    // abort never happens and the alternate's events are rejected. (A
    // bare `exclusion(primary, alternate)` would instead give the
    // primary's commit a guard ◇~alternate.commit that nothing can
    // promise — a specification deadlock the compile-time analysis
    // reports as a consensus gap.)
    b.dependency_str("~alternate::start + primary::abort . alternate::start").unwrap();
    b.dependency_str("~alternate::commit + primary::abort . alternate::commit").unwrap();
    b.build()
}

/// A **DAG workflow**: a diamond `src → {left, right} → sink` where the
/// sink starts only after both branches commit — the fork/join shape of
/// workflow nets, expressed as four dependencies.
pub fn diamond(think: u64) -> Workflow {
    let mut b = WorkflowBuilder::new("diamond");
    for (site, name) in [(0u32, "src"), (1, "left"), (2, "right"), (3, "sink")] {
        let t = rda_transaction(name, b.table());
        let script = if name == "src" {
            Script::default().then("start").wait(think).then("commit")
        } else {
            Script::default().wait(think).then("commit")
        };
        b.add_agent(site, t, script);
    }
    b.dependency_spec("begin_on_commit(src, left)").unwrap();
    b.dependency_spec("begin_on_commit(src, right)").unwrap();
    // Join: the sink starts after both branches commit.
    b.dependency_str("~sink::start + left::commit . sink::start").unwrap();
    b.dependency_str("~sink::start + right::commit . sink::start").unwrap();
    b.dependency_str("~left::commit + sink::start").unwrap();
    b.dependency_str("~right::commit + sink::start").unwrap();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(report: &crate::RunReport, wf: &Workflow) -> Vec<String> {
        report
            .trace
            .events()
            .iter()
            .filter(|l| l.is_pos())
            .filter_map(|l| wf.spec.table.name(l.symbol()).map(str::to_owned))
            .collect()
    }

    #[test]
    fn saga_happy_path_commits_everything_no_compensation() {
        for seed in 0..8 {
            let wf = saga(3, 4, None);
            let r = wf.run(seed);
            assert!(r.all_satisfied(), "seed {seed}: {r:#?}");
            let ns = names(&r, &wf);
            for i in 0..3 {
                assert!(ns.contains(&format!("t{i}.commit")), "seed {seed}: {ns:?}");
            }
            assert!(
                !ns.iter().any(|n| n.starts_with('c') && n.ends_with(".start")),
                "no compensation on success: {ns:?}"
            );
        }
    }

    #[test]
    fn saga_failure_compensates_committed_prefix() {
        for seed in 0..8 {
            // Step 2 (0-based) fails; steps 0 and 1 committed and must be
            // compensated.
            let wf = saga(3, 4, Some(2));
            let r = wf.run(seed);
            assert!(r.all_satisfied(), "seed {seed}: {r:#?}");
            let ns = names(&r, &wf);
            assert!(ns.contains(&"t0.commit".to_owned()), "{ns:?}");
            assert!(ns.contains(&"t1.commit".to_owned()), "{ns:?}");
            assert!(!ns.contains(&"t2.commit".to_owned()), "{ns:?}");
            assert!(ns.contains(&"c1.start".to_owned()), "step 1 compensated: {ns:?}");
            assert!(ns.contains(&"c0.start".to_owned()), "step 0 compensated: {ns:?}");
        }
    }

    #[test]
    fn saga_first_step_failure_compensates_nothing() {
        let wf = saga(3, 2, Some(0));
        let r = wf.run(5);
        assert!(r.all_satisfied(), "{r:#?}");
        let ns = names(&r, &wf);
        assert!(!ns.iter().any(|n| n.ends_with(".commit")), "{ns:?}");
        assert!(!ns.iter().any(|n| n.starts_with('c') && n.ends_with(".start")), "{ns:?}");
    }

    #[test]
    fn contingency_prefers_primary() {
        for seed in 0..8 {
            let wf = contingency(3, false);
            let r = wf.run(seed);
            assert!(r.all_satisfied(), "seed {seed}: {r:#?}");
            let ns = names(&r, &wf);
            assert!(ns.contains(&"primary.commit".to_owned()), "{ns:?}");
            assert!(!ns.contains(&"alternate.start".to_owned()), "{ns:?}");
        }
    }

    #[test]
    fn contingency_falls_back_on_abort() {
        for seed in 0..8 {
            let wf = contingency(3, true);
            let r = wf.run(seed);
            assert!(r.all_satisfied(), "seed {seed}: {r:#?}");
            let ns = names(&r, &wf);
            assert!(ns.contains(&"primary.abort".to_owned()), "{ns:?}");
            assert!(ns.contains(&"alternate.commit".to_owned()), "{ns:?}");
            assert!(!ns.contains(&"primary.commit".to_owned()), "{ns:?}");
        }
    }

    #[test]
    fn diamond_joins_after_both_branches() {
        for seed in 0..8 {
            let wf = diamond(3);
            let r = wf.run(seed);
            assert!(r.all_satisfied(), "seed {seed}: {r:#?}");
            let evs = r.trace.events();
            let pos = |name: &str| {
                evs.iter().position(|l| l.is_pos() && wf.spec.table.name(l.symbol()) == Some(name))
            };
            let (l, rt, s) = (
                pos("left.commit").expect("left committed"),
                pos("right.commit").expect("right committed"),
                pos("sink.start").expect("sink started"),
            );
            assert!(l < s && rt < s, "join order violated: {}", r.trace);
        }
    }
}
