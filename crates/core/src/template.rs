//! Parametrized workflow templates (Section 5.1, Example 12).
//!
//! "The simplest uses of parameters are within given workflows, where the
//! parameters on different events are identical … Attempting some key
//! event binds the parameters of all events, thus instantiating the
//! workflow afresh. The workflow is then scheduled as described in
//! previous sections."
//!
//! A [`WorkflowTemplate`] holds parametrized dependencies (`s_buy[cid] →
//! s_book[cid]`) and event declarations; binding the key parameter mints
//! a fresh ground copy of every event and dependency. Multiple instances
//! run *concurrently on one network* — their alphabets are disjoint, so
//! by the independence theorems (Theorems 2/4) their guards do not
//! interact, which the tests verify by checking each instance's
//! dependencies separately on the interleaved global trace.

use crate::{EventAttrs, FreeEventSpec, Workflow, WorkflowSpec};
use event_algebra::{Binding, Expr, Literal, PExpr, SymbolTable};
use sim::SiteId;

/// A declared parametrized event.
#[derive(Debug, Clone)]
pub struct TemplateEvent {
    /// Event type name (instances intern as `name[value]`).
    pub name: String,
    /// Attributes shared by all instances.
    pub attrs: EventAttrs,
    /// Whether the harness attempts the instance at start.
    pub attempted: bool,
}

/// A workflow template over one key parameter.
#[derive(Debug, Clone)]
pub struct WorkflowTemplate {
    /// Template name.
    pub name: String,
    /// The key parameter (e.g. `"cid"`), bound at instantiation.
    pub param: String,
    /// Parametrized dependencies; every variable must be the key.
    pub deps: Vec<PExpr>,
    /// Parametrized events.
    pub events: Vec<TemplateEvent>,
}

impl WorkflowTemplate {
    /// Start a template named `name` with key parameter `param`.
    pub fn new(name: &str, param: &str) -> WorkflowTemplate {
        WorkflowTemplate {
            name: name.to_owned(),
            param: param.to_owned(),
            deps: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Declare a parametrized event.
    pub fn event(&mut self, name: &str, attrs: EventAttrs, attempted: bool) -> &mut Self {
        self.events.push(TemplateEvent { name: name.to_owned(), attrs, attempted });
        self
    }

    /// Add a parametrized dependency (spec syntax; its variables must all
    /// be the key parameter).
    pub fn dependency(&mut self, src: &str) -> Result<&mut Self, String> {
        let d = speclang::parse_dependency(src).map_err(|e| e.to_string())?;
        for v in d.vars() {
            if v != self.param {
                return Err(format!(
                    "template {}: dependency uses variable {v}, expected only {}",
                    self.name, self.param
                ));
            }
        }
        self.deps.push(d);
        Ok(self)
    }

    /// Instantiate the template for each key value and assemble one
    /// workflow in which all instances run concurrently. Instance `i`'s
    /// events live on site `i` (one site per customer/instance).
    pub fn instances(&self, values: &[u64]) -> Workflow {
        let mut table = SymbolTable::new();
        let mut deps: Vec<Expr> = Vec::new();
        let mut free: Vec<FreeEventSpec> = Vec::new();
        for (ix, &v) in values.iter().enumerate() {
            let mut binding = Binding::new();
            binding.insert(self.param.clone(), v);
            for ev in &self.events {
                let lit = Literal::pos(table.intern(&format!("{}[{v}]", ev.name)));
                free.push(FreeEventSpec {
                    site: SiteId(ix as u32),
                    lit,
                    attrs: ev.attrs,
                    attempt_after: if ev.attempted { Some(1) } else { None },
                });
            }
            for d in &self.deps {
                deps.push(d.instantiate(&binding, &mut table));
            }
        }
        Workflow {
            name: format!("{}[{} instances]", self.name, values.len()),
            templates: self.deps.clone(),
            spec: WorkflowSpec { table, dependencies: deps, agents: vec![], free_events: free },
        }
    }

    /// The ground dependencies of the instance with key `value` (for
    /// per-instance verification).
    pub fn instance_deps(&self, value: u64, table: &mut SymbolTable) -> Vec<Expr> {
        let mut binding = Binding::new();
        binding.insert(self.param.clone(), value);
        self.deps.iter().map(|d| d.instantiate(&binding, table)).collect()
    }
}

/// Example 12's travel template: the three dependencies of Example 4,
/// parametrized by the customer id.
pub fn travel_template() -> WorkflowTemplate {
    let mut t = WorkflowTemplate::new("travel", "cid");
    t.event("s_buy", EventAttrs::controllable(), true)
        .event("c_buy", EventAttrs::controllable(), true)
        .event("s_book", EventAttrs::triggerable(), false)
        .event("c_book", EventAttrs::controllable(), true)
        .event("s_cancel", EventAttrs::triggerable(), false);
    t.dependency("~s_buy[cid] + s_book[cid]").unwrap();
    t.dependency("~c_buy[cid] + c_book[cid].c_buy[cid]").unwrap();
    t.dependency("~c_book[cid] + c_buy[cid] + s_cancel[cid]").unwrap();
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::satisfies;

    #[test]
    fn template_rejects_foreign_variables() {
        let mut t = WorkflowTemplate::new("x", "cid");
        assert!(t.dependency("~a[cid] + b[other]").is_err());
        assert!(t.dependency("~a[cid] + b[cid]").is_ok());
    }

    #[test]
    fn three_customers_all_satisfied() {
        let template = travel_template();
        let wf = template.instances(&[7, 8, 9]);
        // 3 instances × 3 dependencies.
        assert_eq!(wf.spec.dependencies.len(), 9);
        assert_eq!(wf.spec.free_events.len(), 15);
        for seed in 0..10 {
            let report = wf.run(seed);
            assert!(report.all_satisfied(), "seed {seed}: {report:#?}");
            // Verify each instance separately against its own deps.
            let mut table = wf.spec.table.clone();
            for v in [7u64, 8, 9] {
                for d in template.instance_deps(v, &mut table) {
                    assert!(
                        satisfies(&report.maximal_trace, &d),
                        "seed {seed} instance {v}: {} violates {}",
                        report.maximal_trace,
                        d.display(&table)
                    );
                }
            }
        }
    }

    #[test]
    fn instances_interleave_on_the_wire() {
        // With instances on different sites and jittered latencies, some
        // seed interleaves events of different customers.
        let template = travel_template();
        let wf = template.instances(&[1, 2]);
        let mut saw_interleaving = false;
        for seed in 0..20 {
            let report = wf.run(seed);
            assert!(report.all_satisfied());
            let ids: Vec<&str> = report
                .trace
                .events()
                .iter()
                .filter_map(|l| wf.spec.table.name(l.symbol()))
                .collect();
            // Count switches between [1] and [2] events.
            let tags: Vec<bool> = ids.iter().map(|n| n.contains("[1]")).collect();
            let switches = tags.windows(2).filter(|w| w[0] != w[1]).count();
            if switches > 1 {
                saw_interleaving = true;
                break;
            }
        }
        assert!(saw_interleaving, "no seed interleaved the two customers");
    }
}
