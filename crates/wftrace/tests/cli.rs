//! Drives the compiled `wftrace` binary end to end: record a run of a
//! spec, explain a firing, aggregate stats, audit the DAG, and export a
//! Chrome trace.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wftrace-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{}-{name}", COUNTER.fetch_add(1, Ordering::Relaxed)))
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wftrace")).args(args).output().expect("spawn wftrace")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const CHAIN: &str = "workflow chain {\n\
                     \x20   event submit @ site 0;\n\
                     \x20   event approve @ site 1;\n\
                     \x20   dep d1: ~approve + submit . approve;\n\
                     }\n";

/// Record CHAIN into a fresh trace file and return the path.
fn recorded(extra: &[&str]) -> PathBuf {
    let spec = temp_path("chain.wf");
    std::fs::write(&spec, CHAIN).expect("write spec");
    let trace = temp_path("trace.json");
    let mut args = vec![
        "record",
        "--spec",
        spec.to_str().unwrap(),
        "--out",
        trace.to_str().unwrap(),
        "--seed",
        "7",
    ];
    args.extend_from_slice(extra);
    let out = run(&args);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}\n{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("recorded"), "{}", stdout(&out));
    trace
}

#[test]
fn record_then_explain_verifies_the_chain() {
    let trace = recorded(&[]);
    let out = run(&["explain", "--event", "approve", trace.to_str().unwrap()]);
    let text = stdout(&out);
    assert_eq!(out.status.code(), Some(0), "{text}");
    assert!(text.contains("occurred"), "{text}");
    assert!(text.contains("chain verified"), "{text}");
    // The justification must reach back to the fact that unblocked it.
    assert!(text.contains("submit"), "{text}");
}

#[test]
fn explain_misses_are_usage_errors() {
    let trace = recorded(&[]);
    let path = trace.to_str().unwrap();
    assert_eq!(run(&["explain", "--event", "nonexistent", path]).status.code(), Some(2));
    let at_miss = run(&["explain", "--event", "approve", "--at", "999999", path]);
    assert_eq!(at_miss.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&at_miss.stderr).contains("recorded occurrence times"),
        "{}",
        String::from_utf8_lossy(&at_miss.stderr)
    );
}

#[test]
fn stats_and_audit_read_the_trace() {
    let trace = recorded(&["--plan", "drop20"]);
    let path = trace.to_str().unwrap();
    let stats = run(&["stats", path]);
    let text = stdout(&stats);
    assert_eq!(stats.status.code(), Some(0), "{text}");
    assert!(text.contains("events recorded"), "{text}");
    assert!(text.contains("per-site load"), "{text}");
    assert!(text.contains("metrics:"), "{text}");
    let audit = run(&["audit", path]);
    assert_eq!(audit.status.code(), Some(0), "{}", stdout(&audit));
    assert!(stdout(&audit).contains("causal audit: ok"), "{}", stdout(&audit));
}

#[test]
fn chrome_export_round_trips_as_json() {
    let trace = recorded(&[]);
    let out = run(&["export", "--chrome", trace.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    assert!(text.starts_with('{') && text.trim_end().ends_with('}'), "{text}");
    assert!(text.contains("\"traceEvents\""), "{text}");
    assert!(text.contains("\"ph\":\"X\""), "{text}");
    let to_file = temp_path("chrome.json");
    let out2 =
        run(&["export", "--chrome", "--out", to_file.to_str().unwrap(), trace.to_str().unwrap()]);
    assert_eq!(out2.status.code(), Some(0));
    assert_eq!(std::fs::read_to_string(&to_file).expect("chrome file"), text);
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(run(&[]).status.code(), Some(2));
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(
        run(&["record", "--spec", "/nonexistent.wf", "--out", "/tmp/x"]).status.code(),
        Some(2)
    );
    assert_eq!(run(&["stats", "/nonexistent/trace.json"]).status.code(), Some(2));
    assert_eq!(run(&["export", "/tmp/whatever.json"]).status.code(), Some(2));
    let help = run(&["--help"]);
    assert_eq!(help.status.code(), Some(0));
    assert!(stdout(&help).contains("USAGE"));
}
