//! `wftrace` — flight-recorder run inspector.
//!
//! The companion of `wfcheck`: where `wfcheck` verifies a workflow
//! *statically*, `wftrace` records a run of it with the flight recorder
//! on and answers questions about what actually happened — why an event
//! fired (`explain`, a justification chain through the happens-before
//! DAG), how the run behaved in aggregate (`stats`), whether the causal
//! invariant held (`audit`), which spans match a filter or connect two
//! spans causally (`query`), what the online runtime monitors say about
//! the recorded run (`monitor`), and what it looked like on a timeline
//! (`export --chrome`, loadable in `chrome://tracing` / Perfetto).

use constrained_events::WorkflowBuilder;
use dist::ExecConfig;
use obs::{
    causal_audit, chrome_trace, explain, sampling_text, stats_text, Dag, ObsLit, RecordConfig,
    Recording, SpanId, SpanKind, TraceEvent,
};
use std::io::Write;
use std::process::ExitCode;

const HELP: &str = "\
wftrace - record and inspect flight-recorder traces of workflow runs

USAGE:
    wftrace record --spec <SPEC.wf> --out <TRACE.json> [OPTIONS]
    wftrace explain --event <NAME> [--at <T>] <TRACE.json>
    wftrace stats [--sampled] <TRACE.json>
    wftrace audit <TRACE.json>
    wftrace query [FILTERS] <TRACE.json>
    wftrace query --from <SEL> --to <SEL> <TRACE.json>
    wftrace monitor [--spec <SPEC.wf>] [--budget <N>] <TRACE.json>
    wftrace export --chrome [--out <FILE>] <TRACE.json>

RECORD OPTIONS:
    --seed <N>        simulation seed (default 1)
    --plan <NAME>     fault plan: clean, drop20, dup20, jitter,
                      partition, crash, chaos (default: no faults)
    --reliable        enable the at-least-once transport (implied by
                      any --plan other than clean)
    --sample <N>      keep 1-in-N non-safety spans (deterministic,
                      seeded off --seed); safety spans always kept

STATS:
    --sampled         append the sampling report: observed keep rate
                      and extrapolated true per-kind counts

EXPLAIN:
    --event <NAME>    the event to justify (e.g. buy::commit); prefix
                      with ~ for the negative literal
    --at <T>          disambiguate among multiple occurrences by their
                      virtual occurrence time

QUERY FILTERS (combinable; each line of output is one matching span):
    --kind <TAG,...>  span kinds (occurred, guard_eval, msg_send, ...)
    --node <N>        spans recorded by node N
    --site <S>        spans recorded on site S
    --event <NAME>    spans mentioning the literal (~ for negative)
    --window <A..B>   spans with virtual time in [A, B]
    --timeline <W>    bucket the matches into windows of width W and
                      print counts instead of spans

QUERY CAUSAL PATHS:
    --from <SEL>      path source; SEL is a span id (e.g. 17) or
                      kind:event (e.g. attempt:buy::commit, earliest
                      match)
    --to <SEL>        path target (latest match); prints a concrete
                      happens-before path, each edge re-verified by DAG
                      precedence; exit 1 when no path exists

MONITOR (replay the online runtime monitors over a recording):
    --spec <SPEC.wf>  workflow source (default: the path recorded in
                      the trace)
    --budget <N>      stall watchdog budget in virtual time

EXIT CODES:
    0  success (explain/audit: invariant held; query --from/--to: path
       found; monitor: no violations)
    1  explain chain unverified, audit violations, no causal path, or
       monitor verdicts/alerts include a violation
    2  usage or I/O error
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("wftrace: {msg}");
    eprintln!("run 'wftrace --help' for usage");
    ExitCode::from(2)
}

fn load_recording(path: &str) -> Result<Recording, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Recording::parse(&src).map_err(|e| format!("{path}: {e}"))
}

/// Parse `--flag value` / `--flag=value` pairs plus positional operands.
struct Opts {
    flags: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

impl Opts {
    fn parse(argv: &[String], value_flags: &[&str]) -> Result<Opts, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    flags.push((k.to_owned(), Some(v.to_owned())));
                } else if value_flags.contains(&name) {
                    let v = it.next().ok_or(format!("--{name} expects a value"))?;
                    flags.push((name.to_owned(), Some(v.clone())));
                } else {
                    flags.push((name.to_owned(), None));
                }
            } else if a.starts_with('-') && a.len() > 1 {
                return Err(format!("unknown option '{a}'"));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { flags, positional })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }

    fn check_known(&self, known: &[&str]) -> Result<(), String> {
        for (k, _) in &self.flags {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option '--{k}'"));
            }
        }
        Ok(())
    }
}

fn cmd_record(opts: &Opts) -> Result<(), String> {
    opts.check_known(&["spec", "out", "seed", "plan", "reliable", "sample"])?;
    let spec_path = opts.value("spec").ok_or("record requires --spec <SPEC.wf>")?;
    let out_path = opts.value("out").ok_or("record requires --out <TRACE.json>")?;
    let seed: u64 = match opts.value("seed") {
        Some(s) => s.parse().map_err(|_| format!("invalid seed '{s}'"))?,
        None => 1,
    };
    let src = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let mut workflow = WorkflowBuilder::from_spec(&src)
        .map_err(|e| format!("{spec_path}:{}:{}: {}", e.line, e.col, e.message))?
        .build();
    // Agent-less controllable events have no driver in a bare spec; give
    // each an attempt at t=1 so the recorded run actually exercises them.
    for f in &mut workflow.spec.free_events {
        if f.attrs.controllable && f.attempt_after.is_none() {
            f.attempt_after = Some(1);
        }
    }

    let mut config = ExecConfig::seeded(seed);
    config.record = Some(match opts.value("sample") {
        // Sampling keys its deterministic coin off the sim seed, so a
        // re-recorded (spec, seed, rate) elides the exact same spans.
        Some(n) => {
            let n: u32 = n.parse().map_err(|_| format!("invalid sample rate '{n}'"))?;
            RecordConfig::default().sampled(n, seed)
        }
        None => RecordConfig::default(),
    });
    let plan_name = opts.value("plan");
    if opts.has("reliable") || plan_name.is_some_and(|p| p != "clean") {
        config.reliable = Some(dist::ReliableConfig::default());
    }
    let report = match plan_name {
        None => workflow.run_with(config),
        Some(name) => {
            let plan = testkit::conformance::standard_plans(seed)
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| p)
                .ok_or_else(|| format!("unknown fault plan '{name}'"))?;
            workflow.run_faulty(config, plan)
        }
    };
    let mut rec = report.recording.ok_or("executor returned no recording")?;
    rec.workflow = spec_path.to_owned();
    std::fs::write(out_path, rec.to_json_string()).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "recorded {} events ({} dropped, {} sampled out) over {} virtual time units -> {out_path}",
        rec.events.len(),
        rec.dropped,
        rec.sampled_out,
        report.duration
    );
    Ok(())
}

fn single_trace(opts: &Opts) -> Result<Recording, String> {
    match opts.positional.as_slice() {
        [path] => load_recording(path),
        [] => Err("expected a trace file".to_owned()),
        more => Err(format!("expected one trace file, got {}", more.len())),
    }
}

/// The literal a span is about, when it is about one.
fn span_lit(kind: &SpanKind) -> Option<ObsLit> {
    match kind {
        SpanKind::Attempt { lit }
        | SpanKind::GuardEval { lit, .. }
        | SpanKind::FactApplied { lit, .. }
        | SpanKind::Occurred { lit, .. }
        | SpanKind::Parked { lit }
        | SpanKind::Rejected { lit }
        | SpanKind::Triggered { lit }
        | SpanKind::PromiseOpen { lit, .. }
        | SpanKind::PromiseGrant { lit, .. }
        | SpanKind::PromiseDeny { lit, .. }
        | SpanKind::PromiseAbort { lit }
        | SpanKind::PromiseCommit { lit } => Some(*lit),
        _ => None,
    }
}

/// Resolve a `--from`/`--to` selector: a raw span id (`17`), or
/// `kind:event` (`occurred:buy::commit`) picking the earliest
/// (`latest=false`) or latest matching span.
fn resolve_selector(rec: &Recording, sel: &str, latest: bool) -> Result<SpanId, String> {
    if let Ok(n) = sel.parse::<u64>() {
        let id = SpanId(n);
        return match rec.event(id) {
            Some(_) => Ok(id),
            None => Err(format!("span {id} is not in the recording")),
        };
    }
    let (tag, event) = sel
        .split_once(':')
        .ok_or_else(|| format!("selector '{sel}' is neither a span id nor kind:event"))?;
    let lit = rec
        .lit_by_name(event)
        .ok_or_else(|| format!("unknown event '{event}' in selector '{sel}'"))?;
    let mut matches =
        rec.events.iter().filter(|e| e.kind.tag() == tag && span_lit(&e.kind) == Some(lit));
    let found = if latest { matches.next_back() } else { matches.next() };
    found.map(|e| e.id).ok_or_else(|| format!("no span matches selector '{sel}'"))
}

fn render_span(e: &TraceEvent, symbols: &[String]) -> String {
    format!("{:>6}  t={:<6} n{:<3} s{:<2} {}", e.id, e.at, e.node, e.site, e.kind.describe(symbols))
}

/// `query --from A --to B`: print a concrete happens-before path and
/// re-verify every edge with [`Dag::precedes`].
fn query_path(rec: &Recording, from: &str, to: &str) -> Result<ExitCode, String> {
    let a = resolve_selector(rec, from, false)?;
    let b = resolve_selector(rec, to, true)?;
    let dag = Dag::new(rec);
    let Some(path) = dag.path(a, b) else {
        println!("no causal path {a} -> {b}");
        return Ok(ExitCode::from(1));
    };
    println!("causal path {a} -> {b} ({} hops):", path.len().saturating_sub(1));
    for id in &path {
        let e = rec.event(*id).expect("path spans are in the recording");
        println!("{}", render_span(e, &rec.symbols));
    }
    for w in path.windows(2) {
        if !dag.precedes(w[0], w[1]) {
            return Err(format!("internal: edge {} -> {} fails precedence", w[0], w[1]));
        }
    }
    println!("all {} edges verified by happens-before precedence", path.len() - 1);
    Ok(ExitCode::SUCCESS)
}

fn cmd_query(opts: &Opts) -> Result<ExitCode, String> {
    opts.check_known(&["kind", "node", "site", "event", "window", "from", "to", "timeline"])?;
    let rec = single_trace(opts)?;
    match (opts.value("from"), opts.value("to")) {
        (Some(from), Some(to)) => return query_path(&rec, from, to),
        (Some(_), None) | (None, Some(_)) => {
            return Err("--from and --to must be given together".to_owned())
        }
        (None, None) => {}
    }
    let kinds: Option<Vec<&str>> = opts.value("kind").map(|s| s.split(',').collect());
    let node: Option<u32> =
        opts.value("node").map(str::parse).transpose().map_err(|_| "--node expects a number")?;
    let site: Option<u32> =
        opts.value("site").map(str::parse).transpose().map_err(|_| "--site expects a number")?;
    let lit = match opts.value("event") {
        Some(name) => Some(rec.lit_by_name(name).ok_or_else(|| format!("unknown event '{name}'"))?),
        None => None,
    };
    let window = match opts.value("window") {
        Some(w) => {
            let (a, b) = w.split_once("..").ok_or("--window expects A..B")?;
            let a: u64 = a.parse().map_err(|_| "--window expects numeric bounds")?;
            let b: u64 = b.parse().map_err(|_| "--window expects numeric bounds")?;
            Some((a, b))
        }
        None => None,
    };
    let matched: Vec<&TraceEvent> = rec
        .events
        .iter()
        .filter(|e| kinds.as_ref().is_none_or(|ks| ks.contains(&e.kind.tag())))
        .filter(|e| node.is_none_or(|n| e.node == n))
        .filter(|e| site.is_none_or(|s| e.site == s))
        .filter(|e| lit.is_none_or(|l| span_lit(&e.kind) == Some(l)))
        .filter(|e| window.is_none_or(|(a, b)| e.at >= a && e.at <= b))
        .collect();
    if let Some(width) = opts.value("timeline") {
        let width: u64 = width.parse().map_err(|_| "--timeline expects a bucket width")?;
        if width == 0 {
            return Err("--timeline width must be positive".to_owned());
        }
        let mut buckets: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for e in &matched {
            *buckets.entry(e.at / width).or_insert(0) += 1;
        }
        for (b, count) in &buckets {
            println!("t=[{}..{})  {count}", b * width, (b + 1) * width);
        }
    } else {
        for e in &matched {
            println!("{}", render_span(e, &rec.symbols));
        }
    }
    println!("{} of {} spans matched", matched.len(), rec.events.len());
    Ok(ExitCode::SUCCESS)
}

/// Replay the online runtime monitors over a recording, against the
/// dependencies of the (re-parsed) workflow specification.
fn cmd_monitor(opts: &Opts) -> Result<ExitCode, String> {
    opts.check_known(&["spec", "budget"])?;
    let rec = single_trace(opts)?;
    let spec_path = match opts.value("spec") {
        Some(p) => p.to_owned(),
        None if !rec.workflow.is_empty() => rec.workflow.clone(),
        None => return Err("the trace names no spec; pass --spec <SPEC.wf>".to_owned()),
    };
    let src = std::fs::read_to_string(&spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let workflow = WorkflowBuilder::from_spec(&src)
        .map_err(|e| format!("{spec_path}:{}:{}: {}", e.line, e.col, e.message))?
        .build();
    // The recording's literal indices are only meaningful under the same
    // symbol interning order; re-parsing the same spec reproduces it.
    for (i, name) in rec.symbols.iter().enumerate() {
        let here = workflow.spec.table.name(constrained_events::SymbolId(i as u32));
        if here != Some(name.as_str()) {
            return Err(format!(
                "recording symbol {i} is '{name}' but the spec interns '{}' — \
                 was the trace recorded from this spec?",
                here.unwrap_or("<missing>")
            ));
        }
    }
    let mut config = monitor::MonitorConfig::default();
    if let Some(b) = opts.value("budget") {
        config.stall_budget = b.parse().map_err(|_| "--budget expects a virtual time")?;
    }
    let mrep = monitor::replay(
        &rec.events,
        &workflow.spec.table,
        &workflow.spec.dependencies,
        dist::guard_gated(&workflow.spec),
        config,
    );
    println!(
        "monitor replay over {} spans: {} facts observed, {} guard checks",
        rec.events.len(),
        mrep.facts,
        mrep.guard_checks
    );
    for (ix, v) in mrep.verdicts.iter().enumerate() {
        let dep = &workflow.spec.dependencies[ix];
        println!("dep {ix} [{}]: {}", dep.display(&workflow.spec.table), v.label());
    }
    if mrep.alerts.is_empty() {
        println!("alerts: none");
    } else {
        println!("alerts ({}):", mrep.alerts.len());
        for a in &mrep.alerts {
            println!("  [{}] t={} n{}: {}", a.kind.tag(), a.at, a.node, a.detail);
        }
    }
    if mrep.has_violation() {
        println!("monitor verdict: VIOLATIONS FOUND");
        Ok(ExitCode::from(1))
    } else {
        println!("monitor verdict: ok");
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv.iter().any(|a| a == "-h" || a == "--help") {
        let _ = std::io::stdout().write_all(HELP.as_bytes());
        return if argv.is_empty() { ExitCode::from(2) } else { ExitCode::SUCCESS };
    }
    let (cmd, rest) = argv.split_first().expect("nonempty");
    let value_flags = [
        "spec", "out", "seed", "plan", "event", "at", "kind", "node", "site", "window", "from",
        "to", "timeline", "budget", "sample",
    ];
    let opts = match Opts::parse(rest, &value_flags) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    match cmd.as_str() {
        "record" => match cmd_record(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        "explain" => {
            if let Err(e) = opts.check_known(&["event", "at"]) {
                return fail(&e);
            }
            let Some(event) = opts.value("event") else {
                return fail("explain requires --event <NAME>");
            };
            let at = match opts.value("at").map(str::parse).transpose() {
                Ok(t) => t,
                Err(_) => return fail("--at expects a virtual time"),
            };
            let rec = match single_trace(&opts) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            match explain(&rec, event, at) {
                Ok(ex) => {
                    let _ = std::io::stdout().write_all(ex.render(&rec).as_bytes());
                    if ex.verified {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "stats" => {
            if let Err(e) = opts.check_known(&["sampled"]) {
                return fail(&e);
            }
            match single_trace(&opts) {
                Ok(rec) => {
                    let _ = std::io::stdout().write_all(stats_text(&rec).as_bytes());
                    if opts.has("sampled") {
                        let _ = std::io::stdout().write_all(sampling_text(&rec).as_bytes());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "audit" => {
            if let Err(e) = opts.check_known(&[]) {
                return fail(&e);
            }
            match single_trace(&opts) {
                Ok(rec) => {
                    let violations = causal_audit(&rec);
                    if violations.is_empty() {
                        println!("causal audit: ok ({} events)", rec.events.len());
                        ExitCode::SUCCESS
                    } else {
                        for v in &violations {
                            println!("violation: {v}");
                        }
                        ExitCode::from(1)
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "query" => match cmd_query(&opts) {
            Ok(code) => code,
            Err(e) => fail(&e),
        },
        "monitor" => match cmd_monitor(&opts) {
            Ok(code) => code,
            Err(e) => fail(&e),
        },
        "export" => {
            if let Err(e) = opts.check_known(&["chrome", "out"]) {
                return fail(&e);
            }
            if !opts.has("chrome") {
                return fail("export requires --chrome (the only supported format)");
            }
            let rec = match single_trace(&opts) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            let doc = chrome_trace(&rec);
            match opts.value("out") {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &doc) {
                        return fail(&format!("{path}: {e}"));
                    }
                    println!("wrote {} bytes to {path}", doc.len());
                }
                None => {
                    let _ = std::io::stdout().write_all(doc.as_bytes());
                }
            }
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command '{other}'")),
    }
}
