//! `wftrace` — flight-recorder run inspector.
//!
//! The companion of `wfcheck`: where `wfcheck` verifies a workflow
//! *statically*, `wftrace` records a run of it with the flight recorder
//! on and answers questions about what actually happened — why an event
//! fired (`explain`, a justification chain through the happens-before
//! DAG), how the run behaved in aggregate (`stats`), whether the causal
//! invariant held (`audit`), and what it looked like on a timeline
//! (`export --chrome`, loadable in `chrome://tracing` / Perfetto).

use constrained_events::WorkflowBuilder;
use dist::ExecConfig;
use obs::{causal_audit, chrome_trace, explain, stats_text, RecordConfig, Recording};
use std::io::Write;
use std::process::ExitCode;

const HELP: &str = "\
wftrace - record and inspect flight-recorder traces of workflow runs

USAGE:
    wftrace record --spec <SPEC.wf> --out <TRACE.json> [OPTIONS]
    wftrace explain --event <NAME> [--at <T>] <TRACE.json>
    wftrace stats <TRACE.json>
    wftrace audit <TRACE.json>
    wftrace export --chrome [--out <FILE>] <TRACE.json>

RECORD OPTIONS:
    --seed <N>        simulation seed (default 1)
    --plan <NAME>     fault plan: clean, drop20, dup20, jitter,
                      partition, crash, chaos (default: no faults)
    --reliable        enable the at-least-once transport (implied by
                      any --plan other than clean)

EXPLAIN:
    --event <NAME>    the event to justify (e.g. buy::commit); prefix
                      with ~ for the negative literal
    --at <T>          disambiguate among multiple occurrences by their
                      virtual occurrence time

EXIT CODES:
    0  success (and, for explain/audit, the causal invariant held)
    1  explain chain unverified, or audit found violations
    2  usage or I/O error
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("wftrace: {msg}");
    eprintln!("run 'wftrace --help' for usage");
    ExitCode::from(2)
}

fn load_recording(path: &str) -> Result<Recording, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Recording::parse(&src).map_err(|e| format!("{path}: {e}"))
}

/// Parse `--flag value` / `--flag=value` pairs plus positional operands.
struct Opts {
    flags: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

impl Opts {
    fn parse(argv: &[String], value_flags: &[&str]) -> Result<Opts, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    flags.push((k.to_owned(), Some(v.to_owned())));
                } else if value_flags.contains(&name) {
                    let v = it.next().ok_or(format!("--{name} expects a value"))?;
                    flags.push((name.to_owned(), Some(v.clone())));
                } else {
                    flags.push((name.to_owned(), None));
                }
            } else if a.starts_with('-') && a.len() > 1 {
                return Err(format!("unknown option '{a}'"));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { flags, positional })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == name).and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }

    fn check_known(&self, known: &[&str]) -> Result<(), String> {
        for (k, _) in &self.flags {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option '--{k}'"));
            }
        }
        Ok(())
    }
}

fn cmd_record(opts: &Opts) -> Result<(), String> {
    opts.check_known(&["spec", "out", "seed", "plan", "reliable"])?;
    let spec_path = opts.value("spec").ok_or("record requires --spec <SPEC.wf>")?;
    let out_path = opts.value("out").ok_or("record requires --out <TRACE.json>")?;
    let seed: u64 = match opts.value("seed") {
        Some(s) => s.parse().map_err(|_| format!("invalid seed '{s}'"))?,
        None => 1,
    };
    let src = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let mut workflow = WorkflowBuilder::from_spec(&src)
        .map_err(|e| format!("{spec_path}:{}:{}: {}", e.line, e.col, e.message))?
        .build();
    // Agent-less controllable events have no driver in a bare spec; give
    // each an attempt at t=1 so the recorded run actually exercises them.
    for f in &mut workflow.spec.free_events {
        if f.attrs.controllable && f.attempt_after.is_none() {
            f.attempt_after = Some(1);
        }
    }

    let mut config = ExecConfig::seeded(seed);
    config.record = Some(RecordConfig::default());
    let plan_name = opts.value("plan");
    if opts.has("reliable") || plan_name.is_some_and(|p| p != "clean") {
        config.reliable = Some(dist::ReliableConfig::default());
    }
    let report = match plan_name {
        None => workflow.run_with(config),
        Some(name) => {
            let plan = testkit::conformance::standard_plans(seed)
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, p)| p)
                .ok_or_else(|| format!("unknown fault plan '{name}'"))?;
            workflow.run_faulty(config, plan)
        }
    };
    let mut rec = report.recording.ok_or("executor returned no recording")?;
    rec.workflow = spec_path.to_owned();
    std::fs::write(out_path, rec.to_json_string()).map_err(|e| format!("{out_path}: {e}"))?;
    println!(
        "recorded {} events ({} dropped) over {} virtual time units -> {out_path}",
        rec.events.len(),
        rec.dropped,
        report.duration
    );
    Ok(())
}

fn single_trace(opts: &Opts) -> Result<Recording, String> {
    match opts.positional.as_slice() {
        [path] => load_recording(path),
        [] => Err("expected a trace file".to_owned()),
        more => Err(format!("expected one trace file, got {}", more.len())),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv.iter().any(|a| a == "-h" || a == "--help") {
        let _ = std::io::stdout().write_all(HELP.as_bytes());
        return if argv.is_empty() { ExitCode::from(2) } else { ExitCode::SUCCESS };
    }
    let (cmd, rest) = argv.split_first().expect("nonempty");
    let value_flags = ["spec", "out", "seed", "plan", "event", "at"];
    let opts = match Opts::parse(rest, &value_flags) {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    match cmd.as_str() {
        "record" => match cmd_record(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(&e),
        },
        "explain" => {
            if let Err(e) = opts.check_known(&["event", "at"]) {
                return fail(&e);
            }
            let Some(event) = opts.value("event") else {
                return fail("explain requires --event <NAME>");
            };
            let at = match opts.value("at").map(str::parse).transpose() {
                Ok(t) => t,
                Err(_) => return fail("--at expects a virtual time"),
            };
            let rec = match single_trace(&opts) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            match explain(&rec, event, at) {
                Ok(ex) => {
                    let _ = std::io::stdout().write_all(ex.render(&rec).as_bytes());
                    if ex.verified {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "stats" => {
            if let Err(e) = opts.check_known(&[]) {
                return fail(&e);
            }
            match single_trace(&opts) {
                Ok(rec) => {
                    let _ = std::io::stdout().write_all(stats_text(&rec).as_bytes());
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "audit" => {
            if let Err(e) = opts.check_known(&[]) {
                return fail(&e);
            }
            match single_trace(&opts) {
                Ok(rec) => {
                    let violations = causal_audit(&rec);
                    if violations.is_empty() {
                        println!("causal audit: ok ({} events)", rec.events.len());
                        ExitCode::SUCCESS
                    } else {
                        for v in &violations {
                            println!("violation: {v}");
                        }
                        ExitCode::from(1)
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "export" => {
            if let Err(e) = opts.check_known(&["chrome", "out"]) {
                return fail(&e);
            }
            if !opts.has("chrome") {
                return fail("export requires --chrome (the only supported format)");
            }
            let rec = match single_trace(&opts) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            let doc = chrome_trace(&rec);
            match opts.value("out") {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &doc) {
                        return fail(&format!("{path}: {e}"));
                    }
                    println!("wrote {} bytes to {path}", doc.len());
                }
                None => {
                    let _ = std::io::stdout().write_all(doc.as_bytes());
                }
            }
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command '{other}'")),
    }
}
