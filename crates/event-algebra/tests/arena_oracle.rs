//! Oracle property tests for the hash-consed [`ExprArena`]: on random
//! expressions over a small alphabet, every arena operation must agree
//! with the reference tree implementation it replaces — normalization,
//! residuation, satisfiability, avoidance and the triggering predicate.
//! The arena is the hot-path representation; the tree functions are the
//! specification.

use event_algebra::{
    normalize, requires, residuate, satisfiable, satisfiable_avoiding, Expr, ExprArena, Literal,
    SymbolId,
};
use proptest::prelude::*;

const NSYMS: u32 = 6;

/// Strategy for a random literal over the fixed symbols.
fn lit_strategy() -> impl Strategy<Value = Literal> {
    (0..NSYMS, any::<bool>()).prop_map(|(s, pos)| {
        if pos {
            Literal::pos(SymbolId(s))
        } else {
            Literal::neg(SymbolId(s))
        }
    })
}

/// Strategy for a random expression of bounded depth, built through the
/// canonicalizing constructors (the arena's round-trip contract is stated
/// for canonical trees; raw `Expr::Or(vec![...])` nodes are covered by
/// the constructor laws in `laws.rs`).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        5 => lit_strategy().prop_map(Expr::lit),
        1 => Just(Expr::Top),
        1 => Just(Expr::Zero),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::or),
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::and),
            prop::collection::vec(inner, 2..=3).prop_map(Expr::seq),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interning and rebuilding is the identity on canonical trees, and
    /// id equality coincides with structural equality.
    #[test]
    fn intern_round_trips(e in expr_strategy(), f in expr_strategy()) {
        let mut arena = ExprArena::new();
        let ie = arena.intern(&e);
        let if_ = arena.intern(&f);
        prop_assert_eq!(arena.expr(ie), e.clone());
        prop_assert_eq!(arena.expr(if_), f.clone());
        prop_assert_eq!(ie == if_, e == f);
        // Re-interning hits the same id.
        prop_assert_eq!(arena.intern(&e), ie);
    }

    /// Arena normalization equals tree normalization.
    #[test]
    fn normalize_matches_tree(e in expr_strategy()) {
        let mut arena = ExprArena::new();
        let id = arena.intern(&e);
        let nid = arena.normalize(id);
        prop_assert_eq!(arena.expr(nid), normalize(&e));
        prop_assert!(arena.is_normal(nid));
    }

    /// Arena residuation (normalize + R1–R8 with the memo cache) equals
    /// tree residuation, including chained residuation by two literals —
    /// which exercises cache hits on shared residuals.
    #[test]
    fn residuate_matches_tree(e in expr_strategy(), a in lit_strategy(), b in lit_strategy()) {
        let mut arena = ExprArena::new();
        let id = arena.intern(&e);
        let ra = arena.residuate(id, a);
        prop_assert_eq!(arena.expr(ra), residuate(&e, a));
        let rab = arena.residuate(ra, b);
        prop_assert_eq!(arena.expr(rab), residuate(&residuate(&e, a), b));
        // Same query again: must come out of the cache unchanged.
        prop_assert_eq!(arena.residuate(id, a), ra);
    }

    /// Satisfiability, avoidance-satisfiability and the triggering
    /// predicate agree with the tree implementations for every literal of
    /// the alphabet (and a sample literal possibly outside it).
    #[test]
    fn satisfiability_matches_tree(e in expr_strategy(), probe in lit_strategy()) {
        let mut arena = ExprArena::new();
        let id = arena.intern(&e);
        prop_assert_eq!(arena.satisfiable(id), satisfiable(&e));
        let mut lits = arena.alphabet(id);
        lits.push(probe);
        for l in lits {
            prop_assert_eq!(
                arena.satisfiable_avoiding(id, l),
                satisfiable_avoiding(&e, l),
                "avoiding {:?}", l
            );
            prop_assert_eq!(arena.requires(id, l), requires(&e, l), "requires {:?}", l);
        }
    }

    /// One arena serving many expressions stays consistent: interleaved
    /// queries against fresh single-use arenas give identical answers.
    #[test]
    fn shared_arena_is_isolated(
        es in prop::collection::vec(expr_strategy(), 2..=4),
        l in lit_strategy(),
    ) {
        let mut shared = ExprArena::new();
        for e in &es {
            let id = shared.intern(e);
            let mut fresh = ExprArena::new();
            let fid = fresh.intern(e);
            prop_assert_eq!(shared.expr(shared.residuate(id, l)), fresh.expr(fresh.residuate(fid, l)));
            prop_assert_eq!(shared.satisfiable(id), fresh.satisfiable(fid));
        }
    }
}
