//! Property tests: algebraic laws of `E` and soundness of residuation
//! (Theorem 1), checked against the trace semantics by exhaustive
//! enumeration over small alphabets.

use event_algebra::{
    enumerate_maximal, enumerate_universe, equivalent, normalize, residuate, residuate_trace,
    residuation_sound, satisfiable, satisfiable_avoiding, satisfies, DependencyMachine, Expr,
    Literal, SymbolId,
};
use proptest::prelude::*;

const NSYMS: u32 = 3;

fn syms() -> Vec<SymbolId> {
    (0..NSYMS).map(SymbolId).collect()
}

/// Strategy for a random literal over the fixed symbols.
fn lit_strategy() -> impl Strategy<Value = Literal> {
    (0..NSYMS, any::<bool>()).prop_map(|(s, pos)| {
        if pos {
            Literal::pos(SymbolId(s))
        } else {
            Literal::neg(SymbolId(s))
        }
    })
}

/// Strategy for a random expression of bounded depth.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        5 => lit_strategy().prop_map(Expr::lit),
        1 => Just(Expr::Top),
        1 => Just(Expr::Zero),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::or),
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Expr::and),
            prop::collection::vec(inner, 2..=3).prop_map(Expr::seq),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `+` and `|` are associative, commutative and idempotent; `·` is
    /// associative — all semantically (the constructors canonicalize, so
    /// we compare raw nodes against constructed ones).
    #[test]
    fn or_and_laws(a in expr_strategy(), b in expr_strategy(), c in expr_strategy()) {
        let s = syms();
        let ab_c = Expr::Or(vec![Expr::Or(vec![a.clone(), b.clone()]), c.clone()]);
        let a_bc = Expr::Or(vec![a.clone(), Expr::Or(vec![b.clone(), c.clone()])]);
        prop_assert!(equivalent(&ab_c, &a_bc, &s));
        let ab = Expr::And(vec![a.clone(), b.clone()]);
        let ba = Expr::And(vec![b.clone(), a.clone()]);
        prop_assert!(equivalent(&ab, &ba, &s));
        let aa = Expr::Or(vec![a.clone(), a.clone()]);
        prop_assert!(equivalent(&aa, &a, &s));
    }

    /// `·` distributes over `+` and over `|` (the laws normalization
    /// relies on — Section 3.2 "validates various useful properties").
    #[test]
    fn seq_distributivity(a in expr_strategy(), b in expr_strategy(), c in expr_strategy()) {
        let s = syms();
        let lhs = Expr::Seq(vec![Expr::Or(vec![a.clone(), b.clone()]), c.clone()]);
        let rhs = Expr::Or(vec![
            Expr::Seq(vec![a.clone(), c.clone()]),
            Expr::Seq(vec![b.clone(), c.clone()]),
        ]);
        prop_assert!(equivalent(&lhs, &rhs, &s));
        let lhs = Expr::Seq(vec![Expr::And(vec![a.clone(), b.clone()]), c.clone()]);
        let rhs = Expr::And(vec![
            Expr::Seq(vec![a.clone(), c.clone()]),
            Expr::Seq(vec![b.clone(), c.clone()]),
        ]);
        prop_assert!(equivalent(&lhs, &rhs, &s));
    }

    /// Normalization preserves meaning and establishes the normal form.
    #[test]
    fn normalize_sound(a in expr_strategy()) {
        let n = normalize(&a);
        prop_assert!(event_algebra::is_normal(&n));
        prop_assert!(equivalent(&a, &n, &syms()));
    }

    /// Theorem 1: the residuation rules R1–R8 agree with the
    /// model-theoretic definition on every realizable future.
    #[test]
    fn theorem1_residuation_sound(a in expr_strategy(), by in lit_strategy()) {
        prop_assert!(residuation_sound(&a, by, &syms()));
    }

    /// A maximal trace satisfies `D` iff chain-residuating `D` by the
    /// trace ends at `⊤` (the basis of Definition 3 / Figure 2).
    #[test]
    fn residual_chain_characterizes_satisfaction(a in expr_strategy()) {
        for u in enumerate_maximal(&syms()) {
            let r = residuate_trace(&a, &u);
            prop_assert!(r.is_top() || r.is_zero(), "residual {r} not terminal on {u}");
            prop_assert_eq!(r.is_top(), satisfies(&u, &a), "u={}", u);
        }
    }

    /// The dependency machine accepts exactly the satisfying maximal
    /// traces and is consistent with step-by-step residuation.
    #[test]
    fn machine_agrees_with_semantics(a in expr_strategy()) {
        let m = DependencyMachine::compile(&a);
        for u in enumerate_maximal(&syms()) {
            prop_assert_eq!(m.is_accepting(m.run(&u)), satisfies(&u, &a), "u={}", u);
        }
    }

    /// `satisfiable` agrees with brute-force search over maximal traces.
    #[test]
    fn satisfiable_agrees_with_enumeration(a in expr_strategy()) {
        let brute = enumerate_maximal(&syms()).iter().any(|u| satisfies(u, &a));
        prop_assert_eq!(satisfiable(&a), brute);
    }

    /// `satisfiable_avoiding` agrees with brute force restricted to
    /// traces not containing the avoided event.
    #[test]
    fn satisfiable_avoiding_agrees(a in expr_strategy(), avoid in lit_strategy()) {
        let brute = enumerate_maximal(&syms())
            .iter()
            .any(|u| !u.contains(avoid) && satisfies(u, &a));
        prop_assert_eq!(satisfiable_avoiding(&a, avoid), brute);
    }

    /// Residuation by an irrelevant symbol is the identity (rule R6).
    #[test]
    fn residuation_r6_identity(a in expr_strategy()) {
        let foreign = Literal::pos(SymbolId(7));
        prop_assert_eq!(residuate(&normalize(&a), foreign), normalize(&a));
    }

    /// Satisfaction is closed under trace extension (the property that
    /// justifies `E·⊤ = ⊤·E = E`).
    #[test]
    fn satisfaction_extension_closed(a in expr_strategy()) {
        let universe = enumerate_universe(&syms());
        for u in &universe {
            if !satisfies(u, &a) {
                continue;
            }
            for v in &universe {
                if let Some(uv) = u.concat(v) {
                    prop_assert!(satisfies(&uv, &a), "append {u} {v}");
                }
                if let Some(vu) = v.concat(u) {
                    prop_assert!(satisfies(&vu, &a), "prepend {v} {u}");
                }
            }
        }
    }
}
