//! The event algebra `E` of Singh (ICDE 1996): declarative intertask
//! dependencies with a trace semantics, symbolic residuation, and
//! per-dependency state machines.
//!
//! This crate is the foundation of the workspace. It provides:
//!
//! - [`SymbolTable`], [`SymbolId`], [`Literal`] — interned significant
//!   events and their complements (the alphabet `Γ`);
//! - [`Expr`] — event expressions built with `·` (sequence), `+` (choice),
//!   `|` (conjunction), `0`, `⊤` (Syntax 1–4);
//! - [`Trace`] and universe enumeration ([`enumerate_universe`],
//!   [`enumerate_maximal`]) implementing Definition 1;
//! - the trace semantics [`satisfies`] (Semantics 1–5) and denotations;
//! - normalization ([`normalize`]) into the form the residuation rules
//!   require;
//! - symbolic residuation [`residuate`] (rules R1–R8, Section 3.4) plus
//!   the model-theoretic oracle used to check Theorem 1 mechanically;
//! - [`ExprArena`] — the hash-consed interned DAG used on hot paths, with
//!   persistently memoized normalize/residuate/satisfiable (the tree
//!   functions above remain the reference oracle);
//! - [`DependencyMachine`] — the residual state machine of Figure 2,
//!   doubling as the per-dependency automaton of the centralized baseline;
//! - [`ProductMachine`] — budgeted reachability over the product of the
//!   per-dependency machines, the engine of the compile-time workflow
//!   analyzer (Section 6);
//! - a text [`parse_expr`] parser for dependency expressions.
//!
//! # Example
//!
//! ```
//! use event_algebra::{SymbolTable, parse_expr, residuate, satisfies, Trace};
//!
//! let mut syms = SymbolTable::new();
//! // Klein's e < f: if both occur, e precedes f.
//! let d = parse_expr("~e + ~f + e.f", &mut syms).unwrap();
//! let e = syms.event("e");
//! let f = syms.event("f");
//!
//! // ⟨e f⟩ satisfies the dependency, ⟨f e⟩ does not.
//! assert!(satisfies(&Trace::new([e, f]).unwrap(), &d));
//! assert!(!satisfies(&Trace::new([f, e]).unwrap(), &d));
//!
//! // After e the scheduler's remaining obligation is f + f̄.
//! let after_e = residuate(&d, e);
//! assert_eq!(after_e.display(&syms).to_string(), "f + ~f");
//! ```

#![warn(missing_docs)]

mod arena;
mod expr;
mod fxhash;
mod machine;
mod norm;
mod parse;
mod pexpr;
mod product;
mod residue;
mod semantics;
pub mod shard;
mod symbol;
mod trace;

pub use arena::{ExprArena, ExprId};
pub use expr::{Expr, ExprDisplay};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use machine::{DependencyMachine, StateId};
pub use norm::{is_normal, normalize};
pub use parse::{parse_expr, ParseError};
pub use pexpr::{Binding, PEvent, PExpr, PLit, Term};
pub use product::{ProductId, ProductMachine, Reach, StateBudget};
pub use residue::{
    requires, residual_oracle, residuate, residuate_trace, residuation_sound, satisfiable,
    satisfiable_avoiding, satisfiable_avoiding_all,
};
pub use semantics::{denotation, equivalent, equivalent_auto, satisfies};
pub use shard::{Obligation, ObligationKind, ShardClass, ShardPlan};
pub use symbol::{Literal, Polarity, SymbolId, SymbolTable};
pub use trace::{enumerate_maximal, enumerate_universe, Trace};
