//! Shard-plan certificates: the serializable artifact of the static
//! interference analyzer (pass 4 of crate `analyze`).
//!
//! A [`ShardPlan`] partitions a workflow's events into *colocation
//! classes*: events that some dependency machine cannot transpose
//! (see [`DependencyMachine::symbols_commute`](crate::DependencyMachine::symbols_commute))
//! must share a shard, because a work-stealing runtime that schedules
//! them from different queues could realize either order and change the
//! observable outcome. Everything else may run concurrently; the plan
//! records *why* each cross-class pair is safe as a discharged proof
//! [`Obligation`] — either the pair commutes on every shared machine, or
//! the coordination protocol itself (the `□`/`◇` guard rounds of
//! Lemma 5) serializes it.
//!
//! The plan is a plain data type in the algebra crate so both the
//! analyzer (which builds it) and the distributed executor (which pins
//! actor placement with it) can share it without a dependency cycle.
//! Serialization is hand-rolled JSON, like every other artifact in this
//! workspace.

use crate::symbol::{SymbolId, SymbolTable};
use std::collections::BTreeMap;

/// One colocation class: events that must be scheduled from the same
/// shard because some dependency machine does not commute on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardClass {
    /// Dense class index within the plan.
    pub id: u32,
    /// Member events, sorted by symbol id.
    pub events: Vec<SymbolId>,
    /// Site pinned by a member's declaration, if any member declared one.
    pub site: Option<u32>,
}

/// Why a cross-class pair needs no shard-level ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationKind {
    /// Every dependency machine mentioning both symbols commutes on them
    /// — discharged statically by the all-states transposition check.
    Commutes,
    /// The pair is guard-coupled: the synthesized guards already exchange
    /// `□`/`◇` coordination messages that serialize the two events, so
    /// the shards themselves need no ordering.
    GuardOrdered,
}

impl ObligationKind {
    /// Stable kebab-case tag (JSON, CLI output).
    pub fn tag(self) -> &'static str {
        match self {
            ObligationKind::Commutes => "commutes",
            ObligationKind::GuardOrdered => "guard-ordered",
        }
    }
}

/// A discharged cross-class proof obligation: the pair straddles two
/// classes, shares dependency `dep`, and is safe for the stated reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// The smaller symbol of the pair.
    pub left: SymbolId,
    /// The larger symbol of the pair.
    pub right: SymbolId,
    /// Index of the witnessing dependency in the workflow's list.
    pub dep: usize,
    /// Why the pair is safe without colocation.
    pub kind: ObligationKind,
}

/// The certificate emitted by the interference analyzer: colocation
/// classes (refining the Lemma 5 site-coupling quotient), the
/// schedule-independence relation, and the discharged cross-class proof
/// obligations. Consumed by `dist::ExecConfig` to pin actor placement
/// and by the conformance auditor to drive schedule-permutation replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardPlan {
    /// Workflow name, when analyzed from a lowered specification.
    pub workflow: Option<String>,
    /// Colocation classes, each sorted; ordered by smallest member.
    pub classes: Vec<ShardClass>,
    /// Unordered symbol pairs `(a, b)` with `a < b` on which *every*
    /// shared dependency machine commutes — the pairs whose adjacent
    /// occurrences may be transposed in any trace without changing any
    /// residual. Superset of [`ShardPlan::independent`].
    pub commuting: Vec<(SymbolId, SymbolId)>,
    /// Fully independent pairs: commuting, not guard-coupled, and with
    /// disjoint write footprints — safe to schedule with no coordination
    /// at all.
    pub independent: Vec<(SymbolId, SymbolId)>,
    /// Discharged cross-class proof obligations, one per straddling pair
    /// per witnessing dependency.
    pub obligations: Vec<Obligation>,
    /// `true` when every colocation class is contained in one component
    /// of the Lemma 5 guard-coupling relation — i.e. the plan *refines*
    /// the site-coupling quotient rather than merging across it.
    pub refines_site_coupling: bool,
}

impl ShardPlan {
    /// The class containing `s`, if the symbol was analyzed.
    pub fn class_of(&self, s: SymbolId) -> Option<u32> {
        self.classes.iter().find(|c| c.events.binary_search(&s).is_ok()).map(|c| c.id)
    }

    /// `true` when both symbols were analyzed and share a class.
    pub fn colocated(&self, a: SymbolId, b: SymbolId) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// `true` if adjacent occurrences of the two symbols may be
    /// transposed without changing any dependency residual. Symbols the
    /// analyzer never saw (unconstrained events) commute with everything.
    pub fn commutes(&self, a: SymbolId, b: SymbolId) -> bool {
        if a == b {
            return false;
        }
        if self.class_of(a).is_none() || self.class_of(b).is_none() {
            return true;
        }
        self.commuting.binary_search(&canonical(a, b)).is_ok()
    }

    /// `true` if the pair is fully independent (commuting, uncoupled,
    /// disjoint writes). Unanalyzed symbols are independent of everything.
    pub fn is_independent(&self, a: SymbolId, b: SymbolId) -> bool {
        if a == b {
            return false;
        }
        if self.class_of(a).is_none() || self.class_of(b).is_none() {
            return true;
        }
        self.independent.binary_search(&canonical(a, b)).is_ok()
    }

    /// Number of colocation classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes pinned to a declared site.
    pub fn pinned_count(&self) -> usize {
        self.classes.iter().filter(|c| c.site.is_some()).count()
    }

    /// Largest class size — 1 means the plan is maximally parallel.
    pub fn max_class_size(&self) -> usize {
        self.classes.iter().map(|c| c.events.len()).max().unwrap_or(0)
    }

    /// Mapping symbol → class id, for consumers that index repeatedly.
    pub fn class_index(&self) -> BTreeMap<SymbolId, u32> {
        let mut ix = BTreeMap::new();
        for c in &self.classes {
            for &s in &c.events {
                ix.insert(s, c.id);
            }
        }
        ix
    }

    /// Render the certificate as deterministic JSON, resolving symbol
    /// names through `table`.
    pub fn to_json(&self, table: &SymbolTable) -> String {
        let name = |s: SymbolId| match table.name(s) {
            Some(n) => json_escape(n),
            None => json_escape(&format!("sym{}", s.0)),
        };
        let pair_list = |pairs: &[(SymbolId, SymbolId)]| {
            pairs
                .iter()
                .map(|&(a, b)| format!("[{},{}]", name(a), name(b)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                let events: Vec<String> = c.events.iter().map(|&s| name(s)).collect();
                let site = c.site.map_or("null".to_owned(), |s| s.to_string());
                format!("{{\"id\":{},\"events\":[{}],\"site\":{}}}", c.id, events.join(","), site)
            })
            .collect();
        let obligations: Vec<String> = self
            .obligations
            .iter()
            .map(|o| {
                format!(
                    "{{\"left\":{},\"right\":{},\"dep\":{},\"kind\":\"{}\"}}",
                    name(o.left),
                    name(o.right),
                    o.dep,
                    o.kind.tag()
                )
            })
            .collect();
        let mut fields = Vec::new();
        if let Some(w) = &self.workflow {
            fields.push(format!("\"workflow\":{}", json_escape(w)));
        }
        fields.push(format!("\"classes\":[{}]", classes.join(",")));
        fields.push(format!("\"commuting\":[{}]", pair_list(&self.commuting)));
        fields.push(format!("\"independent\":[{}]", pair_list(&self.independent)));
        fields.push(format!("\"obligations\":[{}]", obligations.join(",")));
        fields.push(format!("\"refines_site_coupling\":{}", self.refines_site_coupling));
        format!("{{{}}}", fields.join(","))
    }
}

/// Canonical (smaller, larger) ordering for unordered pairs.
pub fn canonical(a: SymbolId, b: SymbolId) -> (SymbolId, SymbolId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan2() -> ShardPlan {
        ShardPlan {
            workflow: Some("w".to_owned()),
            classes: vec![
                ShardClass { id: 0, events: vec![SymbolId(0), SymbolId(1)], site: Some(2) },
                ShardClass { id: 1, events: vec![SymbolId(2)], site: None },
            ],
            commuting: vec![(SymbolId(0), SymbolId(2)), (SymbolId(1), SymbolId(2))],
            independent: vec![(SymbolId(1), SymbolId(2))],
            obligations: vec![Obligation {
                left: SymbolId(0),
                right: SymbolId(2),
                dep: 0,
                kind: ObligationKind::Commutes,
            }],
            refines_site_coupling: true,
        }
    }

    #[test]
    fn membership_queries() {
        let p = plan2();
        assert_eq!(p.class_of(SymbolId(1)), Some(0));
        assert_eq!(p.class_of(SymbolId(9)), None);
        assert!(p.colocated(SymbolId(0), SymbolId(1)));
        assert!(!p.colocated(SymbolId(0), SymbolId(2)));
        assert!(p.commutes(SymbolId(2), SymbolId(0)), "order-insensitive");
        assert!(!p.commutes(SymbolId(0), SymbolId(1)));
        assert!(!p.commutes(SymbolId(0), SymbolId(0)), "never self-commuting");
        assert!(p.is_independent(SymbolId(1), SymbolId(2)));
        assert!(!p.is_independent(SymbolId(0), SymbolId(2)), "commuting but coupled");
        assert!(p.is_independent(SymbolId(0), SymbolId(9)), "unanalyzed symbols are free");
        assert_eq!(p.class_count(), 2);
        assert_eq!(p.pinned_count(), 1);
        assert_eq!(p.max_class_size(), 2);
        assert_eq!(p.class_index()[&SymbolId(2)], 1);
    }

    #[test]
    fn json_is_deterministic_and_named() {
        let mut t = SymbolTable::new();
        for n in ["a", "b", "c"] {
            t.intern(n);
        }
        let p = plan2();
        let j = p.to_json(&t);
        assert_eq!(j, p.to_json(&t));
        assert!(j.starts_with("{\"workflow\":\"w\",\"classes\":[{\"id\":0,"), "{j}");
        assert!(j.contains("\"events\":[\"a\",\"b\"],\"site\":2"), "{j}");
        assert!(j.contains("\"site\":null"), "{j}");
        assert!(j.contains("\"independent\":[[\"b\",\"c\"]]"), "{j}");
        assert!(j.contains("\"kind\":\"commutes\""), "{j}");
        assert!(j.ends_with("\"refines_site_coupling\":true}"), "{j}");
    }
}
