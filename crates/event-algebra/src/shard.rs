//! Shard-plan certificates: the serializable artifact of the static
//! interference analyzer (pass 4 of crate `analyze`).
//!
//! A [`ShardPlan`] partitions a workflow's events into *colocation
//! classes*: events that some dependency machine cannot transpose
//! (see [`DependencyMachine::symbols_commute`](crate::DependencyMachine::symbols_commute))
//! must share a shard, because a work-stealing runtime that schedules
//! them from different queues could realize either order and change the
//! observable outcome. Everything else may run concurrently; the plan
//! records *why* each cross-class pair is safe as a discharged proof
//! [`Obligation`] — either the pair commutes on every shared machine, or
//! the coordination protocol itself (the `□`/`◇` guard rounds of
//! Lemma 5) serializes it.
//!
//! The plan is a plain data type in the algebra crate so both the
//! analyzer (which builds it) and the distributed executor (which pins
//! actor placement with it) can share it without a dependency cycle.
//! Serialization is hand-rolled JSON, like every other artifact in this
//! workspace.

use crate::machine::DependencyMachine;
use crate::symbol::{SymbolId, SymbolTable};
use std::collections::BTreeMap;

/// One colocation class: events that must be scheduled from the same
/// shard because some dependency machine does not commute on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardClass {
    /// Dense class index within the plan.
    pub id: u32,
    /// Member events, sorted by symbol id.
    pub events: Vec<SymbolId>,
    /// Site pinned by a member's declaration, if any member declared one.
    pub site: Option<u32>,
}

/// Why a cross-class pair needs no shard-level ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationKind {
    /// Every dependency machine mentioning both symbols commutes on them
    /// — discharged statically by the all-states transposition check.
    Commutes,
    /// The pair is guard-coupled: the synthesized guards already exchange
    /// `□`/`◇` coordination messages that serialize the two events, so
    /// the shards themselves need no ordering.
    GuardOrdered,
}

impl ObligationKind {
    /// Stable kebab-case tag (JSON, CLI output).
    pub fn tag(self) -> &'static str {
        match self {
            ObligationKind::Commutes => "commutes",
            ObligationKind::GuardOrdered => "guard-ordered",
        }
    }
}

/// A discharged cross-class proof obligation: the pair straddles two
/// classes, shares dependency `dep`, and is safe for the stated reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// The smaller symbol of the pair.
    pub left: SymbolId,
    /// The larger symbol of the pair.
    pub right: SymbolId,
    /// Index of the witnessing dependency in the workflow's list.
    pub dep: usize,
    /// Why the pair is safe without colocation.
    pub kind: ObligationKind,
}

/// The certificate emitted by the interference analyzer: colocation
/// classes (refining the Lemma 5 site-coupling quotient), the
/// schedule-independence relation, and the discharged cross-class proof
/// obligations. Consumed by `dist::ExecConfig` to pin actor placement
/// and by the conformance auditor to drive schedule-permutation replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardPlan {
    /// Workflow name, when analyzed from a lowered specification.
    pub workflow: Option<String>,
    /// Colocation classes, each sorted; ordered by smallest member.
    pub classes: Vec<ShardClass>,
    /// Unordered symbol pairs `(a, b)` with `a < b` on which *every*
    /// shared dependency machine commutes — the pairs whose adjacent
    /// occurrences may be transposed in any trace without changing any
    /// residual. Superset of [`ShardPlan::independent`].
    pub commuting: Vec<(SymbolId, SymbolId)>,
    /// Fully independent pairs: commuting, not guard-coupled, and with
    /// disjoint write footprints — safe to schedule with no coordination
    /// at all.
    pub independent: Vec<(SymbolId, SymbolId)>,
    /// Discharged cross-class proof obligations, one per straddling pair
    /// per witnessing dependency.
    pub obligations: Vec<Obligation>,
    /// `true` when every colocation class is contained in one component
    /// of the Lemma 5 guard-coupling relation — i.e. the plan *refines*
    /// the site-coupling quotient rather than merging across it.
    pub refines_site_coupling: bool,
}

impl ShardPlan {
    /// The class containing `s`, if the symbol was analyzed.
    pub fn class_of(&self, s: SymbolId) -> Option<u32> {
        self.classes.iter().find(|c| c.events.binary_search(&s).is_ok()).map(|c| c.id)
    }

    /// `true` when both symbols were analyzed and share a class.
    pub fn colocated(&self, a: SymbolId, b: SymbolId) -> bool {
        match (self.class_of(a), self.class_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// `true` if adjacent occurrences of the two symbols may be
    /// transposed without changing any dependency residual. Symbols the
    /// analyzer never saw (unconstrained events) commute with everything.
    pub fn commutes(&self, a: SymbolId, b: SymbolId) -> bool {
        if a == b {
            return false;
        }
        if self.class_of(a).is_none() || self.class_of(b).is_none() {
            return true;
        }
        self.commuting.binary_search(&canonical(a, b)).is_ok()
    }

    /// `true` if the pair is fully independent (commuting, uncoupled,
    /// disjoint writes). Unanalyzed symbols are independent of everything.
    pub fn is_independent(&self, a: SymbolId, b: SymbolId) -> bool {
        if a == b {
            return false;
        }
        if self.class_of(a).is_none() || self.class_of(b).is_none() {
            return true;
        }
        self.independent.binary_search(&canonical(a, b)).is_ok()
    }

    /// Number of colocation classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of classes pinned to a declared site.
    pub fn pinned_count(&self) -> usize {
        self.classes.iter().filter(|c| c.site.is_some()).count()
    }

    /// Largest class size — 1 means the plan is maximally parallel.
    pub fn max_class_size(&self) -> usize {
        self.classes.iter().map(|c| c.events.len()).max().unwrap_or(0)
    }

    /// Mapping symbol → class id, for consumers that index repeatedly.
    pub fn class_index(&self) -> BTreeMap<SymbolId, u32> {
        let mut ix = BTreeMap::new();
        for c in &self.classes {
            for &s in &c.events {
                ix.insert(s, c.id);
            }
        }
        ix
    }

    /// Map each of `symbols` to a shard key: its colocation class id
    /// when analyzed, or a fresh singleton key (numbered from
    /// [`ShardPlan::class_count`] upward, in first-appearance order) when
    /// the analyzer never saw it — unconstrained events commute with
    /// everything, so each safely gets a shard of its own. This is the
    /// class→worker mapping the parallel runtime keys its shards by.
    pub fn shard_keys(&self, symbols: &[SymbolId]) -> Vec<usize> {
        let ix = self.class_index();
        let mut fresh: BTreeMap<SymbolId, usize> = BTreeMap::new();
        let mut next = self.class_count();
        symbols
            .iter()
            .map(|s| match ix.get(s) {
                Some(&c) => c as usize,
                None => *fresh.entry(*s).or_insert_with(|| {
                    let k = next;
                    next += 1;
                    k
                }),
            })
            .collect()
    }

    /// The Lemma 5 fallback plan, built directly from compiled machines
    /// when no analyzer certificate is supplied: colocation classes are
    /// the connected components of pairwise non-commutation (two symbols
    /// join a class when some machine mentions both and fails the
    /// all-states transposition check), and `commuting` lists exactly
    /// the pairs every shared machine commutes on. The plan is
    /// deliberately conservative — it claims *no* independence and
    /// discharges no obligations, so a runtime keyed by it colocates at
    /// least as much as the analyzer would.
    pub fn from_coupling(symbols: &[SymbolId], machines: &[DependencyMachine]) -> ShardPlan {
        let mut syms: Vec<SymbolId> = symbols.to_vec();
        syms.sort_unstable();
        syms.dedup();
        let n = syms.len();
        let mentioned: Vec<Vec<usize>> = syms
            .iter()
            .map(|&s| {
                machines
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.alphabet.iter().any(|l| l.symbol() == s))
                    .map(|(ix, _)| ix)
                    .collect()
            })
            .collect();
        // Minimal union-find with min-root convention, so components
        // enumerate in order of their smallest member.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut commuting = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                let (a, b) = (syms[i], syms[j]);
                let conflicted = mentioned[i]
                    .iter()
                    .filter(|ix| mentioned[j].contains(ix))
                    .any(|&ix| !machines[ix].symbols_commute(a, b));
                if conflicted {
                    let (ra, rb) = (find(&mut parent, i), find(&mut parent, j));
                    if ra != rb {
                        parent[ra.max(rb)] = ra.min(rb);
                    }
                } else {
                    commuting.push((a, b));
                }
            }
        }
        let mut components: BTreeMap<usize, Vec<SymbolId>> = BTreeMap::new();
        for (i, &sym) in syms.iter().enumerate().take(n) {
            let root = find(&mut parent, i);
            components.entry(root).or_default().push(sym);
        }
        let classes = components
            .into_values()
            .enumerate()
            .map(|(id, events)| ShardClass { id: id as u32, events, site: None })
            .collect();
        ShardPlan {
            workflow: None,
            classes,
            commuting,
            independent: Vec::new(),
            obligations: Vec::new(),
            // Not checked here: the fallback never inspects guard
            // coupling, so it does not claim the refinement.
            refines_site_coupling: false,
        }
    }

    /// Render the certificate as deterministic JSON, resolving symbol
    /// names through `table`.
    pub fn to_json(&self, table: &SymbolTable) -> String {
        let name = |s: SymbolId| match table.name(s) {
            Some(n) => json_escape(n),
            None => json_escape(&format!("sym{}", s.0)),
        };
        let pair_list = |pairs: &[(SymbolId, SymbolId)]| {
            pairs
                .iter()
                .map(|&(a, b)| format!("[{},{}]", name(a), name(b)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let classes: Vec<String> = self
            .classes
            .iter()
            .map(|c| {
                let events: Vec<String> = c.events.iter().map(|&s| name(s)).collect();
                let site = c.site.map_or("null".to_owned(), |s| s.to_string());
                format!("{{\"id\":{},\"events\":[{}],\"site\":{}}}", c.id, events.join(","), site)
            })
            .collect();
        let obligations: Vec<String> = self
            .obligations
            .iter()
            .map(|o| {
                format!(
                    "{{\"left\":{},\"right\":{},\"dep\":{},\"kind\":\"{}\"}}",
                    name(o.left),
                    name(o.right),
                    o.dep,
                    o.kind.tag()
                )
            })
            .collect();
        let mut fields = Vec::new();
        if let Some(w) = &self.workflow {
            fields.push(format!("\"workflow\":{}", json_escape(w)));
        }
        fields.push(format!("\"classes\":[{}]", classes.join(",")));
        fields.push(format!("\"commuting\":[{}]", pair_list(&self.commuting)));
        fields.push(format!("\"independent\":[{}]", pair_list(&self.independent)));
        fields.push(format!("\"obligations\":[{}]", obligations.join(",")));
        fields.push(format!("\"refines_site_coupling\":{}", self.refines_site_coupling));
        format!("{{{}}}", fields.join(","))
    }
}

/// Canonical (smaller, larger) ordering for unordered pairs.
pub fn canonical(a: SymbolId, b: SymbolId) -> (SymbolId, SymbolId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan2() -> ShardPlan {
        ShardPlan {
            workflow: Some("w".to_owned()),
            classes: vec![
                ShardClass { id: 0, events: vec![SymbolId(0), SymbolId(1)], site: Some(2) },
                ShardClass { id: 1, events: vec![SymbolId(2)], site: None },
            ],
            commuting: vec![(SymbolId(0), SymbolId(2)), (SymbolId(1), SymbolId(2))],
            independent: vec![(SymbolId(1), SymbolId(2))],
            obligations: vec![Obligation {
                left: SymbolId(0),
                right: SymbolId(2),
                dep: 0,
                kind: ObligationKind::Commutes,
            }],
            refines_site_coupling: true,
        }
    }

    #[test]
    fn membership_queries() {
        let p = plan2();
        assert_eq!(p.class_of(SymbolId(1)), Some(0));
        assert_eq!(p.class_of(SymbolId(9)), None);
        assert!(p.colocated(SymbolId(0), SymbolId(1)));
        assert!(!p.colocated(SymbolId(0), SymbolId(2)));
        assert!(p.commutes(SymbolId(2), SymbolId(0)), "order-insensitive");
        assert!(!p.commutes(SymbolId(0), SymbolId(1)));
        assert!(!p.commutes(SymbolId(0), SymbolId(0)), "never self-commuting");
        assert!(p.is_independent(SymbolId(1), SymbolId(2)));
        assert!(!p.is_independent(SymbolId(0), SymbolId(2)), "commuting but coupled");
        assert!(p.is_independent(SymbolId(0), SymbolId(9)), "unanalyzed symbols are free");
        assert_eq!(p.class_count(), 2);
        assert_eq!(p.pinned_count(), 1);
        assert_eq!(p.max_class_size(), 2);
        assert_eq!(p.class_index()[&SymbolId(2)], 1);
    }

    #[test]
    fn shard_keys_cover_analyzed_and_fresh_symbols() {
        let p = plan2();
        let keys = p.shard_keys(&[
            SymbolId(0),
            SymbolId(1),
            SymbolId(2),
            SymbolId(9),
            SymbolId(7),
            SymbolId(9),
        ]);
        assert_eq!(keys, vec![0, 0, 1, 2, 3, 2], "classes first, then fresh singletons");
    }

    #[test]
    fn coupling_fallback_colocates_noncommuting_pairs() {
        use crate::expr::Expr;
        use crate::machine::DependencyMachine;
        use crate::symbol::SymbolTable;
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let g = t.event("g");
        // The sequential precedence ē ∨ f̄ ∨ (e;f) is order-sensitive
        // (e then f accepts, f then e violates), so e and f must
        // colocate; g is untouched by any machine.
        let precedes = Expr::or([
            Expr::lit(e.complement()),
            Expr::lit(f.complement()),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
        ]);
        let machines = vec![DependencyMachine::compile(&precedes)];
        let syms = [e.symbol(), f.symbol(), g.symbol()];
        let plan = ShardPlan::from_coupling(&syms, &machines);
        assert_eq!(plan.class_count(), 2);
        assert!(plan.colocated(e.symbol(), f.symbol()));
        assert!(!plan.colocated(e.symbol(), g.symbol()));
        assert!(plan.commutes(e.symbol(), g.symbol()));
        assert!(!plan.commutes(e.symbol(), f.symbol()));
        assert!(!plan.is_independent(e.symbol(), f.symbol()));
        assert!(
            !plan.is_independent(e.symbol(), g.symbol()),
            "the fallback claims no independence for analyzed symbols"
        );
        assert!(!plan.refines_site_coupling, "refinement is not checked by the fallback");
        let keys = plan.shard_keys(&syms);
        assert_eq!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn json_is_deterministic_and_named() {
        let mut t = SymbolTable::new();
        for n in ["a", "b", "c"] {
            t.intern(n);
        }
        let p = plan2();
        let j = p.to_json(&t);
        assert_eq!(j, p.to_json(&t));
        assert!(j.starts_with("{\"workflow\":\"w\",\"classes\":[{\"id\":0,"), "{j}");
        assert!(j.contains("\"events\":[\"a\",\"b\"],\"site\":2"), "{j}");
        assert!(j.contains("\"site\":null"), "{j}");
        assert!(j.contains("\"independent\":[[\"b\",\"c\"]]"), "{j}");
        assert!(j.contains("\"kind\":\"commutes\""), "{j}");
        assert!(j.ends_with("\"refines_site_coupling\":true}"), "{j}");
    }
}
