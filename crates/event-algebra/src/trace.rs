//! Traces and the trace universes `U_E` and `U_T` (Definition 1).
//!
//! A trace is a finite sequence of events from `Γ` in which (a) no event
//! co-occurs with its complement and (b) no event instance occurs twice.
//! The paper admits infinite traces (`Γ^ω`), but over a finite alphabet the
//! two conditions bound every trace by `|Σ|` events, so both universes are
//! finite and can be enumerated exhaustively — which is how we turn the
//! paper's theorems into executable tests.

use crate::symbol::{Literal, SymbolId};
use std::fmt;

/// A finite trace: a sequence of pairwise symbol-distinct events.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Trace(Vec<Literal>);

impl Trace {
    /// The empty trace `λ`.
    pub fn empty() -> Trace {
        Trace(Vec::new())
    }

    /// Build a trace, checking the `U_E` conditions.
    ///
    /// Returns `None` if some symbol appears twice (this covers both the
    /// no-complement-pair and the no-repetition condition of Definition 1).
    pub fn new(events: impl IntoIterator<Item = Literal>) -> Option<Trace> {
        let events: Vec<Literal> = events.into_iter().collect();
        let mut syms: Vec<SymbolId> = events.iter().map(|l| l.symbol()).collect();
        syms.sort_unstable();
        let before = syms.len();
        syms.dedup();
        if syms.len() != before {
            return None;
        }
        Some(Trace(events))
    }

    /// Build a trace without validity checks (for internal enumeration,
    /// where validity holds by construction).
    pub(crate) fn from_vec_unchecked(events: Vec<Literal>) -> Trace {
        Trace(events)
    }

    /// Number of events on the trace.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for `λ`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The events in order.
    pub fn events(&self) -> &[Literal] {
        &self.0
    }

    /// The `i`th event, **1-indexed** as in the paper (`u_i`, `1 ≤ i ≤ size`).
    pub fn at(&self, i: usize) -> Option<Literal> {
        if i == 0 {
            None
        } else {
            self.0.get(i - 1).copied()
        }
    }

    /// `true` if event `l` occurs anywhere on the trace.
    pub fn contains(&self, l: Literal) -> bool {
        self.0.contains(&l)
    }

    /// `true` if `l` occurs among the first `i` events (i.e. "by index `i`"
    /// in the indexed semantics of `T`).
    pub fn contains_by(&self, l: Literal, i: usize) -> bool {
        self.0.iter().take(i).any(|&x| x == l)
    }

    /// `true` if `sym` is resolved (either polarity occurred) on the trace.
    pub fn resolves(&self, sym: SymbolId) -> bool {
        self.0.iter().any(|l| l.symbol() == sym)
    }

    /// Concatenation `uv`, returning `None` when the result leaves `U_E`
    /// (shared symbol between the parts).
    pub fn concat(&self, v: &Trace) -> Option<Trace> {
        Trace::new(self.0.iter().chain(v.0.iter()).copied())
    }

    /// The suffix `u^j` that drops the first `j` events.
    pub fn suffix(&self, j: usize) -> Trace {
        Trace(self.0.get(j.min(self.0.len())..).unwrap_or(&[]).to_vec())
    }

    /// The prefix keeping the first `j` events.
    pub fn prefix(&self, j: usize) -> Trace {
        Trace(self.0[..j.min(self.0.len())].to_vec())
    }

    /// All splits `u = v·w` (including the trivial ones), as prefix/suffix
    /// index pairs — used by the sequencing semantics.
    pub fn splits(&self) -> impl Iterator<Item = (Trace, Trace)> + '_ {
        (0..=self.0.len()).map(move |j| (self.prefix(j), self.suffix(j)))
    }

    /// `true` if every symbol in `syms` is resolved on this trace — the
    /// maximality condition defining `U_T` relative to an alphabet.
    pub fn is_maximal_for(&self, syms: &[SymbolId]) -> bool {
        syms.iter().all(|&s| self.resolves(s))
    }

    /// Append an event, returning `None` if its symbol already occurred.
    pub fn push(&self, l: Literal) -> Option<Trace> {
        if self.resolves(l.symbol()) {
            return None;
        }
        let mut v = self.0.clone();
        v.push(l);
        Some(Trace(v))
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ">")
    }
}

impl FromIterator<Literal> for Trace {
    /// Panics if the events violate the `U_E` conditions; use
    /// [`Trace::new`] for fallible construction.
    fn from_iter<T: IntoIterator<Item = Literal>>(iter: T) -> Trace {
        Trace::new(iter).expect("events violate the trace universe conditions")
    }
}

/// Enumerate the full universe `U_E` over the symbols `syms`: every
/// polarity choice for every subset of symbols, in every order.
///
/// Sizes grow as `Σ_k C(n,k)·2^k·k!`; intended for `n ≤ 6` (n = 5 gives
/// 13,756 traces), which is ample for exhaustively checking the paper's
/// theorems.
pub fn enumerate_universe(syms: &[SymbolId]) -> Vec<Trace> {
    let mut out = Vec::new();
    let mut current: Vec<Literal> = Vec::new();
    let mut used = vec![false; syms.len()];
    fn go(
        syms: &[SymbolId],
        used: &mut Vec<bool>,
        current: &mut Vec<Literal>,
        out: &mut Vec<Trace>,
    ) {
        out.push(Trace::from_vec_unchecked(current.clone()));
        for i in 0..syms.len() {
            if used[i] {
                continue;
            }
            used[i] = true;
            for lit in [Literal::pos(syms[i]), Literal::neg(syms[i])] {
                current.push(lit);
                go(syms, used, current, out);
                current.pop();
            }
            used[i] = false;
        }
    }
    go(syms, &mut used, &mut current, &mut out);
    out
}

/// Enumerate the maximal universe `U_T` over `syms`: every trace that
/// resolves *every* symbol (each to `e` or `ē`), in every order.
///
/// `|U_T| = n!·2^n` (n = 5 gives 3,840 traces).
pub fn enumerate_maximal(syms: &[SymbolId]) -> Vec<Trace> {
    enumerate_universe(syms).into_iter().filter(|t| t.len() == syms.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(n: u32) -> Vec<SymbolId> {
        (0..n).map(SymbolId).collect()
    }

    #[test]
    fn new_rejects_repeats_and_complement_pairs() {
        let e = Literal::pos(SymbolId(0));
        assert!(Trace::new([e, e]).is_none());
        assert!(Trace::new([e, e.complement()]).is_none());
        assert!(Trace::new([e, Literal::pos(SymbolId(1))]).is_some());
    }

    #[test]
    fn at_is_one_indexed() {
        let e = Literal::pos(SymbolId(0));
        let f = Literal::pos(SymbolId(1));
        let t = Trace::new([e, f]).unwrap();
        assert_eq!(t.at(0), None);
        assert_eq!(t.at(1), Some(e));
        assert_eq!(t.at(2), Some(f));
        assert_eq!(t.at(3), None);
    }

    #[test]
    fn contains_by_respects_index() {
        let e = Literal::pos(SymbolId(0));
        let f = Literal::pos(SymbolId(1));
        let t = Trace::new([e, f]).unwrap();
        assert!(!t.contains_by(e, 0));
        assert!(t.contains_by(e, 1));
        assert!(!t.contains_by(f, 1));
        assert!(t.contains_by(f, 2));
    }

    #[test]
    fn concat_rejects_conflicts() {
        let e = Literal::pos(SymbolId(0));
        let f = Literal::pos(SymbolId(1));
        let u = Trace::new([e]).unwrap();
        let v = Trace::new([f]).unwrap();
        assert!(u.concat(&v).is_some());
        assert!(u.concat(&u).is_none());
        let ne = Trace::new([e.complement()]).unwrap();
        assert!(u.concat(&ne).is_none());
    }

    #[test]
    fn splits_enumerates_all_cuts() {
        let e = Literal::pos(SymbolId(0));
        let f = Literal::pos(SymbolId(1));
        let t = Trace::new([e, f]).unwrap();
        let all: Vec<_> = t.splits().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].0, Trace::empty());
        assert_eq!(all[2].1, Trace::empty());
    }

    #[test]
    fn universe_size_example1() {
        // Example 1: Γ = {e, ē, f, f̄} → 13 traces (λ + 4 singletons + 8 pairs).
        let u = enumerate_universe(&syms(2));
        assert_eq!(u.len(), 13);
        assert!(u.contains(&Trace::empty()));
    }

    #[test]
    fn universe_sizes_small_n() {
        assert_eq!(enumerate_universe(&syms(0)).len(), 1);
        assert_eq!(enumerate_universe(&syms(1)).len(), 3);
        // n=3: 1 + 6 + 24 + 48 = 79.
        assert_eq!(enumerate_universe(&syms(3)).len(), 79);
    }

    #[test]
    fn maximal_universe_sizes() {
        assert_eq!(enumerate_maximal(&syms(1)).len(), 2);
        assert_eq!(enumerate_maximal(&syms(2)).len(), 8);
        assert_eq!(enumerate_maximal(&syms(3)).len(), 48);
    }

    #[test]
    fn maximality_check() {
        let s = syms(2);
        for t in enumerate_maximal(&s) {
            assert!(t.is_maximal_for(&s));
            assert_eq!(t.len(), 2);
        }
    }

    #[test]
    fn suffix_and_prefix() {
        let e = Literal::pos(SymbolId(0));
        let f = Literal::pos(SymbolId(1));
        let t = Trace::new([e, f]).unwrap();
        assert_eq!(t.suffix(1).events(), &[f]);
        assert_eq!(t.prefix(1).events(), &[e]);
        assert_eq!(t.suffix(5), Trace::empty());
    }

    #[test]
    fn push_rejects_resolved_symbols() {
        let e = Literal::pos(SymbolId(0));
        let t = Trace::new([e]).unwrap();
        assert!(t.push(e.complement()).is_none());
        assert!(t.push(Literal::pos(SymbolId(1))).is_some());
    }
}
