//! Parametrized event expressions (Section 5).
//!
//! Event atoms carry a tuple of parameter terms (`e[x]`, `b2[y]`, `e[3]`);
//! variables are implicitly universally quantified. A [`PExpr`] under a
//! complete [`Binding`] instantiates to an ordinary ground [`Expr`], with
//! ground instance names like `b1[3]` interned into the symbol table.

use crate::expr::Expr;
use crate::symbol::{Literal, Polarity, SymbolTable};
use std::collections::{BTreeMap, BTreeSet};

/// A parameter term: a variable or a bound value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An implicitly universally quantified variable.
    Var(String),
    /// A bound token value.
    Val(u64),
}

/// A parametrized event atom: a type name plus parameter terms.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PEvent {
    /// Event type name (e.g. `"b1"`).
    pub name: String,
    /// Parameter tuple.
    pub args: Vec<Term>,
}

impl PEvent {
    /// `name[vars…]` convenience constructor.
    pub fn new(name: &str, args: impl IntoIterator<Item = Term>) -> PEvent {
        PEvent { name: name.to_owned(), args: args.into_iter().collect() }
    }

    /// Ground name under a binding: `b1[3]` (a bare `b1` when the event
    /// has no parameters).
    fn ground_name(&self, binding: &Binding) -> String {
        if self.args.is_empty() {
            return self.name.clone();
        }
        let vals: Vec<String> = self
            .args
            .iter()
            .map(|t| match t {
                Term::Val(v) => v.to_string(),
                Term::Var(x) => {
                    binding.get(x).unwrap_or_else(|| panic!("unbound variable {x}")).to_string()
                }
            })
            .collect();
        format!("{}[{}]", self.name, vals.join(","))
    }
}

/// A parametrized literal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PLit {
    /// The event atom.
    pub event: PEvent,
    /// Event or complement.
    pub polarity: Polarity,
}

/// A parametrized dependency expression (mirror of [`Expr`] over
/// parametrized atoms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PExpr {
    /// `0`.
    Zero,
    /// `⊤`.
    Top,
    /// A parametrized atom.
    Lit(PLit),
    /// Sequencing.
    Seq(Vec<PExpr>),
    /// Choice.
    Or(Vec<PExpr>),
    /// Conjunction.
    And(Vec<PExpr>),
}

/// A variable binding.
pub type Binding = BTreeMap<String, u64>;

impl PExpr {
    /// Positive parametrized atom.
    pub fn lit(name: &str, args: &[Term]) -> PExpr {
        PExpr::Lit(PLit { event: PEvent::new(name, args.iter().cloned()), polarity: Polarity::Pos })
    }

    /// Complement parametrized atom.
    pub fn comp(name: &str, args: &[Term]) -> PExpr {
        PExpr::Lit(PLit { event: PEvent::new(name, args.iter().cloned()), polarity: Polarity::Neg })
    }

    /// All variables in the expression.
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            PExpr::Zero | PExpr::Top => {}
            PExpr::Lit(l) => {
                for t in &l.event.args {
                    if let Term::Var(x) = t {
                        out.insert(x.clone());
                    }
                }
            }
            PExpr::Seq(v) | PExpr::Or(v) | PExpr::And(v) => {
                for p in v {
                    p.collect_vars(out);
                }
            }
        }
    }

    /// Instantiate under a complete binding, interning ground event names
    /// (`b1[3]`) into `table`.
    pub fn instantiate(&self, binding: &Binding, table: &mut SymbolTable) -> Expr {
        match self {
            PExpr::Zero => Expr::Zero,
            PExpr::Top => Expr::Top,
            PExpr::Lit(l) => {
                let sym = table.intern(&l.event.ground_name(binding));
                Expr::lit(Literal::new(sym, l.polarity))
            }
            PExpr::Seq(v) => Expr::seq(v.iter().map(|p| p.instantiate(binding, table))),
            PExpr::Or(v) => Expr::or(v.iter().map(|p| p.instantiate(binding, table))),
            PExpr::And(v) => Expr::and(v.iter().map(|p| p.instantiate(binding, table))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_and_instantiation() {
        let t = PExpr::Or(vec![
            PExpr::comp("f", &[Term::Var("y".into())]),
            PExpr::lit("g", &[Term::Val(2)]),
        ]);
        assert_eq!(t.vars().len(), 1);
        let mut table = SymbolTable::new();
        let mut b = Binding::new();
        b.insert("y".into(), 7);
        let g = t.instantiate(&b, &mut table);
        assert!(table.lookup("f[7]").is_some());
        assert!(table.lookup("g[2]").is_some());
        assert_eq!(g.symbols().len(), 2);
    }

    #[test]
    fn ground_atoms_need_no_binding() {
        let t = PExpr::lit("a", &[]);
        let mut table = SymbolTable::new();
        let g = t.instantiate(&Binding::new(), &mut table);
        assert!(table.lookup("a").is_some());
        assert_eq!(g.symbols().len(), 1);
    }
}
