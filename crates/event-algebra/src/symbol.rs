//! Interned event symbols and literals.
//!
//! The paper's alphabet `Γ` consists of *significant event* symbols `Σ` plus
//! their complements: `e ∈ Σ` implies `e, ē ∈ Γ` (Syntax 1). We intern symbol
//! names into dense `u32` ids so that expressions, traces, and guard tables
//! never touch strings on hot paths, and represent a member of `Γ` as a
//! [`Literal`]: a symbol id plus a polarity bit.

use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an event symbol in `Σ`.
///
/// Ids are allocated consecutively from 0 by a [`SymbolTable`], so they can
/// be used to index vectors (e.g. per-symbol knowledge states in guards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The symbol's index, usable to address per-symbol side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Whether a literal denotes the event itself or its complement `ē`.
///
/// The complement `ē` is itself an event (e.g. *abort* complementing
/// *commit*): exactly one of `e`, `ē` occurs on any maximal trace, and no
/// trace contains both (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Polarity {
    /// The event `e` itself.
    Pos,
    /// The complementary event `ē`.
    Neg,
}

impl Polarity {
    /// The opposite polarity.
    #[inline]
    pub fn flipped(self) -> Polarity {
        match self {
            Polarity::Pos => Polarity::Neg,
            Polarity::Neg => Polarity::Pos,
        }
    }
}

/// A member of the alphabet `Γ`: an event symbol or its complement.
///
/// Packed into a single `u32` (`symbol << 1 | polarity`) so literals are
/// `Copy`, order cheaply, and hash as machine words.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal(u32);

impl Literal {
    /// The positive literal `e` for `sym`.
    #[inline]
    pub fn pos(sym: SymbolId) -> Literal {
        Literal(sym.0 << 1)
    }

    /// The complement literal `ē` for `sym`.
    #[inline]
    pub fn neg(sym: SymbolId) -> Literal {
        Literal(sym.0 << 1 | 1)
    }

    /// Build a literal from a symbol and polarity.
    #[inline]
    pub fn new(sym: SymbolId, pol: Polarity) -> Literal {
        match pol {
            Polarity::Pos => Literal::pos(sym),
            Polarity::Neg => Literal::neg(sym),
        }
    }

    /// The underlying event symbol.
    #[inline]
    pub fn symbol(self) -> SymbolId {
        SymbolId(self.0 >> 1)
    }

    /// This literal's polarity.
    #[inline]
    pub fn polarity(self) -> Polarity {
        if self.0 & 1 == 0 {
            Polarity::Pos
        } else {
            Polarity::Neg
        }
    }

    /// `true` if this is a positive (uncomplemented) event.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal: `e ↦ ē`, `ē ↦ e` (we identify `ē̄` with `e`).
    #[inline]
    pub fn complement(self) -> Literal {
        Literal(self.0 ^ 1)
    }

    /// `true` if `other` is the complement of `self`.
    #[inline]
    pub fn is_complement_of(self, other: Literal) -> bool {
        self.0 ^ 1 == other.0
    }

    /// A dense index over `Γ` (`2 * symbol + polarity`), usable for bitsets.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Literal::index`].
    #[inline]
    pub fn from_index(ix: usize) -> Literal {
        Literal(ix as u32)
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "Lit({})", self.symbol().0)
        } else {
            write!(f, "Lit(~{})", self.symbol().0)
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "e{}", self.symbol().0)
        } else {
            write!(f, "~e{}", self.symbol().0)
        }
    }
}

/// An interner mapping human-readable event names to [`SymbolId`]s.
///
/// A table corresponds to the set `Σ` of significant events of one workflow
/// universe. Complements are not named separately: the complement of the
/// event named `"commit"` is displayed as `~commit`.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, SymbolId>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> SymbolId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = SymbolId(
            u32::try_from(self.names.len()).expect("more than u32::MAX event symbols interned"),
        );
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Intern `name` and return the positive literal for it.
    pub fn event(&mut self, name: &str) -> Literal {
        Literal::pos(self.intern(name))
    }

    /// Intern `name` and return the complement literal for it.
    pub fn complement_of(&mut self, name: &str) -> Literal {
        Literal::neg(self.intern(name))
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<SymbolId> {
        self.index.get(name).copied()
    }

    /// The name for `id`, if `id` was allocated by this table.
    pub fn name(&self, id: SymbolId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Render a literal using this table's names (`commit` / `~commit`).
    pub fn literal_name(&self, lit: Literal) -> String {
        let base = self
            .name(lit.symbol())
            .map(str::to_owned)
            .unwrap_or_else(|| format!("e{}", lit.symbol().0));
        if lit.is_pos() {
            base
        } else {
            format!("~{base}")
        }
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all interned symbol ids.
    pub fn ids(&self) -> impl Iterator<Item = SymbolId> + '_ {
        (0..self.names.len() as u32).map(SymbolId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("commit");
        let b = t.intern("commit");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn intern_allocates_dense_ids() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let c = t.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(t.name(b), Some("b"));
        assert_eq!(t.name(SymbolId(99)), None);
    }

    #[test]
    fn literal_packing_roundtrip() {
        let s = SymbolId(41);
        let e = Literal::pos(s);
        let ne = Literal::neg(s);
        assert_eq!(e.symbol(), s);
        assert_eq!(ne.symbol(), s);
        assert!(e.is_pos());
        assert!(!ne.is_pos());
        assert_eq!(e.polarity(), Polarity::Pos);
        assert_eq!(ne.polarity(), Polarity::Neg);
    }

    #[test]
    fn complement_is_involutive() {
        let e = Literal::pos(SymbolId(7));
        assert_eq!(e.complement().complement(), e);
        assert_ne!(e.complement(), e);
        assert!(e.is_complement_of(e.complement()));
        assert!(!e.is_complement_of(e));
        assert_eq!(e.complement().symbol(), e.symbol());
    }

    #[test]
    fn literal_index_roundtrip() {
        for raw in [0usize, 1, 5, 100] {
            let l = Literal::from_index(raw);
            assert_eq!(l.index(), raw);
        }
    }

    #[test]
    fn literal_display_uses_table_names() {
        let mut t = SymbolTable::new();
        let c = t.event("commit");
        assert_eq!(t.literal_name(c), "commit");
        assert_eq!(t.literal_name(c.complement()), "~commit");
    }

    #[test]
    fn polarity_flip() {
        assert_eq!(Polarity::Pos.flipped(), Polarity::Neg);
        assert_eq!(Polarity::Neg.flipped(), Polarity::Pos);
    }
}
