//! A minimal multiply-xor hasher for the arena and automaton hot paths.
//!
//! The interner, the memo caches, and the machine transition tables are
//! all keyed by small fixed-size values (`ExprId`, `StateId`, packed
//! `Literal`s). `std`'s default SipHash is DoS-resistant but pays ~10x
//! more per probe than these keys need; a word-at-a-time multiply-xor
//! mix (the same family as rustc's `FxHasher`) is plenty for trusted,
//! densely-allocated ids and measurably faster on every arena bench.
//! Nothing here hashes attacker-controlled input: keys come from the
//! workflow compiler's own id spaces.

use std::hash::{BuildHasherDefault, Hasher};

/// Odd multiplier derived from the golden ratio (`2^64 / φ`), the usual
/// Fibonacci-hashing constant: multiplication by it disperses low-entropy
/// ids across the high bits, which `HashMap` then shifts down.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Word-at-a-time multiply-xor hasher. Not cryptographic, not
/// DoS-resistant — only for maps keyed by internal ids.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the id-tuned hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the id-tuned hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_ids_hash_distinctly() {
        // Sanity, not a statistical test: sequential u32 ids (the dense
        // ExprId/StateId pattern) must not collide in the full 64-bit
        // image, and the map must behave as a map.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u32 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert((i, i ^ 1), i);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&(i, i ^ 1)), Some(&i));
        }
    }

    #[test]
    fn byte_stream_matches_word_padding() {
        // `write` must consume trailing sub-word bytes (zero-padded) so
        // `#[derive(Hash)]` types with odd layouts still hash stably.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
    }
}
