//! Normalization into the form required by the residuation rules.
//!
//! The paper's symbolic residuation equations (Section 3.4) "assume that
//! the given expression is in a form where there is no `|` or `+` in the
//! scope of `·`", obtainable "by repeated application of the distribution
//! laws" (`·` distributes over `+` and over `|`, both validated by the
//! trace semantics — see `semantics::tests`). This module implements that
//! normalization: after [`normalize`], every `Seq` node contains only
//! literals.

use crate::expr::Expr;

/// `true` if no `+` or `|` occurs in the scope of `·` (and `Seq`s are
/// flat literal sequences) — the precondition of rules R3/R7/R8.
pub fn is_normal(e: &Expr) -> bool {
    match e {
        Expr::Zero | Expr::Top | Expr::Lit(_) => true,
        Expr::Seq(v) => v.iter().all(|p| matches!(p, Expr::Lit(_))),
        Expr::Or(v) | Expr::And(v) => v.iter().all(is_normal),
    }
}

/// Rewrite `e` into an equivalent expression with no `+`/`|` under `·`.
///
/// Distribution can blow up exponentially in principle; dependency
/// expressions in workflow specifications are small (the common ones are
/// two-to-four literals), and long event chains `e₁·…·eₙ` are already
/// normal, so this is not a hot path.
pub fn normalize(e: &Expr) -> Expr {
    match e {
        Expr::Zero | Expr::Top | Expr::Lit(_) => e.clone(),
        Expr::Or(v) => Expr::or(v.iter().map(normalize)),
        Expr::And(v) => Expr::and(v.iter().map(normalize)),
        Expr::Seq(v) => {
            let mut acc = Expr::Top;
            for p in v {
                acc = product(acc, normalize(p));
            }
            acc
        }
    }
}

/// The normalized product `a · b` of two already-normal expressions,
/// distributing `·` outward over `+` and `|` on either side.
fn product(a: Expr, b: Expr) -> Expr {
    match (a, b) {
        (Expr::Zero, _) | (_, Expr::Zero) => Expr::Zero,
        (Expr::Top, x) | (x, Expr::Top) => x,
        // (x₁ + x₂)·b = x₁·b + x₂·b   and symmetrically on the right.
        (Expr::Or(xs), b) => Expr::or(xs.into_iter().map(|x| product(x, b.clone()))),
        (a, Expr::Or(ys)) => Expr::or(ys.into_iter().map(|y| product(a.clone(), y))),
        // (x₁ | x₂)·b = x₁·b | x₂·b   and symmetrically on the right.
        (Expr::And(xs), b) => Expr::and(xs.into_iter().map(|x| product(x, b.clone()))),
        (a, Expr::And(ys)) => Expr::and(ys.into_iter().map(|y| product(a.clone(), y))),
        // Both sides are literals or literal sequences: plain sequencing.
        (a, b) => Expr::seq([a, b]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::equivalent_auto;
    use crate::symbol::SymbolId;

    fn ev(i: u32) -> Expr {
        Expr::event(SymbolId(i))
    }

    #[test]
    fn literals_and_constants_are_normal() {
        assert!(is_normal(&Expr::Top));
        assert!(is_normal(&Expr::Zero));
        assert!(is_normal(&ev(0)));
        assert!(is_normal(&Expr::seq([ev(0), ev(1)])));
    }

    #[test]
    fn or_under_seq_is_not_normal() {
        let e = Expr::Seq(vec![Expr::Or(vec![ev(0), ev(1)]), ev(2)]);
        assert!(!is_normal(&e));
        let n = normalize(&e);
        assert!(is_normal(&n));
        assert!(equivalent_auto(&e, &n));
    }

    #[test]
    fn and_under_seq_is_not_normal() {
        let e = Expr::Seq(vec![ev(2), Expr::And(vec![ev(0), ev(1)])]);
        assert!(!is_normal(&e));
        let n = normalize(&e);
        assert!(is_normal(&n));
        assert!(equivalent_auto(&e, &n));
    }

    #[test]
    fn nested_mixed_normalizes_and_preserves_meaning() {
        // ((a+b)|(c)) · (d+e) with distinct symbols.
        let e = Expr::Seq(vec![
            Expr::And(vec![Expr::Or(vec![ev(0), ev(1)]), ev(2)]),
            Expr::Or(vec![ev(3), ev(4)]),
        ]);
        let n = normalize(&e);
        assert!(is_normal(&n));
        assert!(equivalent_auto(&e, &n));
    }

    #[test]
    fn normalize_is_idempotent() {
        let e = Expr::Seq(vec![Expr::Or(vec![ev(0), ev(1)]), ev(2)]);
        let n = normalize(&e);
        assert_eq!(normalize(&n), n);
    }

    #[test]
    fn normal_form_of_dependencies_from_the_paper() {
        // D< = ē + f̄ + e·f is already normal.
        let d =
            Expr::or([Expr::comp(SymbolId(0)), Expr::comp(SymbolId(1)), Expr::seq([ev(0), ev(1)])]);
        assert!(is_normal(&d));
        assert_eq!(normalize(&d), d);
    }
}
