//! Trace semantics of `E` (Semantics 1–5) and denotations.
//!
//! `u ⊨ E` is decided by structural recursion; `Seq` tries every split of
//! the trace (Semantics 3). Traces here are tiny (≤ |Σ| events), so the
//! naive recursion is exact and fast enough even inside exhaustive
//! universe sweeps.

use crate::expr::Expr;
use crate::symbol::SymbolId;
use crate::trace::{enumerate_universe, Trace};

/// `u ⊨ E` (Semantics 1–5).
pub fn satisfies(u: &Trace, e: &Expr) -> bool {
    match e {
        Expr::Zero => false,
        Expr::Top => true,
        Expr::Lit(l) => u.contains(*l),
        Expr::Or(parts) => parts.iter().any(|p| satisfies(u, p)),
        Expr::And(parts) => parts.iter().all(|p| satisfies(u, p)),
        Expr::Seq(parts) => satisfies_seq(u, parts),
    }
}

/// `u ⊨ E₁·E₂·…·Eₙ`: some consecutive split of `u` into `n` parts
/// satisfies the factors pointwise (Semantics 3, n-ary by associativity).
fn satisfies_seq(u: &Trace, parts: &[Expr]) -> bool {
    match parts {
        [] => true,
        [only] => satisfies(u, only),
        [head, rest @ ..] => {
            u.splits().any(|(v, w)| satisfies(&v, head) && satisfies_seq(&w, rest))
        }
    }
}

/// The denotation `[E]` restricted to the universe over `syms`:
/// `{u ∈ U_E : u ⊨ E}`.
pub fn denotation(e: &Expr, syms: &[SymbolId]) -> Vec<Trace> {
    enumerate_universe(syms).into_iter().filter(|u| satisfies(u, e)).collect()
}

/// Semantic equivalence of two expressions over the universe spanned by
/// `syms` (which must cover both expressions' symbols to be conclusive).
pub fn equivalent(a: &Expr, b: &Expr, syms: &[SymbolId]) -> bool {
    enumerate_universe(syms).iter().all(|u| satisfies(u, a) == satisfies(u, b))
}

/// Semantic equivalence over the union of the two expressions' own symbol
/// sets — the common case for law-checking.
pub fn equivalent_auto(a: &Expr, b: &Expr) -> bool {
    let mut syms: Vec<SymbolId> = a.symbols().union(&b.symbols()).copied().collect();
    syms.sort_unstable();
    equivalent(a, b, &syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Literal;

    fn s(i: u32) -> SymbolId {
        SymbolId(i)
    }
    fn e() -> Expr {
        Expr::event(s(0))
    }
    fn f() -> Expr {
        Expr::event(s(1))
    }
    fn ne() -> Expr {
        Expr::comp(s(0))
    }
    fn nf() -> Expr {
        Expr::comp(s(1))
    }
    fn tr(lits: &[Literal]) -> Trace {
        Trace::new(lits.iter().copied()).unwrap()
    }
    fn le() -> Literal {
        Literal::pos(s(0))
    }
    fn lf() -> Literal {
        Literal::pos(s(1))
    }

    #[test]
    fn atom_satisfaction_is_occurrence_anywhere() {
        assert!(satisfies(&tr(&[le(), lf()]), &e()));
        assert!(satisfies(&tr(&[lf(), le()]), &e()));
        assert!(!satisfies(&tr(&[lf()]), &e()));
        assert!(!satisfies(&Trace::empty(), &e()));
    }

    #[test]
    fn top_and_zero() {
        assert!(satisfies(&Trace::empty(), &Expr::Top));
        assert!(!satisfies(&Trace::empty(), &Expr::Zero));
    }

    #[test]
    fn seq_requires_order() {
        let ef = Expr::seq([e(), f()]);
        assert!(satisfies(&tr(&[le(), lf()]), &ef));
        // ⟨f e⟩ ⊭ e·f: no split has an e-part before an f-part.
        assert!(!satisfies(&tr(&[lf(), le()]), &ef));
        assert!(!satisfies(&tr(&[le()]), &ef));
    }

    #[test]
    fn seq_allows_interleaved_extensions() {
        // ⟨e g f⟩ ⊨ e·f via the split ⟨e⟩ / ⟨g f⟩.
        let g = Literal::pos(s(2));
        let ef = Expr::seq([e(), f()]);
        assert!(satisfies(&tr(&[le(), g, lf()]), &ef));
    }

    #[test]
    fn example1_denotations() {
        // Example 1 with Γ = {e, ē, f, f̄}.
        let syms = [s(0), s(1)];
        assert_eq!(denotation(&Expr::Zero, &syms).len(), 0);
        assert_eq!(denotation(&Expr::Top, &syms).len(), 13);
        // [e] = {⟨e⟩, ⟨ef⟩, ⟨fe⟩, ⟨ef̄⟩, ⟨f̄e⟩} — 5 traces.
        assert_eq!(denotation(&e(), &syms).len(), 5);
        // [e·f] = {⟨ef⟩}.
        let d = denotation(&Expr::seq([e(), f()]), &syms);
        assert_eq!(d, vec![tr(&[le(), lf()])]);
        // [e + ē] ≠ U_E and [e | ē] = ∅.
        assert_ne!(denotation(&Expr::or([e(), ne()]), &syms).len(), 13);
        assert_eq!(
            denotation(&Expr::and([Expr::Lit(le()), Expr::Lit(le().complement())]), &syms).len(),
            0
        );
    }

    #[test]
    fn example2_d_arrow() {
        // D→ = ē + f: if e occurs then f occurs, in either order.
        let d = Expr::or([ne(), f()]);
        assert!(satisfies(&tr(&[le(), lf()]), &d));
        assert!(satisfies(&tr(&[lf(), le()]), &d));
        assert!(satisfies(&tr(&[le().complement()]), &d));
        assert!(!satisfies(&tr(&[le()]), &d));
        assert!(!satisfies(&tr(&[le(), lf().complement()]), &d));
    }

    #[test]
    fn example3_d_precedes() {
        // D< = ē + f̄ + e·f: if both occur, e precedes f.
        let d = Expr::or([ne(), nf(), Expr::seq([e(), f()])]);
        assert!(satisfies(&tr(&[le(), lf()]), &d));
        assert!(!satisfies(&tr(&[lf(), le()]), &d));
        assert!(satisfies(&tr(&[lf(), le().complement()]), &d));
        assert!(satisfies(&tr(&[le(), lf().complement()]), &d));
        // λ does not satisfy D<: satisfaction needs a witnessing disjunct,
        // and none of ē, f̄, e·f occurs on the empty trace. Maximal traces
        // always resolve every symbol, so this never penalizes a complete
        // computation.
        assert!(!satisfies(&Trace::empty(), &d));
    }

    #[test]
    fn satisfaction_is_extension_closed() {
        // If v ⊨ E and uv ∈ U_E then (prepend/append)-extended traces
        // also satisfy E — the property justifying dropping ⊤ units in Seq.
        let g = Literal::pos(s(2));
        let exprs = [e(), Expr::seq([e(), f()]), Expr::or([ne(), f()]), Expr::and([e(), f()])];
        for ex in &exprs {
            let base = tr(&[le(), lf()]);
            if satisfies(&base, ex) {
                assert!(satisfies(&tr(&[le(), lf(), g]), ex), "append ext: {ex}");
                assert!(satisfies(&tr(&[g, le(), lf()]), ex), "prepend ext: {ex}");
                assert!(satisfies(&tr(&[le(), g, lf()]), ex), "mid ext: {ex}");
            }
        }
    }

    #[test]
    fn smart_constructor_laws_hold_semantically() {
        let syms = [s(0), s(1), s(2)];
        let gexp = Expr::event(s(2));
        // E·⊤ = E and ⊤·E = E.
        let ef = Expr::seq([e(), f()]);
        assert!(equivalent(&Expr::Seq(vec![ef.clone(), Expr::Top]), &ef, &syms));
        // Distributivity of · over +.
        let lhs = Expr::Seq(vec![Expr::Or(vec![e(), f()]), gexp.clone()]);
        let rhs = Expr::or([Expr::seq([e(), gexp.clone()]), Expr::seq([f(), gexp.clone()])]);
        assert!(equivalent(&lhs, &rhs, &syms));
        // Distributivity of · over |.
        let lhs = Expr::Seq(vec![Expr::And(vec![e(), f()]), gexp.clone()]);
        let rhs = Expr::and([Expr::seq([e(), gexp.clone()]), Expr::seq([f(), gexp])]);
        assert!(equivalent(&lhs, &rhs, &syms));
    }

    #[test]
    fn right_distributivity_over_or_and_and() {
        let syms = [s(0), s(1), s(2)];
        let gexp = Expr::event(s(2));
        let lhs = Expr::Seq(vec![gexp.clone(), Expr::Or(vec![e(), f()])]);
        let rhs = Expr::or([Expr::seq([gexp.clone(), e()]), Expr::seq([gexp.clone(), f()])]);
        assert!(equivalent(&lhs, &rhs, &syms));
        let lhs = Expr::Seq(vec![gexp.clone(), Expr::And(vec![e(), f()])]);
        let rhs = Expr::and([Expr::seq([gexp.clone(), e()]), Expr::seq([gexp, f()])]);
        assert!(equivalent(&lhs, &rhs, &syms));
    }

    #[test]
    fn equivalent_auto_spans_both_symbol_sets() {
        assert!(equivalent_auto(&Expr::or([e(), e()]), &e()));
        assert!(!equivalent_auto(&e(), &f()));
    }
}
