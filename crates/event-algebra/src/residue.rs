//! Residuation: the scheduler's symbolic state transition (Section 3.4).
//!
//! `E/e` denotes the remaining obligation after event `e` occurs. The
//! model-theoretic definition (Semantics 6) is
//!
//! > `v ⊨ E₁/E₂` iff `∀u: u ⊨ E₂ ⇒ (uv ∈ U_E ⇒ uv ⊨ E₁)`
//!
//! and the paper characterizes it symbolically by rewrite rules R1–R8 over
//! normalized expressions (Theorem 1 asserts their soundness; our property
//! tests check the symbolic result against [`residual_oracle`] on every
//! future that can actually follow `e`).

use crate::expr::Expr;
use crate::norm::{is_normal, normalize};
use crate::semantics::satisfies;
use crate::symbol::{Literal, SymbolId};
use crate::trace::{enumerate_universe, Trace};
use std::collections::HashMap;

/// Symbolic residuation `e_expr / by` implementing rules R1–R8.
///
/// The input is normalized first if needed (rules R3/R7/R8 require no
/// `+`/`|` in the scope of `·`). The result is again normal.
pub fn residuate(e: &Expr, by: Literal) -> Expr {
    if is_normal(e) {
        residuate_normal(e, by)
    } else {
        residuate_normal(&normalize(e), by)
    }
}

/// Residuation on an expression known to be normal.
fn residuate_normal(e: &Expr, by: Literal) -> Expr {
    match e {
        // R1: 0/e = 0.
        Expr::Zero => Expr::Zero,
        // R2: ⊤/e = ⊤.
        Expr::Top => Expr::Top,
        Expr::Lit(l) => {
            if *l == by {
                // R3 with an empty tail: e/e = ⊤.
                Expr::Top
            } else if l.is_complement_of(by) {
                // R8 degenerate: ē/e = 0 — `e` occurred, `ē` is impossible.
                Expr::Zero
            } else {
                // R6: untouched symbols are unaffected.
                Expr::Lit(*l)
            }
        }
        // R4: (E₁+E₂)/e = E₁/e + E₂/e.
        Expr::Or(v) => Expr::or(v.iter().map(|p| residuate_normal(p, by))),
        // R5: (E₁|E₂)/e = (E₁/e)|(E₂/e).
        Expr::And(v) => Expr::and(v.iter().map(|p| residuate_normal(p, by))),
        Expr::Seq(v) => {
            // Normal form: v is a flat literal sequence.
            if !e.mentions(by.symbol()) {
                // R6.
                return e.clone();
            }
            match v.first() {
                Some(Expr::Lit(head)) if *head == by => {
                    // R3: (e·E)/e = E.
                    Expr::seq(v[1..].iter().cloned())
                }
                // R7/R8: `by`'s symbol occurs in the sequence but not as the
                // head event — the required ordering (or the complement-
                // freedom) can no longer be met, so the residual is 0.
                _ => Expr::Zero,
            }
        }
    }
}

/// Residuate by a whole trace: `((E/u₁)/u₂)/…` — the scheduler state after
/// the events of `u` have occurred in order.
pub fn residuate_trace(e: &Expr, u: &Trace) -> Expr {
    let mut acc = normalize(e);
    for &l in u.events() {
        acc = residuate_normal(&acc, l);
    }
    acc
}

/// Model-theoretic residual per Semantics 6, restricted to futures over
/// `syms` *excluding* `by`'s symbol (after `e` occurs, no future trace can
/// contain `e` or `ē`, so those are the only futures the scheduler can
/// ever see; on futures mentioning `by`'s symbol the definition is
/// vacuously permissive and the symbolic rules intentionally differ).
pub fn residual_oracle(e: &Expr, by: Literal, syms: &[SymbolId]) -> Vec<Trace> {
    let all = enumerate_universe(syms);
    let futures: Vec<&Trace> = all.iter().filter(|v| !v.resolves(by.symbol())).collect();
    let by_traces: Vec<&Trace> = all.iter().filter(|u| u.contains(by)).collect();
    futures
        .into_iter()
        .filter(|v| {
            by_traces.iter().all(|u| match u.concat(v) {
                Some(uv) => satisfies(&uv, e),
                None => true,
            })
        })
        .cloned()
        .collect()
}

/// Check Theorem 1 for one `(E, by)` instance: the symbolic residual and
/// the model-theoretic residual agree on every realizable future.
pub fn residuation_sound(e: &Expr, by: Literal, syms: &[SymbolId]) -> bool {
    let symbolic = residuate(e, by);
    let oracle = residual_oracle(e, by, syms);
    enumerate_universe(syms)
        .into_iter()
        .filter(|v| !v.resolves(by.symbol()))
        .all(|v| satisfies(&v, &symbolic) == oracle.contains(&v))
}

/// Does some *maximal completion* starting from residual state `e` reach
/// `⊤`? I.e., is there an ordering and polarity resolution of `e`'s
/// remaining symbols whose residual chain ends satisfied?
///
/// This is the "may prevent some proper traces" check of Section 3.4(2a):
/// a scheduler accepting an event whose residual is non-zero but
/// unsatisfiable would generate only improper traces.
pub fn satisfiable(e: &Expr) -> bool {
    let mut memo = HashMap::new();
    // Residual states are already normal; skip the re-normalization pass.
    if is_normal(e) {
        satisfiable_memo(e, &mut memo)
    } else {
        satisfiable_memo(&normalize(e), &mut memo)
    }
}

fn satisfiable_memo(e: &Expr, memo: &mut HashMap<Expr, bool>) -> bool {
    match e {
        Expr::Top => return true,
        Expr::Zero => return false,
        _ => {}
    }
    if let Some(&r) = memo.get(e) {
        return r;
    }
    // Events of symbols outside Γ_E never change the residual (R6), so it
    // suffices to resolve E's own symbols in every order and polarity.
    let syms = e.symbols();
    let mut found = false;
    'outer: for &s in &syms {
        for lit in [Literal::pos(s), Literal::neg(s)] {
            let next = residuate_normal(e, lit);
            if satisfiable_memo(&next, memo) {
                found = true;
                break 'outer;
            }
        }
    }
    memo.insert(e.clone(), found);
    found
}

/// Like [`satisfiable`] but with `avoid` forbidden from occurring: the
/// search may resolve `avoid`'s symbol only to the complement, and only at
/// whatever position the completion chooses (residuals by distinct symbols
/// do not commute across sequences, so the position matters).
///
/// `requires(D, e)` — "every remaining satisfying completion contains `e`"
/// — is `satisfiable(D) && !satisfiable_avoiding(D, e)`; this drives
/// proactive triggering of triggerable events.
pub fn satisfiable_avoiding(e: &Expr, avoid: Literal) -> bool {
    let mut memo = HashMap::new();
    if is_normal(e) {
        sat_avoiding_memo(e, avoid, &mut memo)
    } else {
        sat_avoiding_memo(&normalize(e), avoid, &mut memo)
    }
}

fn sat_avoiding_memo(e: &Expr, avoid: Literal, memo: &mut HashMap<Expr, bool>) -> bool {
    match e {
        Expr::Top => return true,
        Expr::Zero => return false,
        _ => {}
    }
    if let Some(&r) = memo.get(e) {
        return r;
    }
    let syms = e.symbols();
    let mut found = false;
    'outer: for &s in &syms {
        for lit in [Literal::pos(s), Literal::neg(s)] {
            if lit == avoid {
                continue;
            }
            let next = residuate_normal(e, lit);
            if sat_avoiding_memo(&next, avoid, memo) {
                found = true;
                break 'outer;
            }
        }
    }
    memo.insert(e.clone(), found);
    found
}

/// `true` if every maximal completion from state `e` that satisfies the
/// dependency includes the event `lit` — i.e. `lit` has become *required*
/// and a triggerable event should be proactively triggered (Section 3.3(b)).
pub fn requires(e: &Expr, lit: Literal) -> bool {
    satisfiable(e) && !satisfiable_avoiding(e, lit)
}

/// Like [`satisfiable`], but no literal in `avoid` may be used. With
/// `avoid` = the complements of a set of *inevitable* events (events some
/// task guarantees to perform, like the exit of an entered critical
/// section), this decides whether a residual can still be met in a future
/// consistent with those guarantees.
pub fn satisfiable_avoiding_all(e: &Expr, avoid: &std::collections::BTreeSet<Literal>) -> bool {
    fn go(
        e: &Expr,
        avoid: &std::collections::BTreeSet<Literal>,
        memo: &mut HashMap<Expr, bool>,
    ) -> bool {
        match e {
            Expr::Top => return true,
            Expr::Zero => return false,
            _ => {}
        }
        if let Some(&r) = memo.get(e) {
            return r;
        }
        let syms = e.symbols();
        let mut found = false;
        'outer: for &s in &syms {
            for lit in [Literal::pos(s), Literal::neg(s)] {
                if avoid.contains(&lit) {
                    continue;
                }
                let next = residuate_normal(e, lit);
                if go(&next, avoid, memo) {
                    found = true;
                    break 'outer;
                }
            }
        }
        memo.insert(e.clone(), found);
        found
    }
    let mut memo = HashMap::new();
    if is_normal(e) {
        go(e, avoid, &mut memo)
    } else {
        go(&normalize(e), avoid, &mut memo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolTable;

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    fn d_precedes(e: Literal, f: Literal) -> Expr {
        // D< = ē + f̄ + e·f.
        Expr::or([
            Expr::lit(e.complement()),
            Expr::lit(f.complement()),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
        ])
    }

    fn d_arrow(e: Literal, f: Literal) -> Expr {
        // D→ = ē + f.
        Expr::or([Expr::lit(e.complement()), Expr::lit(f)])
    }

    #[test]
    fn example6_residuals() {
        let (_, e, f) = setup();
        // (ē + f̄ + e·f)/e = f̄ + f.
        let d = d_precedes(e, f);
        let r = residuate(&d, e);
        assert_eq!(r, Expr::or([Expr::lit(f), Expr::lit(f.complement())]));
        // (ē + f)/f̄ = ē.
        let r2 = residuate(&d_arrow(e, f), f.complement());
        assert_eq!(r2, Expr::lit(e.complement()));
    }

    #[test]
    fn figure2_d_precedes_walk() {
        let (_, e, f) = setup();
        let d = d_precedes(e, f);
        // Complements satisfy D< immediately.
        assert_eq!(residuate(&d, e.complement()), Expr::Top);
        assert_eq!(residuate(&d, f.complement()), Expr::Top);
        // After e: f or f̄ may happen, then ⊤ either way.
        let after_e = residuate(&d, e);
        assert_eq!(residuate(&after_e, f), Expr::Top);
        assert_eq!(residuate(&after_e, f.complement()), Expr::Top);
        // After f: only ē leads to ⊤; e violates.
        let after_f = residuate(&d, f);
        assert_eq!(after_f, Expr::lit(e.complement()));
        assert_eq!(residuate(&after_f, e.complement()), Expr::Top);
        assert_eq!(residuate(&after_f, e), Expr::Zero);
    }

    #[test]
    fn figure2_d_arrow_walk() {
        let (_, e, f) = setup();
        let d = d_arrow(e, f);
        assert_eq!(residuate(&d, e.complement()), Expr::Top);
        assert_eq!(residuate(&d, f), Expr::Top);
        // After e, f must still occur.
        assert_eq!(residuate(&d, e), Expr::lit(f));
    }

    #[test]
    fn atom_rules() {
        let (_, e, _) = setup();
        assert_eq!(residuate(&Expr::lit(e), e), Expr::Top); // e/e = ⊤
        assert_eq!(residuate(&Expr::lit(e.complement()), e), Expr::Zero); // ē/e = 0
        assert_eq!(residuate(&Expr::Zero, e), Expr::Zero); // R1
        assert_eq!(residuate(&Expr::Top, e), Expr::Top); // R2
    }

    #[test]
    fn r7_r8_sequence_kills() {
        let (mut t, e, f) = setup();
        let g = t.event("g");
        // (f·e)/e = 0: e is needed later in the sequence.
        assert_eq!(residuate(&Expr::seq([Expr::lit(f), Expr::lit(e)]), e), Expr::Zero);
        // (ē·f)/e = 0: ē can no longer occur.
        assert_eq!(residuate(&Expr::seq([Expr::lit(e.complement()), Expr::lit(f)]), e), Expr::Zero);
        // (f·g)/e = f·g: untouched (R6).
        let fg = Expr::seq([Expr::lit(f), Expr::lit(g)]);
        assert_eq!(residuate(&fg, e), fg);
    }

    #[test]
    fn residuate_distributes_over_or_and_and() {
        let (mut t, e, f) = setup();
        let g = t.event("g");
        let d = Expr::or([Expr::lit(f), Expr::and([Expr::lit(g), Expr::lit(e)])]);
        let r = residuate(&d, e);
        assert_eq!(r, Expr::or([Expr::lit(f), Expr::lit(g)]));
    }

    #[test]
    fn residuate_trace_chains() {
        let (_, e, f) = setup();
        let d = d_precedes(e, f);
        let u = Trace::new([e, f]).unwrap();
        assert_eq!(residuate_trace(&d, &u), Expr::Top);
        let u2 = Trace::new([f, e]).unwrap();
        assert_eq!(residuate_trace(&d, &u2), Expr::Zero);
    }

    #[test]
    fn soundness_on_paper_dependencies() {
        let (t, e, f) = setup();
        let syms: Vec<SymbolId> = t.ids().collect();
        for d in [d_precedes(e, f), d_arrow(e, f)] {
            for by in [e, e.complement(), f, f.complement()] {
                assert!(residuation_sound(&d, by, &syms), "D={d} by={by}");
            }
        }
    }

    #[test]
    fn soundness_on_sequences_and_conjunctions() {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let g = t.event("g");
        let syms: Vec<SymbolId> = t.ids().collect();
        let cases = [
            Expr::seq([Expr::lit(e), Expr::lit(f), Expr::lit(g)]),
            Expr::and([Expr::lit(e), Expr::or([Expr::lit(f), Expr::lit(g.complement())])]),
            Expr::or([Expr::seq([Expr::lit(e), Expr::lit(f)]), Expr::lit(g)]),
            Expr::and([
                Expr::or([Expr::lit(e.complement()), Expr::lit(f)]),
                Expr::or([Expr::lit(f.complement()), Expr::lit(g)]),
            ]),
        ];
        for d in cases {
            for by in [e, e.complement(), f, f.complement(), g, g.complement()] {
                assert!(residuation_sound(&d, by, &syms), "D={d} by={by}");
            }
        }
    }

    #[test]
    fn maximal_trace_residual_is_top_iff_satisfied() {
        let (t, e, f) = setup();
        let syms: Vec<SymbolId> = t.ids().collect();
        let d = d_precedes(e, f);
        for u in crate::trace::enumerate_maximal(&syms) {
            let residual = residuate_trace(&d, &u);
            let sat = satisfies(&u, &d);
            assert_eq!(residual.is_top(), sat, "u={u}");
            assert_eq!(residual.is_zero(), !sat, "u={u}");
        }
    }

    #[test]
    fn satisfiability_of_states() {
        let (_, e, f) = setup();
        assert!(satisfiable(&Expr::Top));
        assert!(!satisfiable(&Expr::Zero));
        assert!(satisfiable(&d_precedes(e, f)));
        assert!(satisfiable(&Expr::seq([Expr::lit(e), Expr::lit(f)])));
        // e | ē collapses to 0 in the constructor already.
        assert!(!satisfiable(&Expr::and([Expr::lit(e), Expr::lit(e.complement())])));
    }

    #[test]
    fn requires_drives_triggering() {
        let (_, e, f) = setup();
        // After e occurs in D→ = ē + f, the residual is f: f is required.
        let state = residuate(&d_arrow(e, f), e);
        assert!(requires(&state, f));
        assert!(!requires(&state, e));
        // In the initial state nothing is required yet.
        assert!(!requires(&d_arrow(e, f), f));
        // In D< after f, ē is required.
        let s2 = residuate(&d_precedes(e, f), f);
        assert!(requires(&s2, e.complement()));
    }

    #[test]
    fn satisfiable_avoiding_blocks_the_only_witness() {
        let (_, e, f) = setup();
        let state = Expr::lit(f);
        assert!(satisfiable_avoiding(&state, f.complement()));
        assert!(!satisfiable_avoiding(&state, f));
        let _ = e;
    }

    #[test]
    fn satisfiable_avoiding_respects_sequence_positions() {
        // D = e·f̄ avoiding f is satisfiable by ⟨e f̄⟩; a naive search that
        // resolves f's symbol first would wrongly report unsatisfiable.
        let (_, e, f) = setup();
        let d = Expr::seq([Expr::lit(e), Expr::lit(f.complement())]);
        assert!(satisfiable_avoiding(&d, f));
        assert!(!satisfiable_avoiding(&d, f.complement()));
        assert!(!satisfiable_avoiding(&d, e));
    }
}
