//! Budgeted product reachability over dependency machines.
//!
//! The compilation phase (Section 6) must decide questions that quantify
//! over *joint* completions of a whole workflow: do the dependencies admit
//! any common satisfying trace, and can/must a given event occur in one?
//! Enumerating residual-expression sets answers these but re-derives the
//! same residuals along every interleaving. The per-dependency
//! [`DependencyMachine`]s already collapse those residuals into finitely
//! many states, so the joint questions become plain graph reachability in
//! the *product* of the machines:
//!
//! - a product state is one [`StateId`] per machine (interned once and
//!   shared across queries);
//! - stepping by a literal steps every machine (rule R6 self-loops are
//!   free — the transition map simply has no entry);
//! - a trace jointly satisfies the workflow iff it drives every machine to
//!   its `⊤` state, and residuation can never leave `⊤`, so joint
//!   satisfiability is exactly reachability of the all-accepting product
//!   state;
//! - avoiding a literal `l` restricts the edge set, which decides the
//!   dead/forced quantifications: a satisfying trace *containing* `l`
//!   exists iff the all-accepting state is reachable while avoiding `l̄`.
//!
//! Product spaces can still be exponential in the number of machines, so
//! every search draws from an explicit [`StateBudget`]; on exhaustion the
//! caller receives [`Reach::Cutoff`] and is expected to surface it as a
//! diagnostic instead of hanging.

use crate::expr::Expr;
use crate::fxhash::FxHashMap;
use crate::machine::{DependencyMachine, StateId};
use crate::symbol::Literal;

/// Index of an interned product state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProductId(pub u32);

impl ProductId {
    /// The state's index into the intern table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The outcome of a budgeted reachability query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reach {
    /// A target state was reached.
    Yes,
    /// The full reachable region was explored without finding a target.
    No,
    /// The state budget ran out before the search completed.
    Cutoff,
}

impl Reach {
    /// `true` only for [`Reach::Yes`].
    pub fn found(self) -> bool {
        self == Reach::Yes
    }

    /// `true` only for [`Reach::Cutoff`].
    pub fn cutoff(self) -> bool {
        self == Reach::Cutoff
    }
}

/// A shared allowance of product states across several queries.
///
/// Every *newly interned* product state costs one unit; revisiting an
/// already-interned state is free, which is what makes the shared intern
/// table a cache rather than mere bookkeeping.
#[derive(Debug, Clone)]
pub struct StateBudget {
    limit: usize,
    spent: usize,
}

impl StateBudget {
    /// A budget of `limit` product states.
    pub fn new(limit: usize) -> StateBudget {
        StateBudget { limit, spent: 0 }
    }

    /// States charged so far.
    pub fn spent(&self) -> usize {
        self.spent
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// `true` once the allowance is used up.
    pub fn exhausted(&self) -> bool {
        self.spent >= self.limit
    }

    fn charge(&mut self) -> bool {
        if self.spent >= self.limit {
            return false;
        }
        self.spent += 1;
        true
    }
}

/// The product of a workflow's dependency machines, with an intern table
/// shared across reachability queries.
#[derive(Debug, Clone)]
pub struct ProductMachine {
    machines: Vec<DependencyMachine>,
    /// Union alphabet (closed under complement), deduplicated and sorted.
    alphabet: Vec<Literal>,
    /// Interned product states.
    states: Vec<Vec<StateId>>,
    /// Fallback intern table, used when the packed key does not fit.
    index: FxHashMap<Vec<StateId>, ProductId>,
    /// Fast intern table over packed `u64` keys (one bit-field per
    /// machine), active when the per-machine state counts fit in 64 bits.
    index_packed: FxHashMap<u64, ProductId>,
    /// Bit offsets per machine for the packed key, or `None` when product
    /// states are too wide and the `Vec`-keyed table is used instead.
    packing: Option<Vec<u32>>,
    /// Per-machine liveness masks: product states containing a trap state
    /// of any machine are pruned (no all-accepting state lies beyond).
    live: Vec<Vec<bool>>,
    /// Memoized successor edges, keyed by (state, alphabet position).
    succ: FxHashMap<(ProductId, u16), ProductId>,
}

impl ProductMachine {
    /// Compile one machine per dependency and form their product.
    /// Structurally identical dependencies (after normalization, decided
    /// by hash-consed id equality) are compiled once and share their
    /// machine.
    pub fn compile(dependencies: &[Expr]) -> ProductMachine {
        ProductMachine::from_machines(DependencyMachine::compile_all(dependencies))
    }

    /// Form the product of already-compiled machines (the compiled
    /// workflow's machines can be reused directly).
    pub fn from_machines(machines: Vec<DependencyMachine>) -> ProductMachine {
        Self::build(machines, true)
    }

    /// Like [`ProductMachine::from_machines`] but with packed `u64` state
    /// keys disabled — the pre-packing reference path, kept selectable for
    /// the benches' before/after comparison.
    pub fn from_machines_wide(machines: Vec<DependencyMachine>) -> ProductMachine {
        Self::build(machines, false)
    }

    fn build(machines: Vec<DependencyMachine>, pack: bool) -> ProductMachine {
        let mut alphabet: Vec<Literal> =
            machines.iter().flat_map(|m| m.alphabet.iter().copied()).collect();
        alphabet.sort();
        alphabet.dedup();
        let live = machines.iter().map(DependencyMachine::live_mask).collect();
        // Bit width per machine: enough for its state count; the packed
        // key is usable when the widths sum to ≤ 64.
        let packing = if pack {
            let mut offsets = Vec::with_capacity(machines.len());
            let mut total = 0u32;
            for m in &machines {
                offsets.push(total);
                let width = usize::BITS - m.state_count().next_power_of_two().leading_zeros();
                total = total.saturating_add(width.max(1));
            }
            (total <= 64).then_some(offsets)
        } else {
            None
        };
        let mut p = ProductMachine {
            machines,
            alphabet,
            states: Vec::new(),
            index: FxHashMap::default(),
            index_packed: FxHashMap::default(),
            packing,
            live,
            succ: FxHashMap::default(),
        };
        let initial: Vec<StateId> = p.machines.iter().map(|m| m.initial).collect();
        p.insert_state(initial, ProductId(0));
        p
    }

    /// Pack a product state into its `u64` key (requires `packing`).
    fn pack_key(offsets: &[u32], state: &[StateId]) -> u64 {
        state.iter().zip(offsets).fold(0u64, |acc, (&s, &off)| acc | (u64::from(s.0) << off))
    }

    fn insert_state(&mut self, state: Vec<StateId>, id: ProductId) {
        if let Some(offsets) = &self.packing {
            self.index_packed.insert(Self::pack_key(offsets, &state), id);
        } else {
            self.index.insert(state.clone(), id);
        }
        self.states.push(state);
    }

    fn lookup_state(&self, state: &[StateId]) -> Option<ProductId> {
        match &self.packing {
            Some(offsets) => self.index_packed.get(&Self::pack_key(offsets, state)).copied(),
            None => self.index.get(state).copied(),
        }
    }

    /// The component machines.
    pub fn machines(&self) -> &[DependencyMachine] {
        &self.machines
    }

    /// The union alphabet.
    pub fn alphabet(&self) -> &[Literal] {
        &self.alphabet
    }

    /// The initial product state (every machine at its initial state).
    pub fn initial(&self) -> ProductId {
        ProductId(0)
    }

    /// Number of product states interned so far (across all queries).
    pub fn interned_states(&self) -> usize {
        self.states.len()
    }

    /// `true` when every component machine accepts at `pid`.
    pub fn is_accepting(&self, pid: ProductId) -> bool {
        self.states[pid.index()].iter().zip(&self.machines).all(|(&s, m)| m.is_accepting(s))
    }

    /// `true` when some component is in a trap state (the joint run can
    /// no longer end with all dependencies satisfied).
    pub fn is_doomed(&self, pid: ProductId) -> bool {
        self.states[pid.index()].iter().zip(&self.live).any(|(&s, live)| !live[s.index()])
    }

    /// Step every machine by `lit`, interning the result. `None` when the
    /// budget cannot pay for a newly discovered state.
    fn step(&mut self, pid: ProductId, ix: u16, budget: &mut StateBudget) -> Option<ProductId> {
        if let Some(&next) = self.succ.get(&(pid, ix)) {
            return Some(next);
        }
        let lit = self.alphabet[ix as usize];
        let next: Vec<StateId> = self.states[pid.index()]
            .iter()
            .zip(&self.machines)
            .map(|(&s, m)| m.step(s, lit))
            .collect();
        let nid = match self.lookup_state(&next) {
            Some(id) => id,
            None => {
                if !budget.charge() {
                    return None;
                }
                let id = ProductId(self.states.len() as u32);
                self.insert_state(next, id);
                id
            }
        };
        self.succ.insert((pid, ix), nid);
        Some(nid)
    }

    /// Is an all-accepting product state reachable from the initial state,
    /// optionally without ever taking an `avoid` edge?
    ///
    /// With `avoid = None` this decides joint satisfiability of the
    /// workflow. With `avoid = Some(l)` it decides whether some jointly
    /// satisfying maximal trace excludes `l` — the building block for the
    /// dead/forced quantifications (residuation removes a symbol from
    /// every residual, so untaken symbols can always be completed after
    /// acceptance without leaving `⊤`).
    pub fn reach_accepting(&mut self, avoid: Option<Literal>, budget: &mut StateBudget) -> Reach {
        let mut visited = vec![false; self.states.len()];
        let mut frontier = vec![self.initial()];
        let mark = |visited: &mut Vec<bool>, pid: ProductId| {
            if visited.len() <= pid.index() {
                visited.resize(pid.index() + 1, false);
            }
            let seen = visited[pid.index()];
            visited[pid.index()] = true;
            seen
        };
        mark(&mut visited, self.initial());
        let mut cutoff = false;
        while let Some(pid) = frontier.pop() {
            if self.is_accepting(pid) {
                return Reach::Yes;
            }
            if self.is_doomed(pid) {
                continue;
            }
            for ix in 0..self.alphabet.len() as u16 {
                if avoid == Some(self.alphabet[ix as usize]) {
                    continue;
                }
                match self.step(pid, ix, budget) {
                    Some(nid) => {
                        if !mark(&mut visited, nid) {
                            frontier.push(nid);
                        }
                    }
                    None => cutoff = true,
                }
            }
        }
        if cutoff {
            Reach::Cutoff
        } else {
            Reach::No
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_expr;
    use crate::symbol::SymbolTable;

    fn deps(srcs: &[&str]) -> (SymbolTable, Vec<Expr>) {
        let mut t = SymbolTable::new();
        let ds = srcs.iter().map(|s| parse_expr(s, &mut t).unwrap()).collect();
        (t, ds)
    }

    #[test]
    fn joint_satisfiability_by_reachability() {
        let (_, ds) = deps(&["e.f", "f.e"]);
        let mut p = ProductMachine::compile(&ds);
        let mut b = StateBudget::new(10_000);
        assert_eq!(p.reach_accepting(None, &mut b), Reach::No);

        let (_, ds) = deps(&["~e + f", "~f + e"]);
        let mut p = ProductMachine::compile(&ds);
        assert_eq!(p.reach_accepting(None, &mut b), Reach::Yes);
    }

    #[test]
    fn avoiding_decides_dead_and_forced() {
        let (mut t, ds) = deps(&["~e", "f"]);
        let e = t.event("e");
        let f = t.event("f");
        let mut p = ProductMachine::compile(&ds);
        let mut b = StateBudget::new(10_000);
        // No satisfying trace contains e (avoiding ē fails): e is dead.
        assert_eq!(p.reach_accepting(Some(e.complement()), &mut b), Reach::No);
        // Every satisfying trace contains f (avoiding f fails): f forced.
        assert_eq!(p.reach_accepting(Some(f), &mut b), Reach::No);
        // Some satisfying trace avoids f̄.
        assert_eq!(p.reach_accepting(Some(f.complement()), &mut b), Reach::Yes);
    }

    #[test]
    fn budget_cutoff_is_reported() {
        let (_, ds) = deps(&["~e1 + e2", "~e2 + e3", "~e3 + e4"]);
        let mut p = ProductMachine::compile(&ds);
        let mut b = StateBudget::new(2);
        assert_eq!(
            p.reach_accepting(Some(Literal::pos(crate::symbol::SymbolId(0))), &mut b),
            Reach::Cutoff
        );
        assert!(b.exhausted());
    }

    #[test]
    fn intern_table_is_shared_across_queries() {
        let (mut t, ds) = deps(&["~e + f", "~f + e"]);
        let e = t.event("e");
        let mut p = ProductMachine::compile(&ds);
        let mut b = StateBudget::new(10_000);
        let _ = p.reach_accepting(None, &mut b);
        let after_first = b.spent();
        // A second query over the same region pays nothing new.
        let _ = p.reach_accepting(None, &mut b);
        assert_eq!(b.spent(), after_first);
        // A restricted query can only intern states the first also saw.
        let _ = p.reach_accepting(Some(e), &mut b);
        assert_eq!(b.spent(), after_first);
    }

    #[test]
    fn packed_and_wide_keying_agree() {
        let (_, ds) = deps(&["~e1 + e2", "~e2 + e3", "~e3 + e4", "~e0 + ~e1 + e0.e1"]);
        let machines: Vec<DependencyMachine> = ds.iter().map(DependencyMachine::compile).collect();
        let mut packed = ProductMachine::from_machines(machines.clone());
        let mut wide = ProductMachine::from_machines_wide(machines);
        assert!(packed.packing.is_some(), "small products should pack");
        assert!(wide.packing.is_none());
        let mut bp = StateBudget::new(100_000);
        let mut bw = StateBudget::new(100_000);
        let avoids: Vec<Option<Literal>> =
            std::iter::once(None).chain(packed.alphabet().to_vec().into_iter().map(Some)).collect();
        for avoid in avoids {
            assert_eq!(
                packed.reach_accepting(avoid, &mut bp),
                wide.reach_accepting(avoid, &mut bw),
                "avoid={avoid:?}"
            );
        }
        assert_eq!(packed.interned_states(), wide.interned_states());
        assert_eq!(bp.spent(), bw.spent());
    }

    #[test]
    fn duplicate_dependencies_share_a_machine() {
        // compile() dedups structurally identical dependencies; the
        // product over duplicates must still answer like the naive build.
        let (_, ds) = deps(&["~e + f", "~e + f", "~f + e"]);
        let mut deduped = ProductMachine::compile(&ds);
        let mut naive = ProductMachine::from_machines(
            ds.iter().map(DependencyMachine::compile_tree_reference).collect(),
        );
        assert_eq!(deduped.machines().len(), 3);
        let mut b1 = StateBudget::new(10_000);
        let mut b2 = StateBudget::new(10_000);
        assert_eq!(deduped.reach_accepting(None, &mut b1), naive.reach_accepting(None, &mut b2));
    }

    #[test]
    fn agrees_with_brute_force_on_small_workflows() {
        use crate::semantics::satisfies;
        use crate::trace::enumerate_maximal;
        let cases: &[&[&str]] = &[
            &["e.f", "f.e"],
            &["~e + f", "~f + e"],
            &["~e", "f"],
            &["e1 | e2.e1 | (e0 + ~e0)", "~e3.~e2"],
            &["~e + ~f + e.f", "~f + ~e + f.e"],
        ];
        for srcs in cases {
            let (_, ds) = deps(srcs);
            let mut syms: Vec<_> = ds.iter().flat_map(|d| d.symbols()).collect();
            syms.sort();
            syms.dedup();
            let brute = enumerate_maximal(&syms).iter().any(|u| ds.iter().all(|d| satisfies(u, d)));
            let mut p = ProductMachine::compile(&ds);
            let mut b = StateBudget::new(100_000);
            assert_eq!(p.reach_accepting(None, &mut b).found(), brute, "{srcs:?}");
        }
    }
}
