//! Dependency state machines (Figure 2 and the automata of [2]).
//!
//! Enforcing a dependency symbolically walks a finite machine whose states
//! are the distinct residuals of the dependency and whose transitions are
//! residuation by the events of `Γ_D` (events outside `Γ_D` never change
//! the state, by rule R6). This is exactly the per-dependency automaton of
//! Attie et al. [2], obtained here for free from residuation; the machine
//! also powers the centralized baseline scheduler and the triggering
//! analysis.

use crate::expr::Expr;
use crate::norm::normalize;
use crate::residue::{requires, residuate, satisfiable};
use crate::symbol::{Literal, SymbolTable};
use crate::trace::Trace;
use std::collections::HashMap;

/// Index of a state in a [`DependencyMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The state's index into [`DependencyMachine::states`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The residual state machine of one dependency.
#[derive(Debug, Clone)]
pub struct DependencyMachine {
    /// The (normalized) dependency this machine enforces.
    pub dependency: Expr,
    /// All reachable residuals; `states[initial]` is the dependency itself.
    pub states: Vec<Expr>,
    /// The start state.
    pub initial: StateId,
    /// Transition function over `Γ_D`; literals outside the alphabet
    /// self-loop implicitly.
    pub transitions: HashMap<(StateId, Literal), StateId>,
    /// `Γ_D`: the relevant literals, closed under complement.
    pub alphabet: Vec<Literal>,
}

impl DependencyMachine {
    /// Compile `dependency` into its residual machine by breadth-first
    /// exploration. Terminates because residuation strictly removes the
    /// residuated symbol from the expression.
    pub fn compile(dependency: &Expr) -> DependencyMachine {
        let dep = normalize(dependency);
        let alphabet: Vec<Literal> = dep.gamma().into_iter().collect();
        let mut states: Vec<Expr> = vec![dep.clone()];
        let mut index: HashMap<Expr, StateId> = HashMap::new();
        index.insert(dep.clone(), StateId(0));
        let mut transitions = HashMap::new();
        let mut frontier = vec![StateId(0)];
        while let Some(sid) = frontier.pop() {
            let state = states[sid.index()].clone();
            for &lit in &alphabet {
                if !state.mentions(lit.symbol()) {
                    continue; // R6: self-loop, left implicit.
                }
                let next = residuate(&state, lit);
                let nid = *index.entry(next.clone()).or_insert_with(|| {
                    let id = StateId(states.len() as u32);
                    states.push(next.clone());
                    frontier.push(id);
                    id
                });
                transitions.insert((sid, lit), nid);
            }
        }
        DependencyMachine { dependency: dep, states, initial: StateId(0), transitions, alphabet }
    }

    /// Number of states (the size metric compared against guard sizes in
    /// experiment C5).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The residual expression at `sid`.
    pub fn state(&self, sid: StateId) -> &Expr {
        &self.states[sid.index()]
    }

    /// Step the machine: events outside `Γ_D` self-loop.
    pub fn step(&self, sid: StateId, lit: Literal) -> StateId {
        self.transitions.get(&(sid, lit)).copied().unwrap_or(sid)
    }

    /// Run a whole trace from the initial state.
    pub fn run(&self, u: &Trace) -> StateId {
        u.events().iter().fold(self.initial, |s, &l| self.step(s, l))
    }

    /// `true` if the state is the satisfied terminal `⊤`.
    pub fn is_accepting(&self, sid: StateId) -> bool {
        self.state(sid).is_top()
    }

    /// `true` if the state is the violated terminal `0`.
    pub fn is_violated(&self, sid: StateId) -> bool {
        self.state(sid).is_zero()
    }

    /// `true` if some maximal completion from `sid` satisfies the
    /// dependency — the safety condition a scheduler must preserve.
    pub fn is_live(&self, sid: StateId) -> bool {
        satisfiable(self.state(sid))
    }

    /// `true` if, at `sid`, every satisfying completion contains `lit`
    /// (so a triggerable `lit` must be proactively triggered).
    pub fn requires_event(&self, sid: StateId, lit: Literal) -> bool {
        requires(self.state(sid), lit)
    }

    /// `true` if accepting `lit` at `sid` keeps the machine live — the
    /// scheduler's acceptance test (Section 3.4 conditions 1 and 2a).
    pub fn may_accept(&self, sid: StateId, lit: Literal) -> bool {
        self.is_live(self.step(sid, lit))
    }

    /// All accepting (`⊤`) states. Every state of a compiled machine is
    /// reachable from the initial state, so an empty result means the
    /// dependency admits no satisfying trace at all.
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.states.len() as u32).map(StateId).filter(|&s| self.is_accepting(s)).collect()
    }

    /// `true` if the machine has any accepting state — i.e. the
    /// dependency is satisfiable on its own.
    pub fn has_accepting(&self) -> bool {
        self.states.iter().any(Expr::is_top)
    }

    /// Per-state liveness by backward reachability: `live[s]` is `true`
    /// when some accepting state is reachable from `s`. Agrees with
    /// [`DependencyMachine::is_live`] (which decides satisfiability of the
    /// residual expression) but costs one graph traversal for the whole
    /// machine instead of one satisfiability check per state.
    pub fn live_mask(&self) -> Vec<bool> {
        let n = self.states.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (&(src, _), &dst) in &self.transitions {
            preds[dst.index()].push(src.index());
        }
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&s| self.states[s].is_top()).collect();
        for &s in &stack {
            live[s] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &preds[s] {
                if !live[p] {
                    live[p] = true;
                    stack.push(p);
                }
            }
        }
        live
    }

    /// Trap states: states from which no accepting state is reachable
    /// (the violated terminal `0` and any other dead residual). A run
    /// entering a trap can only end with the dependency violated, so the
    /// scheduler must reject the event that would move there.
    pub fn trap_states(&self) -> Vec<StateId> {
        self.live_mask()
            .iter()
            .enumerate()
            .filter(|(_, &live)| !live)
            .map(|(s, _)| StateId(s as u32))
            .collect()
    }

    /// Render the full transition relation, one line per edge, with state
    /// labels — regenerates Figure 2 when applied to `D<` and `D→`.
    pub fn render(&self, table: &SymbolTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "machine for {} ({} states)",
            self.dependency.display(table),
            self.state_count()
        );
        for (sid, st) in self.states.iter().enumerate() {
            let sid = StateId(sid as u32);
            let marker = if st.is_top() {
                " [accept]"
            } else if st.is_zero() {
                " [violate]"
            } else if sid == self.initial {
                " [initial]"
            } else {
                ""
            };
            let _ = writeln!(out, "  S{}: {}{}", sid.0, st.display(table), marker);
            let mut edges: Vec<(&Literal, &StateId)> = self
                .transitions
                .iter()
                .filter(|((s, _), _)| *s == sid)
                .map(|((_, l), t)| (l, t))
                .collect();
            edges.sort();
            for (l, t) in edges {
                let _ = writeln!(out, "    --{}--> S{}", table.literal_name(*l), t.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::satisfies;
    use crate::symbol::SymbolId;
    use crate::trace::enumerate_maximal;

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    fn d_precedes(e: Literal, f: Literal) -> Expr {
        Expr::or([
            Expr::lit(e.complement()),
            Expr::lit(f.complement()),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
        ])
    }

    fn d_arrow(e: Literal, f: Literal) -> Expr {
        Expr::or([Expr::lit(e.complement()), Expr::lit(f)])
    }

    #[test]
    fn figure2_d_precedes_machine_shape() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_precedes(e, f));
        // States: D<, ⊤, f+f̄, ē, 0 — exactly the five of Figure 2.
        assert_eq!(m.state_count(), 5);
        assert!(m.is_accepting(m.step(m.initial, e.complement())));
        assert!(m.is_accepting(m.step(m.initial, f.complement())));
        let after_e = m.step(m.initial, e);
        assert_eq!(*m.state(after_e), Expr::or([Expr::lit(f), Expr::lit(f.complement())]));
        let after_f = m.step(m.initial, f);
        assert_eq!(*m.state(after_f), Expr::lit(e.complement()));
        assert!(m.is_violated(m.step(after_f, e)));
        assert!(m.is_accepting(m.step(after_f, e.complement())));
    }

    #[test]
    fn figure2_d_arrow_machine_shape() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_arrow(e, f));
        // States: D→, ⊤, f (after e), ē (after f̄), and 0.
        assert_eq!(m.state_count(), 5);
        assert_eq!(*m.state(m.step(m.initial, f.complement())), Expr::lit(e.complement()));
        assert!(m.is_accepting(m.step(m.initial, f)));
        assert!(m.is_accepting(m.step(m.initial, e.complement())));
        let after_e = m.step(m.initial, e);
        assert_eq!(*m.state(after_e), Expr::lit(f));
        assert!(m.is_violated(m.step(after_e, f.complement())));
    }

    #[test]
    fn machine_accepts_exactly_the_satisfying_maximal_traces() {
        let (_, e, f) = setup();
        let syms = [SymbolId(0), SymbolId(1)];
        for d in [d_precedes(e, f), d_arrow(e, f)] {
            let m = DependencyMachine::compile(&d);
            for u in enumerate_maximal(&syms) {
                assert_eq!(m.is_accepting(m.run(&u)), satisfies(&u, &d), "D={d} u={u}");
            }
        }
    }

    #[test]
    fn irrelevant_events_self_loop() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_arrow(e, f));
        let g = Literal::pos(SymbolId(7));
        assert_eq!(m.step(m.initial, g), m.initial);
    }

    #[test]
    fn may_accept_blocks_dead_states() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_precedes(e, f));
        let after_f = m.step(m.initial, f);
        assert!(!m.may_accept(after_f, e), "e after f violates D<");
        assert!(m.may_accept(after_f, e.complement()));
        assert!(m.may_accept(m.initial, e));
    }

    #[test]
    fn requires_event_in_states() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_arrow(e, f));
        let after_e = m.step(m.initial, e);
        assert!(m.requires_event(after_e, f));
        assert!(!m.requires_event(m.initial, f));
    }

    #[test]
    fn render_mentions_all_states() {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let m = DependencyMachine::compile(&d_precedes(e, f));
        let s = m.render(&t);
        assert!(s.contains("[accept]"), "{s}");
        assert!(s.contains("[violate]"), "{s}");
        assert!(s.contains("[initial]"), "{s}");
        assert!(s.contains("--~e--> "), "{s}");
    }

    #[test]
    fn chain_dependency_machine_is_linear_plus_kills() {
        // e1·e2·e3: states ⊤,0 and the 4 suffixes.
        let lits: Vec<Literal> = (0..3).map(|i| Literal::pos(SymbolId(i))).collect();
        let d = Expr::seq(lits.iter().map(|&l| Expr::lit(l)));
        let m = DependencyMachine::compile(&d);
        assert_eq!(m.state_count(), 5); // e1e2e3, e2e3, e3, ⊤, 0
        let mut s = m.initial;
        for &l in &lits {
            s = m.step(s, l);
        }
        assert!(m.is_accepting(s));
    }
}
