//! Dependency state machines (Figure 2 and the automata of [2]).
//!
//! Enforcing a dependency symbolically walks a finite machine whose states
//! are the distinct residuals of the dependency and whose transitions are
//! residuation by the events of `Γ_D` (events outside `Γ_D` never change
//! the state, by rule R6). This is exactly the per-dependency automaton of
//! Attie et al. [2], obtained here for free from residuation; the machine
//! also powers the centralized baseline scheduler and the triggering
//! analysis.

use crate::arena::{ExprArena, ExprId};
use crate::expr::Expr;
use crate::fxhash::FxHashMap;
use crate::norm::normalize;
use crate::residue::residuate;
use crate::symbol::{Literal, SymbolId, SymbolTable};
use crate::trace::Trace;
use std::collections::HashMap;

/// Index of a state in a [`DependencyMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The state's index into [`DependencyMachine::states`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The residual state machine of one dependency.
#[derive(Debug, Clone)]
pub struct DependencyMachine {
    /// The (normalized) dependency this machine enforces.
    pub dependency: Expr,
    /// All reachable residuals; `states[initial]` is the dependency itself.
    pub states: Vec<Expr>,
    /// The start state.
    pub initial: StateId,
    /// Transition function over `Γ_D`; literals outside the alphabet
    /// self-loop implicitly.
    pub transitions: FxHashMap<(StateId, Literal), StateId>,
    /// `Γ_D`: the relevant literals, closed under complement.
    pub alphabet: Vec<Literal>,
    /// `live[s]`: some accepting state is reachable from `s` (computed
    /// once at compile time; queried per-message by the scheduler).
    live: Vec<bool>,
    /// All accepting (`⊤`) states, computed at compile time.
    accepting: Vec<StateId>,
    /// All trap states (no accepting state reachable), computed at
    /// compile time.
    traps: Vec<StateId>,
    /// `avoid_live[k][s]`: an accepting state is reachable from `s`
    /// without taking any edge labeled `alphabet[k]` — the machine form
    /// of `satisfiable_avoiding`, precomputed so `requires_event` is a
    /// table lookup.
    avoid_live: Vec<Vec<bool>>,
}

impl DependencyMachine {
    /// Compile `dependency` into its residual machine by exploring the
    /// residuals in a private [`ExprArena`]. Terminates because
    /// residuation strictly removes the residuated symbol from the
    /// expression.
    pub fn compile(dependency: &Expr) -> DependencyMachine {
        Self::compile_in(&mut ExprArena::new(), dependency)
    }

    /// Like [`DependencyMachine::compile`], but interning residuals into a
    /// caller-supplied arena so repeated compilations (e.g. of a whole
    /// workflow's dependencies) share subterms and memo caches. States are
    /// keyed by `ExprId` — structural equality is an id comparison.
    pub fn compile_in(arena: &mut ExprArena, dependency: &Expr) -> DependencyMachine {
        let raw = arena.intern(dependency);
        let dep = arena.normalize(raw);
        Self::compile_normalized(arena, dep)
    }

    /// Compile from an id already interned and normalized in `arena` —
    /// the shared core of [`DependencyMachine::compile_in`] and
    /// [`DependencyMachine::compile_all`], which avoids re-walking the
    /// tree when the caller interned it to dedup.
    fn compile_normalized(arena: &mut ExprArena, dep: ExprId) -> DependencyMachine {
        let alphabet = arena.alphabet(dep);
        let mut ids: Vec<ExprId> = vec![dep];
        let mut index: FxHashMap<ExprId, StateId> = FxHashMap::default();
        index.insert(dep, StateId(0));
        let mut transitions = FxHashMap::default();
        let mut frontier = vec![StateId(0)];
        while let Some(sid) = frontier.pop() {
            let state = ids[sid.index()];
            for &lit in &alphabet {
                if !arena.mentions(state, lit.symbol()) {
                    continue; // R6: self-loop, left implicit.
                }
                let next = arena.residuate_normal(state, lit);
                let nid = *index.entry(next).or_insert_with(|| {
                    let id = StateId(ids.len() as u32);
                    ids.push(next);
                    frontier.push(id);
                    id
                });
                transitions.insert((sid, lit), nid);
            }
        }
        let states: Vec<Expr> = ids.iter().map(|&i| arena.expr(i)).collect();
        Self::finish(arena.expr(dep), states, transitions, alphabet)
    }

    /// Compile one machine per dependency in a single shared arena.
    /// Structurally identical dependencies (after normalization, decided
    /// by id equality) are compiled once and cloned — the common case for
    /// replicated workflow patterns.
    pub fn compile_all(dependencies: &[Expr]) -> Vec<DependencyMachine> {
        let mut arena = ExprArena::new();
        // Maps the normalized id to the first compiled machine's position:
        // distinct dependencies are never cloned, repeats clone once.
        let mut cache: FxHashMap<ExprId, usize> = FxHashMap::default();
        let mut machines: Vec<DependencyMachine> = Vec::with_capacity(dependencies.len());
        for d in dependencies {
            let raw = arena.intern(d);
            let id = arena.normalize(raw);
            match cache.get(&id) {
                Some(&ix) => {
                    let m = machines[ix].clone();
                    machines.push(m);
                }
                None => {
                    cache.insert(id, machines.len());
                    machines.push(DependencyMachine::compile_normalized(&mut arena, id));
                }
            }
        }
        machines
    }

    /// Reference compilation on the tree representation (the pre-arena
    /// code path), kept as the oracle for the arena ≡ tree isomorphism
    /// tests and the "before" leg of the benches.
    pub fn compile_tree_reference(dependency: &Expr) -> DependencyMachine {
        let dep = normalize(dependency);
        let alphabet: Vec<Literal> = dep.gamma().into_iter().collect();
        let mut states: Vec<Expr> = vec![dep.clone()];
        let mut index: HashMap<Expr, StateId> = HashMap::new();
        index.insert(dep.clone(), StateId(0));
        let mut transitions = FxHashMap::default();
        let mut frontier = vec![StateId(0)];
        while let Some(sid) = frontier.pop() {
            let state = states[sid.index()].clone();
            for &lit in &alphabet {
                if !state.mentions(lit.symbol()) {
                    continue; // R6: self-loop, left implicit.
                }
                let next = residuate(&state, lit);
                let nid = *index.entry(next.clone()).or_insert_with(|| {
                    let id = StateId(states.len() as u32);
                    states.push(next.clone());
                    frontier.push(id);
                    id
                });
                transitions.insert((sid, lit), nid);
            }
        }
        Self::finish(dep, states, transitions, alphabet)
    }

    /// Assemble the machine and precompute every per-state table the
    /// scheduler and the analyzer query: accepting states, liveness (one
    /// backward reachability), traps, and per-alphabet-literal avoidance
    /// liveness (backward reachability on the subgraph without that
    /// literal's edges).
    fn finish(
        dependency: Expr,
        states: Vec<Expr>,
        transitions: FxHashMap<(StateId, Literal), StateId>,
        alphabet: Vec<Literal>,
    ) -> DependencyMachine {
        let n = states.len();
        let accepting: Vec<StateId> =
            (0..n as u32).map(StateId).filter(|s| states[s.index()].is_top()).collect();
        let live = backward_reachable(n, &states, &transitions, None);
        let traps: Vec<StateId> =
            live.iter().enumerate().filter(|(_, &l)| !l).map(|(s, _)| StateId(s as u32)).collect();
        let avoid_live: Vec<Vec<bool>> = alphabet
            .iter()
            .map(|&lit| backward_reachable(n, &states, &transitions, Some(lit)))
            .collect();
        DependencyMachine {
            dependency,
            states,
            initial: StateId(0),
            transitions,
            alphabet,
            live,
            accepting,
            traps,
            avoid_live,
        }
    }

    /// Number of states (the size metric compared against guard sizes in
    /// experiment C5).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The residual expression at `sid`.
    pub fn state(&self, sid: StateId) -> &Expr {
        &self.states[sid.index()]
    }

    /// Step the machine: events outside `Γ_D` self-loop.
    pub fn step(&self, sid: StateId, lit: Literal) -> StateId {
        self.transitions.get(&(sid, lit)).copied().unwrap_or(sid)
    }

    /// Run a whole trace from the initial state.
    pub fn run(&self, u: &Trace) -> StateId {
        u.events().iter().fold(self.initial, |s, &l| self.step(s, l))
    }

    /// `true` if the state is the satisfied terminal `⊤`.
    pub fn is_accepting(&self, sid: StateId) -> bool {
        self.state(sid).is_top()
    }

    /// `true` if the state is the violated terminal `0`.
    pub fn is_violated(&self, sid: StateId) -> bool {
        self.state(sid).is_zero()
    }

    /// `true` if some maximal completion from `sid` satisfies the
    /// dependency — the safety condition a scheduler must preserve.
    /// O(1): liveness was computed once at compile time.
    pub fn is_live(&self, sid: StateId) -> bool {
        self.live[sid.index()]
    }

    /// Position of `lit` in the sorted alphabet, if it belongs to `Γ_D`.
    fn alphabet_ix(&self, lit: Literal) -> Option<usize> {
        self.alphabet.binary_search(&lit).ok()
    }

    /// `true` if an accepting state is reachable from `sid` without ever
    /// taking an edge labeled `avoid` — the machine form of
    /// [`crate::satisfiable_avoiding`] on the state's residual, as a
    /// table lookup. Literals outside `Γ_D` restrict nothing.
    pub fn may_reach_avoiding(&self, sid: StateId, avoid: Literal) -> bool {
        match self.alphabet_ix(avoid) {
            Some(k) => self.avoid_live[k][sid.index()],
            None => self.live[sid.index()],
        }
    }

    /// `true` if, at `sid`, every satisfying completion contains `lit`
    /// (so a triggerable `lit` must be proactively triggered). O(1) via
    /// the compile-time avoidance tables.
    pub fn requires_event(&self, sid: StateId, lit: Literal) -> bool {
        match self.alphabet_ix(lit) {
            Some(k) => self.live[sid.index()] && !self.avoid_live[k][sid.index()],
            // Events outside Γ_D never become required (R6).
            None => false,
        }
    }

    /// `true` if accepting `lit` at `sid` keeps the machine live — the
    /// scheduler's acceptance test (Section 3.4 conditions 1 and 2a).
    pub fn may_accept(&self, sid: StateId, lit: Literal) -> bool {
        self.is_live(self.step(sid, lit))
    }

    /// `true` if `a` and `b` commute on this machine: from *every* state,
    /// stepping `a` then `b` reaches the same state as `b` then `a`.
    /// Because the states of a compiled machine are exactly the reachable
    /// residuals, this decides whether adjacent occurrences of the two
    /// literals can be transposed in any trace without changing this
    /// dependency's residual (and hence its verdict) — the per-machine
    /// core of the interference analyzer's independence relation.
    pub fn literals_commute(&self, a: Literal, b: Literal) -> bool {
        (0..self.states.len() as u32)
            .map(StateId)
            .all(|q| self.step(self.step(q, a), b) == self.step(self.step(q, b), a))
    }

    /// `true` if the symbols commute in every polarity combination —
    /// the schedule-level independence test, used when the analyzer does
    /// not know which polarities a run will realize. Trivially `true`
    /// when either symbol is outside `Γ_D` (R6 self-loops commute with
    /// everything).
    pub fn symbols_commute(&self, a: SymbolId, b: SymbolId) -> bool {
        [Literal::pos(a), Literal::neg(a)].into_iter().all(|la| {
            [Literal::pos(b), Literal::neg(b)].into_iter().all(|lb| self.literals_commute(la, lb))
        })
    }

    /// All accepting (`⊤`) states, computed at compile time. Every state
    /// of a compiled machine is reachable from the initial state, so an
    /// empty result means the dependency admits no satisfying trace at
    /// all.
    pub fn accepting_states(&self) -> Vec<StateId> {
        self.accepting.clone()
    }

    /// `true` if the machine has any accepting state — i.e. the
    /// dependency is satisfiable on its own.
    pub fn has_accepting(&self) -> bool {
        !self.accepting.is_empty()
    }

    /// Per-state liveness: `live[s]` is `true` when some accepting state
    /// is reachable from `s`. Agrees with satisfiability of the residual
    /// expression; computed once at compile time by backward reachability.
    pub fn live(&self) -> &[bool] {
        &self.live
    }

    /// Owned copy of the compile-time liveness mask (see
    /// [`DependencyMachine::live`]).
    pub fn live_mask(&self) -> Vec<bool> {
        self.live.clone()
    }

    /// Trap states: states from which no accepting state is reachable
    /// (the violated terminal `0` and any other dead residual). A run
    /// entering a trap can only end with the dependency violated, so the
    /// scheduler must reject the event that would move there. Computed at
    /// compile time.
    pub fn trap_states(&self) -> Vec<StateId> {
        self.traps.clone()
    }

    /// Render the full transition relation, one line per edge, with state
    /// labels — regenerates Figure 2 when applied to `D<` and `D→`.
    pub fn render(&self, table: &SymbolTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "machine for {} ({} states)",
            self.dependency.display(table),
            self.state_count()
        );
        for (sid, st) in self.states.iter().enumerate() {
            let sid = StateId(sid as u32);
            let marker = if st.is_top() {
                " [accept]"
            } else if st.is_zero() {
                " [violate]"
            } else if sid == self.initial {
                " [initial]"
            } else {
                ""
            };
            let _ = writeln!(out, "  S{}: {}{}", sid.0, st.display(table), marker);
            let mut edges: Vec<(&Literal, &StateId)> = self
                .transitions
                .iter()
                .filter(|((s, _), _)| *s == sid)
                .map(|((_, l), t)| (l, t))
                .collect();
            edges.sort();
            for (l, t) in edges {
                let _ = writeln!(out, "    --{}--> S{}", table.literal_name(*l), t.0);
            }
        }
        out
    }
}

/// Backward reachability from the accepting (`⊤`) states over the
/// transition graph. With `forbidden` set, edges labeled with that literal
/// are excluded: the result is liveness under the constraint that
/// `forbidden` never occurs (implicit self-loops never change the state,
/// so they are irrelevant to reachability).
fn backward_reachable(
    n: usize,
    states: &[Expr],
    transitions: &FxHashMap<(StateId, Literal), StateId>,
    forbidden: Option<Literal>,
) -> Vec<bool> {
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (&(src, lit), &dst) in transitions {
        if forbidden == Some(lit) {
            continue;
        }
        preds[dst.index()].push(src.index());
    }
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|&s| states[s].is_top()).collect();
    for &s in &stack {
        live[s] = true;
    }
    while let Some(s) = stack.pop() {
        for &p in &preds[s] {
            if !live[p] {
                live[p] = true;
                stack.push(p);
            }
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::satisfies;
    use crate::symbol::SymbolId;
    use crate::trace::enumerate_maximal;

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    fn d_precedes(e: Literal, f: Literal) -> Expr {
        Expr::or([
            Expr::lit(e.complement()),
            Expr::lit(f.complement()),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
        ])
    }

    fn d_arrow(e: Literal, f: Literal) -> Expr {
        Expr::or([Expr::lit(e.complement()), Expr::lit(f)])
    }

    #[test]
    fn figure2_d_precedes_machine_shape() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_precedes(e, f));
        // States: D<, ⊤, f+f̄, ē, 0 — exactly the five of Figure 2.
        assert_eq!(m.state_count(), 5);
        assert!(m.is_accepting(m.step(m.initial, e.complement())));
        assert!(m.is_accepting(m.step(m.initial, f.complement())));
        let after_e = m.step(m.initial, e);
        assert_eq!(*m.state(after_e), Expr::or([Expr::lit(f), Expr::lit(f.complement())]));
        let after_f = m.step(m.initial, f);
        assert_eq!(*m.state(after_f), Expr::lit(e.complement()));
        assert!(m.is_violated(m.step(after_f, e)));
        assert!(m.is_accepting(m.step(after_f, e.complement())));
    }

    #[test]
    fn figure2_d_arrow_machine_shape() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_arrow(e, f));
        // States: D→, ⊤, f (after e), ē (after f̄), and 0.
        assert_eq!(m.state_count(), 5);
        assert_eq!(*m.state(m.step(m.initial, f.complement())), Expr::lit(e.complement()));
        assert!(m.is_accepting(m.step(m.initial, f)));
        assert!(m.is_accepting(m.step(m.initial, e.complement())));
        let after_e = m.step(m.initial, e);
        assert_eq!(*m.state(after_e), Expr::lit(f));
        assert!(m.is_violated(m.step(after_e, f.complement())));
    }

    #[test]
    fn machine_accepts_exactly_the_satisfying_maximal_traces() {
        let (_, e, f) = setup();
        let syms = [SymbolId(0), SymbolId(1)];
        for d in [d_precedes(e, f), d_arrow(e, f)] {
            let m = DependencyMachine::compile(&d);
            for u in enumerate_maximal(&syms) {
                assert_eq!(m.is_accepting(m.run(&u)), satisfies(&u, &d), "D={d} u={u}");
            }
        }
    }

    #[test]
    fn irrelevant_events_self_loop() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_arrow(e, f));
        let g = Literal::pos(SymbolId(7));
        assert_eq!(m.step(m.initial, g), m.initial);
    }

    #[test]
    fn may_accept_blocks_dead_states() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_precedes(e, f));
        let after_f = m.step(m.initial, f);
        assert!(!m.may_accept(after_f, e), "e after f violates D<");
        assert!(m.may_accept(after_f, e.complement()));
        assert!(m.may_accept(m.initial, e));
    }

    #[test]
    fn requires_event_in_states() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_arrow(e, f));
        let after_e = m.step(m.initial, e);
        assert!(m.requires_event(after_e, f));
        assert!(!m.requires_event(m.initial, f));
    }

    #[test]
    fn arrow_commutes_precedence_does_not() {
        let (_, e, f) = setup();
        // D→ = ē + f: satisfaction never depends on the relative order of
        // e and f, and the machine proves it state by state.
        let arrow = DependencyMachine::compile(&d_arrow(e, f));
        assert!(arrow.literals_commute(e, f));
        assert!(arrow.symbols_commute(e.symbol(), f.symbol()));
        // D< = ē + f̄ + e·f: from the initial state e·f accepts while f·e
        // violates, so the pair must not commute.
        let prec = DependencyMachine::compile(&d_precedes(e, f));
        assert!(!prec.literals_commute(e, f));
        assert!(!prec.symbols_commute(e.symbol(), f.symbol()));
        // Symbols outside Γ_D self-loop (R6) and commute with everything.
        assert!(prec.symbols_commute(e.symbol(), SymbolId(9)));
    }

    #[test]
    fn commutation_matches_trace_transposition() {
        // Oracle: literals commute iff transposing them at the end of
        // every reachable prefix leaves the residual unchanged. Walk all
        // states (the reachable residuals) and compare against the
        // machine's verdict on the paper's two dependencies and a chain.
        let (mut t, e, f) = setup();
        let g = t.event("g");
        for d in
            [d_precedes(e, f), d_arrow(e, f), Expr::seq([Expr::lit(e), Expr::lit(f), Expr::lit(g)])]
        {
            let m = DependencyMachine::compile(&d);
            for &a in &m.alphabet {
                for &b in &m.alphabet {
                    let brute = (0..m.state_count() as u32).map(StateId).all(|q| {
                        m.state(m.step(m.step(q, a), b)) == m.state(m.step(m.step(q, b), a))
                    });
                    assert_eq!(m.literals_commute(a, b), brute, "D={d} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn render_mentions_all_states() {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        let m = DependencyMachine::compile(&d_precedes(e, f));
        let s = m.render(&t);
        assert!(s.contains("[accept]"), "{s}");
        assert!(s.contains("[violate]"), "{s}");
        assert!(s.contains("[initial]"), "{s}");
        assert!(s.contains("--~e--> "), "{s}");
    }

    /// Check that two machines are isomorphic: a bijection between states
    /// matching residual labels, initial states, and every transition.
    fn assert_isomorphic(a: &DependencyMachine, b: &DependencyMachine) {
        assert_eq!(a.state_count(), b.state_count());
        assert_eq!(a.alphabet, b.alphabet);
        // States are distinct residuals, so the label map is the bijection.
        let to_b: HashMap<&Expr, StateId> =
            b.states.iter().enumerate().map(|(i, s)| (s, StateId(i as u32))).collect();
        assert_eq!(to_b.len(), b.state_count(), "states must be distinct");
        let map = |s: StateId| *to_b.get(a.state(s)).expect("state label present in both");
        assert_eq!(map(a.initial), b.initial);
        assert_eq!(a.transitions.len(), b.transitions.len());
        for (&(src, lit), &dst) in &a.transitions {
            assert_eq!(b.step(map(src), lit), map(dst), "edge {src:?} --{lit}-->");
        }
        // The compile-time tables must agree under the bijection too.
        for s in 0..a.state_count() as u32 {
            let (sa, sb) = (StateId(s), map(StateId(s)));
            assert_eq!(a.is_live(sa), b.is_live(sb));
            for &lit in &a.alphabet {
                assert_eq!(a.requires_event(sa, lit), b.requires_event(sb, lit));
                assert_eq!(a.may_reach_avoiding(sa, lit), b.may_reach_avoiding(sb, lit));
            }
        }
    }

    #[test]
    fn arena_and_tree_compiles_are_isomorphic() {
        // Pinned oracle: the arena-backed compile and the tree-reference
        // compile produce isomorphic state graphs on the paper's
        // dependencies and a 3-chain.
        let (mut t, e, f) = setup();
        let g = t.event("g");
        let cases = [
            d_precedes(e, f),
            d_arrow(e, f),
            Expr::seq([Expr::lit(e), Expr::lit(f), Expr::lit(g)]),
            Expr::and([d_arrow(e, f), d_arrow(f, g)]),
        ];
        for d in cases {
            let arena = DependencyMachine::compile(&d);
            let tree = DependencyMachine::compile_tree_reference(&d);
            assert_isomorphic(&arena, &tree);
        }
    }

    #[test]
    fn compile_time_tables_match_recomputation() {
        let (_, e, f) = setup();
        let m = DependencyMachine::compile(&d_precedes(e, f));
        for s in 0..m.state_count() as u32 {
            let s = StateId(s);
            assert_eq!(m.is_live(s), crate::satisfiable(m.state(s)), "live at {s:?}");
            for &lit in &m.alphabet {
                assert_eq!(
                    m.requires_event(s, lit),
                    crate::requires(m.state(s), lit),
                    "requires {lit} at {s:?}"
                );
                assert_eq!(
                    m.may_reach_avoiding(s, lit),
                    crate::satisfiable_avoiding(m.state(s), lit),
                    "avoiding {lit} at {s:?}"
                );
            }
        }
        assert_eq!(m.trap_states().len() + m.live().iter().filter(|&&l| l).count(), 5);
        assert_eq!(m.accepting_states().len(), 1);
    }

    #[test]
    fn chain_dependency_machine_is_linear_plus_kills() {
        // e1·e2·e3: states ⊤,0 and the 4 suffixes.
        let lits: Vec<Literal> = (0..3).map(|i| Literal::pos(SymbolId(i))).collect();
        let d = Expr::seq(lits.iter().map(|&l| Expr::lit(l)));
        let m = DependencyMachine::compile(&d);
        assert_eq!(m.state_count(), 5); // e1e2e3, e2e3, e3, ⊤, 0
        let mut s = m.initial;
        for &l in &lits {
            s = m.step(s, l);
        }
        assert!(m.is_accepting(s));
    }
}
