//! Hash-consed expression arena: the interned DAG representation of `E`.
//!
//! [`Expr`] is a deep tree of `Vec<Expr>`; every memo table keyed on it
//! hashes and clones whole subtrees. The arena interns each distinct
//! subterm exactly once and hands out a `Copy`-able [`ExprId`], so
//!
//! - structural equality and hashing are O(1) (id comparison),
//! - shared subterms cost nothing to "clone",
//! - memo caches for [`normalize`](ExprArena::normalize),
//!   [`residuate`](ExprArena::residuate) and
//!   [`satisfiable`](ExprArena::satisfiable) persist across calls — the
//!   second residuation of a scheduler state is a table lookup.
//!
//! The arena's smart constructors maintain the same canonical invariants
//! as [`Expr`]'s ([`Expr::seq`]/[`Expr::or`]/[`Expr::and`]): flattened
//! n-ary nodes, unit and annihilator collapse, sorted-and-deduplicated
//! `+`/`|` children (sorted by id rather than by tree order — the child
//! *multiset* is identical, so [`ExprArena::expr`] round-trips through the
//! tree constructors to the same canonical [`Expr`]). The tree
//! implementation stays as the reference oracle; the proptest suite in
//! `tests/arena_oracle.rs` checks agreement on random expressions.

use crate::expr::Expr;
use crate::fxhash::FxHashMap;
use crate::symbol::{Literal, SymbolId};
use std::collections::BTreeSet;

/// Interned handle to an expression in an [`ExprArena`].
///
/// Ids are only meaningful relative to the arena that produced them. Two
/// ids from the same arena are equal iff the expressions are structurally
/// equal (hash-consing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(u32);

impl ExprId {
    /// Dense index of this node, usable for side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned node: children are ids, not trees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Node {
    Zero,
    Top,
    Lit(Literal),
    Seq(Box<[ExprId]>),
    Or(Box<[ExprId]>),
    And(Box<[ExprId]>),
}

/// Per-node cached facts, computed once at interning time.
#[derive(Debug, Clone)]
struct Meta {
    /// Sorted, deduplicated symbols mentioned by the node (`Γ_E` modulo
    /// polarity).
    syms: Box<[SymbolId]>,
    /// `true` if no `+`/`|` occurs under `·` (precondition of R3/R7/R8).
    normal: bool,
}

/// A hash-consing arena for event expressions with persistent memo caches
/// for normalization, residuation and satisfiability.
#[derive(Debug, Clone)]
pub struct ExprArena {
    nodes: Vec<Node>,
    meta: Vec<Meta>,
    index: FxHashMap<Node, ExprId>,
    norm_cache: FxHashMap<ExprId, ExprId>,
    residue_cache: FxHashMap<(ExprId, Literal), ExprId>,
    sat_cache: FxHashMap<ExprId, bool>,
    sat_avoid_cache: FxHashMap<(ExprId, Literal), bool>,
}

impl Default for ExprArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ExprArena {
    /// The interned `0`.
    pub const ZERO: ExprId = ExprId(0);
    /// The interned `⊤`.
    pub const TOP: ExprId = ExprId(1);

    /// An arena holding only the constants `0` and `⊤`.
    pub fn new() -> ExprArena {
        let mut arena = ExprArena {
            nodes: Vec::new(),
            meta: Vec::new(),
            index: FxHashMap::default(),
            norm_cache: FxHashMap::default(),
            residue_cache: FxHashMap::default(),
            sat_cache: FxHashMap::default(),
            sat_avoid_cache: FxHashMap::default(),
        };
        let zero = arena.mk(Node::Zero);
        let top = arena.mk(Node::Top);
        debug_assert_eq!(zero, Self::ZERO);
        debug_assert_eq!(top, Self::TOP);
        arena
    }

    /// Number of distinct interned subterms.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if only the constants are interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    fn mk(&mut self, node: Node) -> ExprId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let meta = self.meta_of(&node);
        let id = ExprId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.nodes.push(node.clone());
        self.meta.push(meta);
        self.index.insert(node, id);
        id
    }

    fn meta_of(&self, node: &Node) -> Meta {
        match node {
            Node::Zero | Node::Top => Meta { syms: Box::new([]), normal: true },
            Node::Lit(l) => Meta { syms: Box::new([l.symbol()]), normal: true },
            Node::Seq(v) => Meta {
                syms: self.merge_syms(v),
                normal: v.iter().all(|&c| matches!(self.nodes[c.index()], Node::Lit(_))),
            },
            Node::Or(v) | Node::And(v) => Meta {
                syms: self.merge_syms(v),
                normal: v.iter().all(|&c| self.meta[c.index()].normal),
            },
        }
    }

    fn merge_syms(&self, kids: &[ExprId]) -> Box<[SymbolId]> {
        let mut syms: Vec<SymbolId> = Vec::new();
        for &c in kids {
            syms.extend_from_slice(&self.meta[c.index()].syms);
        }
        syms.sort_unstable();
        syms.dedup();
        syms.into_boxed_slice()
    }

    // ------------------------------------------------------------------
    // Smart constructors (mirror `Expr::{seq,or,and}` exactly).
    // ------------------------------------------------------------------

    /// The atom for literal `l`.
    pub fn lit(&mut self, l: Literal) -> ExprId {
        self.mk(Node::Lit(l))
    }

    /// Smart constructor for `E₁ · E₂ · …` (see [`Expr::seq`]).
    pub fn seq(&mut self, parts: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut out: Vec<ExprId> = Vec::new();
        for p in parts {
            match &self.nodes[p.index()] {
                Node::Zero => return Self::ZERO,
                Node::Top => {}
                Node::Seq(inner) => out.extend(inner.iter().copied()),
                _ => out.push(p),
            }
        }
        match out.len() {
            0 => Self::TOP,
            1 => out[0],
            _ => {
                // An all-literal sequence repeating a symbol denotes ∅.
                let mut syms = BTreeSet::new();
                for &p in &out {
                    match self.nodes[p.index()] {
                        Node::Lit(l) => {
                            if !syms.insert(l.symbol()) {
                                return Self::ZERO;
                            }
                        }
                        _ => break,
                    }
                }
                self.mk(Node::Seq(out.into_boxed_slice()))
            }
        }
    }

    /// Smart constructor for `E₁ + E₂ + …` (see [`Expr::or`]).
    pub fn or(&mut self, parts: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut out: Vec<ExprId> = Vec::new();
        for p in parts {
            match &self.nodes[p.index()] {
                Node::Zero => {}
                Node::Top => return Self::TOP,
                Node::Or(inner) => out.extend(inner.iter().copied()),
                _ => out.push(p),
            }
        }
        out.sort_unstable();
        out.dedup();
        match out.len() {
            0 => Self::ZERO,
            1 => out[0],
            _ => self.mk(Node::Or(out.into_boxed_slice())),
        }
    }

    /// Smart constructor for `E₁ | E₂ | …` (see [`Expr::and`]).
    pub fn and(&mut self, parts: impl IntoIterator<Item = ExprId>) -> ExprId {
        let mut out: Vec<ExprId> = Vec::new();
        for p in parts {
            match &self.nodes[p.index()] {
                Node::Top => {}
                Node::Zero => return Self::ZERO,
                Node::And(inner) => out.extend(inner.iter().copied()),
                _ => out.push(p),
            }
        }
        out.sort_unstable();
        out.dedup();
        // e | ē denotes ∅: complementary literals always sort adjacent.
        let mut lits: Vec<Literal> = out
            .iter()
            .filter_map(|&p| match self.nodes[p.index()] {
                Node::Lit(l) => Some(l),
                _ => None,
            })
            .collect();
        lits.sort_unstable();
        for w in lits.windows(2) {
            if w[0].is_complement_of(w[1]) {
                return Self::ZERO;
            }
        }
        match out.len() {
            0 => Self::TOP,
            1 => out[0],
            _ => self.mk(Node::And(out.into_boxed_slice())),
        }
    }

    // ------------------------------------------------------------------
    // Tree interchange.
    // ------------------------------------------------------------------

    /// Intern a tree expression. Children go through the arena smart
    /// constructors, so non-canonical trees are canonicalized on the way
    /// in (trees built via `Expr`'s own smart constructors are preserved
    /// structurally).
    pub fn intern(&mut self, e: &Expr) -> ExprId {
        match e {
            Expr::Zero => Self::ZERO,
            Expr::Top => Self::TOP,
            Expr::Lit(l) => self.lit(*l),
            Expr::Seq(v) => {
                let kids: Vec<ExprId> = v.iter().map(|p| self.intern(p)).collect();
                self.seq(kids)
            }
            Expr::Or(v) => {
                let kids: Vec<ExprId> = v.iter().map(|p| self.intern(p)).collect();
                self.or(kids)
            }
            Expr::And(v) => {
                let kids: Vec<ExprId> = v.iter().map(|p| self.intern(p)).collect();
                self.and(kids)
            }
        }
    }

    /// Materialize `id` back into a canonical tree [`Expr`]. Rebuilding
    /// through the tree smart constructors restores `Expr`'s child order
    /// for `+`/`|`, so `expr(intern(e)) == e` for canonical `e`.
    pub fn expr(&self, id: ExprId) -> Expr {
        match &self.nodes[id.index()] {
            Node::Zero => Expr::Zero,
            Node::Top => Expr::Top,
            Node::Lit(l) => Expr::Lit(*l),
            Node::Seq(v) => Expr::seq(v.iter().map(|&c| self.expr(c))),
            Node::Or(v) => Expr::or(v.iter().map(|&c| self.expr(c))),
            Node::And(v) => Expr::and(v.iter().map(|&c| self.expr(c))),
        }
    }

    // ------------------------------------------------------------------
    // Queries (O(1) via per-node meta).
    // ------------------------------------------------------------------

    /// `true` for the interned `0`.
    pub fn is_zero(&self, id: ExprId) -> bool {
        id == Self::ZERO
    }

    /// `true` for the interned `⊤`.
    pub fn is_top(&self, id: ExprId) -> bool {
        id == Self::TOP
    }

    /// The literal, if `id` is an atom.
    pub fn as_lit(&self, id: ExprId) -> Option<Literal> {
        match self.nodes[id.index()] {
            Node::Lit(l) => Some(l),
            _ => None,
        }
    }

    /// Sorted symbols mentioned by `id` (`Γ_E` modulo polarity).
    pub fn symbols(&self, id: ExprId) -> &[SymbolId] {
        &self.meta[id.index()].syms
    }

    /// `true` if `sym` (either polarity) is mentioned by `id`.
    pub fn mentions(&self, id: ExprId, sym: SymbolId) -> bool {
        self.meta[id.index()].syms.binary_search(&sym).is_ok()
    }

    /// `true` if `id` has no `+`/`|` under `·` (cached at intern time).
    pub fn is_normal(&self, id: ExprId) -> bool {
        self.meta[id.index()].normal
    }

    /// `Γ_E` as a sorted literal vector: both polarities of every
    /// mentioned symbol (agrees with [`Expr::gamma`] iteration order).
    pub fn alphabet(&self, id: ExprId) -> Vec<Literal> {
        self.meta[id.index()]
            .syms
            .iter()
            .flat_map(|&s| [Literal::pos(s), Literal::neg(s)])
            .collect()
    }

    // ------------------------------------------------------------------
    // Memoized algebra operations.
    // ------------------------------------------------------------------

    /// Normalize `id` into the `·`-over-`+`/`|`-free form required by the
    /// residuation rules. Already-normal nodes return themselves without a
    /// cache probe; results persist for the arena's lifetime.
    pub fn normalize(&mut self, id: ExprId) -> ExprId {
        if self.meta[id.index()].normal {
            return id;
        }
        if let Some(&n) = self.norm_cache.get(&id) {
            return n;
        }
        let n = match self.nodes[id.index()].clone() {
            Node::Zero | Node::Top | Node::Lit(_) => id,
            Node::Or(v) => {
                let kids: Vec<ExprId> = v.iter().map(|&c| self.normalize(c)).collect();
                self.or(kids)
            }
            Node::And(v) => {
                let kids: Vec<ExprId> = v.iter().map(|&c| self.normalize(c)).collect();
                self.and(kids)
            }
            Node::Seq(v) => {
                let mut acc = Self::TOP;
                for &c in v.iter() {
                    let nc = self.normalize(c);
                    acc = self.product(acc, nc);
                }
                acc
            }
        };
        self.norm_cache.insert(id, n);
        n
    }

    /// The normalized product `a · b` of two normal expressions,
    /// distributing `·` outward over `+` and `|` on either side (mirrors
    /// `norm::product`).
    fn product(&mut self, a: ExprId, b: ExprId) -> ExprId {
        match (self.nodes[a.index()].clone(), self.nodes[b.index()].clone()) {
            (Node::Zero, _) | (_, Node::Zero) => Self::ZERO,
            (Node::Top, _) => b,
            (_, Node::Top) => a,
            (Node::Or(xs), _) => {
                let kids: Vec<ExprId> = xs.iter().map(|&x| self.product(x, b)).collect();
                self.or(kids)
            }
            (_, Node::Or(ys)) => {
                let kids: Vec<ExprId> = ys.iter().map(|&y| self.product(a, y)).collect();
                self.or(kids)
            }
            (Node::And(xs), _) => {
                let kids: Vec<ExprId> = xs.iter().map(|&x| self.product(x, b)).collect();
                self.and(kids)
            }
            (_, Node::And(ys)) => {
                let kids: Vec<ExprId> = ys.iter().map(|&y| self.product(a, y)).collect();
                self.and(kids)
            }
            _ => self.seq([a, b]),
        }
    }

    /// Symbolic residuation `id / by` (rules R1–R8). Normalizes first if
    /// needed; the result is again normal. Memoized persistently on
    /// `(ExprId, Literal)`.
    pub fn residuate(&mut self, id: ExprId, by: Literal) -> ExprId {
        let n = self.normalize(id);
        self.residuate_normal(n, by)
    }

    /// Residuation on an id known to be normal.
    pub fn residuate_normal(&mut self, id: ExprId, by: Literal) -> ExprId {
        debug_assert!(self.meta[id.index()].normal);
        if let Some(&r) = self.residue_cache.get(&(id, by)) {
            return r;
        }
        let r = match self.nodes[id.index()].clone() {
            // R1: 0/e = 0.  R2: ⊤/e = ⊤.
            Node::Zero => Self::ZERO,
            Node::Top => Self::TOP,
            Node::Lit(l) => {
                if l == by {
                    Self::TOP // R3 with empty tail.
                } else if l.is_complement_of(by) {
                    Self::ZERO // R8 degenerate.
                } else {
                    id // R6.
                }
            }
            // R4/R5: distribute over + and |.
            Node::Or(v) => {
                let kids: Vec<ExprId> = v.iter().map(|&c| self.residuate_normal(c, by)).collect();
                self.or(kids)
            }
            Node::And(v) => {
                let kids: Vec<ExprId> = v.iter().map(|&c| self.residuate_normal(c, by)).collect();
                self.and(kids)
            }
            Node::Seq(v) => {
                if !self.mentions(id, by.symbol()) {
                    id // R6.
                } else if self.nodes[v[0].index()] == Node::Lit(by) {
                    // R3: (e·E)/e = E.
                    let tail: Vec<ExprId> = v[1..].to_vec();
                    self.seq(tail)
                } else {
                    Self::ZERO // R7/R8.
                }
            }
        };
        self.residue_cache.insert((id, by), r);
        r
    }

    /// Does some maximal completion from state `id` reach `⊤`? Mirrors
    /// [`crate::satisfiable`], memoized persistently per id.
    pub fn satisfiable(&mut self, id: ExprId) -> bool {
        let n = self.normalize(id);
        self.sat_rec(n)
    }

    fn sat_rec(&mut self, id: ExprId) -> bool {
        if id == Self::TOP {
            return true;
        }
        if id == Self::ZERO {
            return false;
        }
        if let Some(&r) = self.sat_cache.get(&id) {
            return r;
        }
        let syms: Vec<SymbolId> = self.meta[id.index()].syms.to_vec();
        let mut found = false;
        'outer: for s in syms {
            for lit in [Literal::pos(s), Literal::neg(s)] {
                let next = self.residuate_normal(id, lit);
                if self.sat_rec(next) {
                    found = true;
                    break 'outer;
                }
            }
        }
        self.sat_cache.insert(id, found);
        found
    }

    /// Like [`ExprArena::satisfiable`] with `avoid` forbidden from
    /// occurring. Mirrors [`crate::satisfiable_avoiding`]; memoized
    /// persistently on `(ExprId, Literal)`.
    pub fn satisfiable_avoiding(&mut self, id: ExprId, avoid: Literal) -> bool {
        let n = self.normalize(id);
        self.sat_avoid_rec(n, avoid)
    }

    fn sat_avoid_rec(&mut self, id: ExprId, avoid: Literal) -> bool {
        if id == Self::TOP {
            return true;
        }
        if id == Self::ZERO {
            return false;
        }
        if let Some(&r) = self.sat_avoid_cache.get(&(id, avoid)) {
            return r;
        }
        let syms: Vec<SymbolId> = self.meta[id.index()].syms.to_vec();
        let mut found = false;
        'outer: for s in syms {
            for lit in [Literal::pos(s), Literal::neg(s)] {
                if lit == avoid {
                    continue;
                }
                let next = self.residuate_normal(id, lit);
                if self.sat_avoid_rec(next, avoid) {
                    found = true;
                    break 'outer;
                }
            }
        }
        self.sat_avoid_cache.insert((id, avoid), found);
        found
    }

    /// `true` if every satisfying completion from state `id` contains
    /// `lit` (mirrors [`crate::requires`]).
    pub fn requires(&mut self, id: ExprId, lit: Literal) -> bool {
        self.satisfiable(id) && !self.satisfiable_avoiding(id, lit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::residue::{requires, residuate, satisfiable, satisfiable_avoiding};
    use crate::symbol::SymbolTable;
    use crate::{normalize, Expr};

    fn setup() -> (SymbolTable, Literal, Literal) {
        let mut t = SymbolTable::new();
        let e = t.event("e");
        let f = t.event("f");
        (t, e, f)
    }

    fn d_precedes(e: Literal, f: Literal) -> Expr {
        Expr::or([
            Expr::lit(e.complement()),
            Expr::lit(f.complement()),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
        ])
    }

    #[test]
    fn round_trips_canonical_trees() {
        let (mut t, e, f) = setup();
        let g = t.event("g");
        let cases = [
            Expr::Top,
            Expr::Zero,
            Expr::lit(e),
            d_precedes(e, f),
            Expr::or([Expr::lit(e.complement()), Expr::lit(f)]),
            Expr::and([Expr::lit(e), Expr::or([Expr::lit(f), Expr::lit(g.complement())])]),
            Expr::seq([Expr::lit(e), Expr::lit(f), Expr::lit(g)]),
        ];
        let mut arena = ExprArena::new();
        for c in cases {
            let id = arena.intern(&c);
            assert_eq!(arena.expr(id), c, "round trip of {c}");
        }
    }

    #[test]
    fn interning_is_hash_consed() {
        let (_, e, f) = setup();
        let mut arena = ExprArena::new();
        let a = arena.intern(&d_precedes(e, f));
        let b = arena.intern(&d_precedes(e, f));
        assert_eq!(a, b);
        let before = arena.len();
        let _ = arena.intern(&d_precedes(e, f));
        assert_eq!(arena.len(), before, "re-interning allocates nothing");
    }

    #[test]
    fn constructors_mirror_tree_invariants() {
        let (_, e, f) = setup();
        let mut arena = ExprArena::new();
        let le = arena.lit(e);
        let lne = arena.lit(e.complement());
        let lf = arena.lit(f);
        // e + 0 = e; e + ⊤ = ⊤; e|ē = 0; e·e = 0; ⊤ units drop.
        let ze = ExprArena::ZERO;
        assert_eq!(arena.or([ze, le]), le);
        assert_eq!(arena.or([ExprArena::TOP, le]), ExprArena::TOP);
        assert_eq!(arena.and([le, lne]), ExprArena::ZERO);
        assert_eq!(arena.seq([le, le]), ExprArena::ZERO);
        assert_eq!(arena.seq([ExprArena::TOP, lf, ExprArena::TOP]), lf);
        // Or is idempotent and order-insensitive.
        assert_eq!(arena.or([lf, le]), arena.or([le, lf]));
    }

    #[test]
    fn residuate_agrees_with_tree_on_paper_walks() {
        let (_, e, f) = setup();
        let d = d_precedes(e, f);
        let mut arena = ExprArena::new();
        let id = arena.intern(&d);
        for by in [e, e.complement(), f, f.complement()] {
            let r = arena.residuate(id, by);
            assert_eq!(arena.expr(r), residuate(&d, by), "D</{by}");
            // Second level of the walk.
            for by2 in [e, e.complement(), f, f.complement()] {
                let r2 = arena.residuate(r, by2);
                assert_eq!(arena.expr(r2), residuate(&residuate(&d, by), by2), "D</{by}/{by2}");
            }
        }
    }

    #[test]
    fn normalize_agrees_with_tree() {
        let (mut t, e, f) = setup();
        let g = t.event("g");
        // (e+f)·g needs distribution.
        let raw = Expr::Seq(vec![Expr::Or(vec![Expr::lit(e), Expr::lit(f)]), Expr::lit(g)]);
        let mut arena = ExprArena::new();
        let id = arena.intern(&raw);
        let n = arena.normalize(id);
        assert!(arena.is_normal(n));
        assert_eq!(arena.expr(n), normalize(&raw));
    }

    #[test]
    fn satisfiability_and_requires_agree_with_tree() {
        let (_, e, f) = setup();
        let d = d_precedes(e, f);
        let mut arena = ExprArena::new();
        let id = arena.intern(&d);
        assert_eq!(arena.satisfiable(id), satisfiable(&d));
        for lit in [e, e.complement(), f, f.complement()] {
            assert_eq!(arena.satisfiable_avoiding(id, lit), satisfiable_avoiding(&d, lit));
            assert_eq!(arena.requires(id, lit), requires(&d, lit));
            let r = arena.residuate(id, lit);
            let rt = residuate(&d, lit);
            assert_eq!(arena.satisfiable(r), satisfiable(&rt));
            for lit2 in [e, e.complement(), f, f.complement()] {
                assert_eq!(arena.requires(r, lit2), requires(&rt, lit2), "state {rt} req {lit2}");
            }
        }
    }

    #[test]
    fn memo_caches_persist_across_calls() {
        let (_, e, f) = setup();
        let mut arena = ExprArena::new();
        let id = arena.intern(&d_precedes(e, f));
        let r1 = arena.residuate(id, e);
        let nodes_after_first = arena.len();
        let r2 = arena.residuate(id, e);
        assert_eq!(r1, r2);
        assert_eq!(arena.len(), nodes_after_first, "memo hit allocates nothing");
    }

    #[test]
    fn alphabet_matches_gamma_order() {
        let (_, e, f) = setup();
        let d = d_precedes(e, f);
        let mut arena = ExprArena::new();
        let id = arena.intern(&d);
        let tree: Vec<Literal> = d.gamma().into_iter().collect();
        assert_eq!(arena.alphabet(id), tree);
    }
}
