//! The event algebra `E` (Section 3.1 of the paper).
//!
//! Expressions are built from event literals (`Γ`), the constants `0`
//! (unsatisfiable) and `⊤` (trivially satisfied), sequencing `E₁ · E₂`,
//! choice `E₁ + E₂` and conjunction `E₁ | E₂` (Syntax 1–4).
//!
//! [`Expr`] values built through the smart constructors maintain light
//! canonical invariants (flattened, unit-free, sorted n-ary `+`/`|` nodes)
//! so that structurally equal expressions compare equal; *semantic*
//! canonicalization (distribution into the normal form required by the
//! residuation rules) lives in [`crate::norm`].

use crate::symbol::{Literal, SymbolId, SymbolTable};
use std::collections::BTreeSet;
use std::fmt;

/// An event expression of the algebra `E`.
///
/// Invariants maintained by the smart constructors ([`Expr::seq`],
/// [`Expr::or`], [`Expr::and`]):
///
/// - `Seq`, `Or`, `And` vectors have length ≥ 2 and contain no nested node
///   of the same kind (flattening, by associativity);
/// - `Or` contains no `Zero`, never contains `Top` (it collapses), is
///   sorted and deduplicated (idempotence and commutativity of `+`);
/// - `And` contains no `Top`, never contains `Zero`, is sorted and
///   deduplicated; an `And` containing two complementary literals collapses
///   to `Zero` (no trace contains both `e` and `ē`);
/// - A `Seq` of literals mentioning the same *symbol* twice collapses to
///   `Zero` (no event instance occurs twice on a trace, Definition 1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// `0` — satisfied by no trace.
    Zero,
    /// `⊤` — satisfied by every trace.
    Top,
    /// An atom of `Γ`: an event or the complement of an event.
    Lit(Literal),
    /// `E₁ · E₂ · …` — sequencing: the trace splits into consecutive parts
    /// satisfying each factor in order.
    Seq(Vec<Expr>),
    /// `E₁ + E₂ + …` — choice: some disjunct is satisfied.
    Or(Vec<Expr>),
    /// `E₁ | E₂ | …` — conjunction: every conjunct is satisfied.
    And(Vec<Expr>),
}

impl Expr {
    /// The atom for literal `l`.
    pub fn lit(l: Literal) -> Expr {
        Expr::Lit(l)
    }

    /// The atom for the positive event of `sym`.
    pub fn event(sym: SymbolId) -> Expr {
        Expr::Lit(Literal::pos(sym))
    }

    /// The atom for the complement event of `sym`.
    pub fn comp(sym: SymbolId) -> Expr {
        Expr::Lit(Literal::neg(sym))
    }

    /// Smart constructor for `E₁ · E₂ · …`.
    ///
    /// Flattens nested sequences, drops `⊤` units (`E·⊤ = ⊤·E = E`, valid
    /// because satisfaction in `E` is closed under trace extension on both
    /// sides), annihilates on `0`, and collapses to `0` any all-literal
    /// sequence that mentions a symbol twice (such a sequence denotes no
    /// trace in `U_E`).
    pub fn seq(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out: Vec<Expr> = Vec::new();
        for p in parts {
            match p {
                Expr::Zero => return Expr::Zero,
                Expr::Top => {}
                Expr::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::Top,
            1 => out.pop().expect("len checked"),
            _ => {
                // An all-literal sequence repeating a symbol denotes ∅.
                let mut syms = BTreeSet::new();
                let mut all_lits = true;
                for p in &out {
                    match p {
                        Expr::Lit(l) => {
                            if !syms.insert(l.symbol()) {
                                return Expr::Zero;
                            }
                        }
                        _ => {
                            all_lits = false;
                            break;
                        }
                    }
                }
                let _ = all_lits;
                Expr::Seq(out)
            }
        }
    }

    /// Smart constructor for `E₁ + E₂ + …` (choice).
    pub fn or(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out: Vec<Expr> = Vec::new();
        for p in parts {
            match p {
                Expr::Zero => {}
                Expr::Top => return Expr::Top,
                Expr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        match out.len() {
            0 => Expr::Zero,
            1 => out.pop().expect("len checked"),
            _ => Expr::Or(out),
        }
    }

    /// Smart constructor for `E₁ | E₂ | …` (conjunction).
    pub fn and(parts: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out: Vec<Expr> = Vec::new();
        for p in parts {
            match p {
                Expr::Top => {}
                Expr::Zero => return Expr::Zero,
                Expr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        out.sort();
        out.dedup();
        // e | ē denotes ∅ (Example 1): detect complementary literal pairs.
        for w in out.windows(2) {
            if let (Expr::Lit(a), Expr::Lit(b)) = (&w[0], &w[1]) {
                if a.is_complement_of(*b) {
                    return Expr::Zero;
                }
            }
        }
        match out.len() {
            0 => Expr::Top,
            1 => out.pop().expect("len checked"),
            _ => Expr::And(out),
        }
    }

    /// Binary sequencing convenience: `self · rhs`.
    pub fn then(self, rhs: Expr) -> Expr {
        Expr::seq([self, rhs])
    }

    /// Binary choice convenience: `self + rhs`.
    pub fn plus(self, rhs: Expr) -> Expr {
        Expr::or([self, rhs])
    }

    /// Binary conjunction convenience: `self | rhs`.
    pub fn with(self, rhs: Expr) -> Expr {
        Expr::and([self, rhs])
    }

    /// `Γ_E`: the set of *symbols* whose events (or complements) `E`
    /// mentions.
    ///
    /// The paper defines `Γ_E` as the mentioned events *and their
    /// complements*; since that set is closed under complement it is fully
    /// described by the symbol set, which is what rule R6's side condition
    /// (`e, ē ∉ Γ_E`) inspects.
    pub fn symbols(&self) -> BTreeSet<SymbolId> {
        let mut acc = BTreeSet::new();
        self.collect_symbols(&mut acc);
        acc
    }

    fn collect_symbols(&self, acc: &mut BTreeSet<SymbolId>) {
        match self {
            Expr::Zero | Expr::Top => {}
            Expr::Lit(l) => {
                acc.insert(l.symbol());
            }
            Expr::Seq(v) | Expr::Or(v) | Expr::And(v) => {
                for p in v {
                    p.collect_symbols(acc);
                }
            }
        }
    }

    /// The set of literals syntactically present in `E` (without adding
    /// complements). `Γ_E` proper is this set closed under complement.
    pub fn literals(&self) -> BTreeSet<Literal> {
        let mut acc = BTreeSet::new();
        self.collect_literals(&mut acc);
        acc
    }

    fn collect_literals(&self, acc: &mut BTreeSet<Literal>) {
        match self {
            Expr::Zero | Expr::Top => {}
            Expr::Lit(l) => {
                acc.insert(*l);
            }
            Expr::Seq(v) | Expr::Or(v) | Expr::And(v) => {
                for p in v {
                    p.collect_literals(acc);
                }
            }
        }
    }

    /// `Γ_E` as a literal set: every mentioned literal plus its complement.
    pub fn gamma(&self) -> BTreeSet<Literal> {
        let mut acc = self.literals();
        let comps: Vec<Literal> = acc.iter().map(|l| l.complement()).collect();
        acc.extend(comps);
        acc
    }

    /// `true` if `sym` (either polarity) is mentioned in `E`.
    pub fn mentions(&self, sym: SymbolId) -> bool {
        match self {
            Expr::Zero | Expr::Top => false,
            Expr::Lit(l) => l.symbol() == sym,
            Expr::Seq(v) | Expr::Or(v) | Expr::And(v) => v.iter().any(|p| p.mentions(sym)),
        }
    }

    /// Count of nodes in the expression tree (a size measure for benches).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Zero | Expr::Top | Expr::Lit(_) => 1,
            Expr::Seq(v) | Expr::Or(v) | Expr::And(v) => {
                1 + v.iter().map(Expr::node_count).sum::<usize>()
            }
        }
    }

    /// `true` for `0`.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Zero)
    }

    /// `true` for `⊤`.
    pub fn is_top(&self) -> bool {
        matches!(self, Expr::Top)
    }

    /// Render with a symbol table's names (`~buy + book·pay`).
    pub fn display<'a>(&'a self, table: &'a SymbolTable) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, table: Some(table) }
    }
}

/// Display adaptor produced by [`Expr::display`].
pub struct ExprDisplay<'a> {
    expr: &'a Expr,
    table: Option<&'a SymbolTable>,
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        ExprDisplay { expr: self, table: None }.fmt(f)
    }
}

/// Binding strengths for parenthesization: `+` < `|` < `·` < atom.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Or(_) => 0,
        Expr::And(_) => 1,
        Expr::Seq(_) => 2,
        _ => 3,
    }
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn lit_str(l: Literal, table: Option<&SymbolTable>) -> String {
            match table {
                Some(t) => t.literal_name(l),
                None => l.to_string(),
            }
        }
        fn go(
            e: &Expr,
            table: Option<&SymbolTable>,
            parent: u8,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let prec = precedence(e);
            let paren = prec < parent;
            if paren {
                write!(f, "(")?;
            }
            match e {
                Expr::Zero => write!(f, "0")?,
                Expr::Top => write!(f, "T")?,
                Expr::Lit(l) => write!(f, "{}", lit_str(*l, table))?,
                Expr::Seq(v) => {
                    for (i, p) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, ".")?;
                        }
                        go(p, table, prec + 1, f)?;
                    }
                }
                Expr::Or(v) => {
                    for (i, p) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " + ")?;
                        }
                        go(p, table, prec + 1, f)?;
                    }
                }
                Expr::And(v) => {
                    for (i, p) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " | ")?;
                        }
                        go(p, table, prec + 1, f)?;
                    }
                }
            }
            if paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        go(self.expr, self.table, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::SymbolId;

    fn e() -> Expr {
        Expr::event(SymbolId(0))
    }
    fn f() -> Expr {
        Expr::event(SymbolId(1))
    }
    fn ne() -> Expr {
        Expr::comp(SymbolId(0))
    }

    #[test]
    fn or_drops_zero_and_collapses_top() {
        assert_eq!(Expr::or([Expr::Zero, e()]), e());
        assert_eq!(Expr::or([Expr::Top, e()]), Expr::Top);
        assert_eq!(Expr::or([] as [Expr; 0]), Expr::Zero);
    }

    #[test]
    fn and_drops_top_and_collapses_zero() {
        assert_eq!(Expr::and([Expr::Top, e()]), e());
        assert_eq!(Expr::and([Expr::Zero, e()]), Expr::Zero);
        assert_eq!(Expr::and([] as [Expr; 0]), Expr::Top);
    }

    #[test]
    fn and_of_complements_is_zero() {
        // [e | ē] = ∅ (Example 1).
        assert_eq!(Expr::and([e(), ne()]), Expr::Zero);
        assert_ne!(Expr::and([e(), f()]), Expr::Zero);
    }

    #[test]
    fn or_is_idempotent_and_sorted() {
        assert_eq!(Expr::or([e(), e()]), e());
        assert_eq!(Expr::or([f(), e()]), Expr::or([e(), f()]));
    }

    #[test]
    fn seq_drops_top_units_and_annihilates_on_zero() {
        assert_eq!(Expr::seq([Expr::Top, e(), Expr::Top]), e());
        assert_eq!(Expr::seq([e(), Expr::Zero]), Expr::Zero);
        assert_eq!(Expr::seq([] as [Expr; 0]), Expr::Top);
    }

    #[test]
    fn seq_flattens_nested() {
        let nested = Expr::seq([e(), Expr::seq([f(), ne()])]);
        // e·(f·ē) flattens; ē and e share a symbol → Zero.
        assert_eq!(nested, Expr::Zero);
        let ok = Expr::seq([e(), Expr::seq([f(), Expr::event(SymbolId(2))])]);
        assert!(matches!(&ok, Expr::Seq(v) if v.len() == 3));
    }

    #[test]
    fn seq_repeating_a_symbol_is_zero() {
        assert_eq!(Expr::seq([e(), e()]), Expr::Zero);
        assert_eq!(Expr::seq([e(), ne()]), Expr::Zero);
        assert_eq!(Expr::seq([e(), f(), e()]), Expr::Zero);
    }

    #[test]
    fn gamma_closes_under_complement() {
        let d = Expr::or([ne(), f()]);
        let g = d.gamma();
        assert!(g.contains(&Literal::pos(SymbolId(0))));
        assert!(g.contains(&Literal::neg(SymbolId(0))));
        assert!(g.contains(&Literal::pos(SymbolId(1))));
        assert!(g.contains(&Literal::neg(SymbolId(1))));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn symbols_and_mentions() {
        let d = Expr::seq([e(), f()]);
        assert_eq!(d.symbols().len(), 2);
        assert!(d.mentions(SymbolId(0)));
        assert!(d.mentions(SymbolId(1)));
        assert!(!d.mentions(SymbolId(2)));
    }

    #[test]
    fn display_uses_precedence() {
        // (ē + f̄ + e·f) — the D< dependency.
        let d = Expr::or([ne(), Expr::comp(SymbolId(1)), Expr::seq([e(), f()])]);
        let s = d.to_string();
        assert!(s.contains('+'), "{s}");
        assert!(s.contains('.'), "{s}");
        // Or under Seq gets parenthesized.
        let x = Expr::seq([Expr::or([e(), f()]), Expr::event(SymbolId(2))]);
        assert!(x.to_string().contains('('), "{x}");
    }

    #[test]
    fn node_count_counts_tree_nodes() {
        assert_eq!(e().node_count(), 1);
        assert_eq!(Expr::or([e(), f()]).node_count(), 3);
    }
}
