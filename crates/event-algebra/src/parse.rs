//! A small text syntax for event expressions.
//!
//! Grammar (lowest to highest binding):
//!
//! ```text
//! expr   := andexp ('+' andexp)*          choice
//! andexp := seqexp ('|' seqexp)*          conjunction
//! seqexp := atom ('.' atom)*              sequencing
//! atom   := '0' | 'T' | '~'? ident | '(' expr ')'
//! ident  := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! `~x` is the complement `x̄`. Identifiers are interned into the supplied
//! [`SymbolTable`], so parsing a workflow's dependencies one by one shares
//! symbols. Since `.` is the sequencing operator, agent-scoped event
//! names are written `agent::event` and intern as `agent.event` (matching
//! task-agent registration). This parser handles bare algebra expressions; the full workflow
//! specification language (events with attributes, Klein's primitives,
//! parameters) lives in the `speclang` crate and builds on the same
//! grammar.

use crate::expr::Expr;
use crate::symbol::SymbolTable;
use std::fmt;

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset at which the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an event-algebra expression, interning identifiers into `table`.
pub fn parse_expr(input: &str, table: &mut SymbolTable) -> Result<Expr, ParseError> {
    let mut p = Parser { input: input.as_bytes(), pos: 0, table };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    table: &'a mut SymbolTable,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, message: msg.to_owned() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut parts = vec![self.andexp()?];
        while self.eat(b'+') {
            parts.push(self.andexp()?);
        }
        Ok(Expr::or(parts))
    }

    fn andexp(&mut self) -> Result<Expr, ParseError> {
        let mut parts = vec![self.seqexp()?];
        while self.eat(b'|') {
            parts.push(self.seqexp()?);
        }
        Ok(Expr::and(parts))
    }

    fn seqexp(&mut self) -> Result<Expr, ParseError> {
        let mut parts = vec![self.atom()?];
        while self.eat(b'.') {
            parts.push(self.atom()?);
        }
        Ok(Expr::seq(parts))
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.expr()?;
                if !self.eat(b')') {
                    return Err(self.err("expected ')'"));
                }
                Ok(e)
            }
            Some(b'~') => {
                self.pos += 1;
                let name = self.ident()?;
                Ok(Expr::lit(self.table.complement_of(&name)))
            }
            Some(b'0') => {
                self.pos += 1;
                // Reject identifiers beginning with 0 (none are legal).
                Ok(Expr::Zero)
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                if name == "T" {
                    Ok(Expr::Top)
                } else {
                    Ok(Expr::lit(self.table.event(&name)))
                }
            }
            _ => Err(self.err("expected an atom: identifier, '~', '0', 'T' or '('")),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let mut name = String::new();
        loop {
            match self.input.get(self.pos) {
                Some(&c) if c.is_ascii_alphanumeric() || c == b'_' => {
                    name.push(c as char);
                    self.pos += 1;
                }
                // `agent::event` interns as `agent.event`.
                Some(b':') if self.input.get(self.pos + 1) == Some(&b':') => {
                    self.pos += 2;
                    name.push('.');
                }
                _ => break,
            }
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::equivalent_auto;

    fn p(s: &str) -> (Expr, SymbolTable) {
        let mut t = SymbolTable::new();
        let e = parse_expr(s, &mut t).unwrap_or_else(|err| panic!("{s}: {err}"));
        (e, t)
    }

    #[test]
    fn parses_klein_dependencies() {
        // D→ = ē + f.
        let (d, mut t) = p("~e + f");
        let e = t.event("e");
        let f = t.event("f");
        assert_eq!(d, Expr::or([Expr::lit(e.complement()), Expr::lit(f)]));
        // D< = ē + f̄ + e·f.
        let (d2, _) = p("~e + ~f + e.f");
        let expected = Expr::or([
            Expr::lit(e.complement()),
            Expr::lit(f.complement()),
            Expr::seq([Expr::lit(e), Expr::lit(f)]),
        ]);
        assert_eq!(d2, expected);
    }

    #[test]
    fn precedence_plus_lt_and_lt_seq() {
        let (a, _) = p("a + b | c.d");
        let (b, _) = p("a + (b | (c.d))");
        assert_eq!(a, b);
        let (c, _) = p("(a + b) | c");
        assert_ne!(a, c);
    }

    #[test]
    fn constants_parse() {
        assert_eq!(p("0").0, Expr::Zero);
        assert_eq!(p("T").0, Expr::Top);
        assert_eq!(p("T + x").0, Expr::Top);
    }

    #[test]
    fn parens_and_whitespace() {
        let (a, _) = p("  ( ~buy + book )  ");
        let (b, _) = p("~buy+book");
        assert!(equivalent_auto(&a, &b));
    }

    #[test]
    fn shared_table_shares_symbols() {
        let mut t = SymbolTable::new();
        let d1 = parse_expr("~e + f", &mut t).unwrap();
        let d2 = parse_expr("~f + g", &mut t).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(d1.symbols().intersection(&d2.symbols()).count(), 1);
    }

    #[test]
    fn errors_report_offsets() {
        let mut t = SymbolTable::new();
        let err = parse_expr("a + ", &mut t).unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(parse_expr("(a", &mut t).is_err());
        assert!(parse_expr("a b", &mut t).is_err());
        assert!(parse_expr("", &mut t).is_err());
        assert!(parse_expr("~", &mut t).is_err());
    }

    #[test]
    fn roundtrips_through_display() {
        for s in ["~e + f", "~e + ~f + e.f", "a | b + c.d.g", "(a + b).c"] {
            let mut t = SymbolTable::new();
            let e1 = parse_expr(s, &mut t).unwrap();
            let printed = e1.display(&t).to_string();
            let e2 = parse_expr(&printed, &mut t).unwrap();
            assert_eq!(e1, e2, "{s} -> {printed}");
        }
    }
}
