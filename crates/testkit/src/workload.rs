//! Open-loop multi-tenant workload generator.
//!
//! Produces the seeded [`Arrival`] streams the tenant engine
//! ([`dist::run_tenant`]) and its conformance audit consume: arrivals
//! with random interarrival gaps, a mixed template population drawn by
//! weight, per-instance network seeds, and heavy-tailed think-time
//! overrides on the driven free events. Everything is a pure function of
//! [`WorkloadConfig::seed`], so a workload names a reproducible fleet
//! the same way a seed names a reproducible run.
//!
//! Sampling sticks to integer ranges and coin flips so the generator
//! also runs against the offline RNG stub (`scripts/shadow-check.sh`);
//! the stub samples a different stream, so tests assert structural
//! properties of the workload, never exact values.

use dist::{Arrival, WorkflowSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim::Time;

/// Parameters of one generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of instances to admit.
    pub instances: u64,
    /// Master seed: arrivals, template picks, per-instance seeds and
    /// think times all derive from it.
    pub seed: u64,
    /// Mean interarrival gap on the fleet clock (gaps are uniform in
    /// `[0, 2 * mean_gap]`, so this is exact in expectation).
    pub mean_gap: Time,
    /// Scale of the heavy-tailed think times (the distribution's head).
    pub think_scale: Time,
    /// Cap on any single think time (the distribution's truncation).
    pub think_max: Time,
    /// Relative admission weight per template; empty means uniform.
    pub weights: Vec<u32>,
}

impl WorkloadConfig {
    /// A workload of `instances` arrivals from `seed`, with the default
    /// shape: mean gap 8 ticks, think scale 4, think cap 200, uniform
    /// template mix.
    pub fn new(instances: u64, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            instances,
            seed,
            mean_gap: 8,
            think_scale: 4,
            think_max: 200,
            weights: Vec::new(),
        }
    }
}

/// A template made drivable: every controllable free event that the
/// spec leaves unattempted (`attempt_after: None`, as
/// `core::WorkflowBuilder::from_spec` emits) is attempted at start.
/// Think-time overrides then move individual attempts later per
/// instance. Events the spec itself schedules keep their times.
pub fn drive(spec: &WorkflowSpec) -> WorkflowSpec {
    let mut out = spec.clone();
    for f in &mut out.free_events {
        if f.attrs.controllable && f.attempt_after.is_none() {
            f.attempt_after = Some(1);
        }
    }
    out
}

/// splitmix64: the per-instance seed derivation. Pure arithmetic (not
/// the workload RNG), so instance `i` of master seed `s` has the same
/// network seed under the real and stub RNGs.
fn instance_seed(master: u64, i: u64) -> u64 {
    let mut z = master ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate the arrival stream for `specs` (pass them through [`drive`]
/// first — think overrides only attach to driven free events).
///
/// Think times are heavy-tailed: `think_scale * 64 / u` for uniform
/// `u in [1, 64]`, truncated at `think_max` — a discrete Pareto-ish
/// tail, so most instances think briefly and a few think two orders of
/// magnitude longer, which is what keeps many instances concurrently
/// live in an open-loop fleet.
pub fn generate(specs: &[WorkflowSpec], config: &WorkloadConfig) -> Vec<Arrival> {
    assert!(!specs.is_empty(), "workload needs at least one template");
    if !config.weights.is_empty() {
        assert_eq!(config.weights.len(), specs.len(), "one weight per template");
        assert!(config.weights.iter().any(|&w| w > 0), "all-zero weights");
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let total_weight: u32 = config.weights.iter().sum();
    let mut at: Time = 0;
    let mut arrivals = Vec::with_capacity(config.instances as usize);
    for i in 0..config.instances {
        at += rng.random_range(0..=config.mean_gap.max(1) * 2);
        let spec_ix = if config.weights.is_empty() {
            rng.random_range(0..specs.len())
        } else {
            let mut r = rng.random_range(0..total_weight);
            config
                .weights
                .iter()
                .position(|&w| {
                    if r < w {
                        true
                    } else {
                        r -= w;
                        false
                    }
                })
                .expect("weights sum to total_weight")
        };
        let mut arrival = Arrival::new(i, spec_ix, at, instance_seed(config.seed, i));
        for f in &specs[spec_ix].free_events {
            // Half the driven events keep the template's schedule; the
            // other half get an instance-specific heavy-tailed delay.
            if f.attempt_after.is_some() && f.attrs.controllable && rng.random_bool(0.5) {
                let u = rng.random_range(1..=64u64);
                let think = (config.think_scale * 64 / u).clamp(1, config.think_max.max(1));
                arrival.think.push((f.lit, think));
            }
        }
        arrivals.push(arrival);
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;
    use agent::EventAttrs;
    use dist::FreeEventSpec;
    use event_algebra::{parse_expr, SymbolTable};
    use sim::SiteId;

    fn template(n: u32) -> WorkflowSpec {
        let mut table = SymbolTable::new();
        let mut deps = Vec::new();
        for i in 0..n.saturating_sub(1) {
            deps.push(
                parse_expr(&format!("~e{i} + ~e{} + e{i}.e{}", i + 1, i + 1), &mut table).unwrap(),
            );
        }
        let free_events = (0..n)
            .map(|i| FreeEventSpec {
                site: SiteId(i),
                lit: table.event(&format!("e{i}")),
                attrs: EventAttrs::controllable(),
                // As produced by the spec pipeline: not yet driven.
                attempt_after: None,
            })
            .collect();
        WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
    }

    #[test]
    fn drive_attempts_every_controllable_event() {
        let spec = drive(&template(4));
        assert!(spec.free_events.iter().all(|f| f.attempt_after == Some(1)));
        // Idempotent, and never touches already-scheduled events.
        let mut scheduled = spec.clone();
        scheduled.free_events[0].attempt_after = Some(77);
        assert_eq!(drive(&scheduled).free_events[0].attempt_after, Some(77));
    }

    #[test]
    fn workload_is_a_pure_function_of_its_seed() {
        let specs = [drive(&template(3)), drive(&template(5))];
        let cfg = WorkloadConfig::new(40, 0xFEED);
        let a = generate(&specs, &cfg);
        let b = generate(&specs, &cfg);
        assert_eq!(a, b);
        let c = generate(&specs, &WorkloadConfig::new(40, 0xFEED + 1));
        assert_ne!(a, c, "different seed, different fleet");
    }

    #[test]
    fn workload_is_structurally_sound() {
        let specs = [drive(&template(3)), drive(&template(5))];
        let mut cfg = WorkloadConfig::new(64, 7);
        cfg.weights = vec![3, 1];
        let arrivals = generate(&specs, &cfg);
        assert_eq!(arrivals.len(), 64);
        let mut last = 0;
        let mut seen = std::collections::BTreeSet::new();
        let mut population = [0usize; 2];
        for a in &arrivals {
            assert!(seen.insert(a.instance), "duplicate id {}", a.instance);
            assert!(a.at >= last, "arrivals out of order");
            last = a.at;
            population[a.spec_ix] += 1;
            for &(lit, t) in &a.think {
                assert!((1..=cfg.think_max).contains(&t), "think {t} out of range");
                assert!(specs[a.spec_ix].free_events.iter().any(|f| f.lit == lit));
            }
        }
        // 64 draws at 3:1 odds: both templates appear.
        assert!(population[0] > 0 && population[1] > 0, "{population:?}");
    }

    #[test]
    fn think_times_are_heavy_tailed() {
        let specs = [drive(&template(6))];
        let mut cfg = WorkloadConfig::new(128, 11);
        cfg.think_scale = 8;
        cfg.think_max = 1_000;
        let thinks: Vec<_> = generate(&specs, &cfg)
            .into_iter()
            .flat_map(|a| a.think.into_iter().map(|(_, t)| t))
            .collect();
        assert!(!thinks.is_empty());
        let head = thinks.iter().filter(|&&t| t <= cfg.think_scale * 2).count();
        let tail = thinks.iter().filter(|&&t| t >= cfg.think_scale * 16).count();
        // Most mass near the scale, but a real tail exists.
        assert!(head > thinks.len() / 3, "head too light: {head}/{}", thinks.len());
        assert!(tail > 0, "no tail at all");
    }
}
