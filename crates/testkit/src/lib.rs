//! Shared test/bench support: random dependency and workflow generators,
//! plus the canonical workload families used by the experiment harness.

#![warn(missing_docs)]

pub mod conformance;
pub mod workload;

use event_algebra::{Expr, Literal, SymbolId, SymbolTable};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded generator of random event-algebra expressions and workflows.
pub struct Gen {
    rng: SmallRng,
}

impl Gen {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Gen {
        Gen { rng: SmallRng::seed_from_u64(seed) }
    }

    /// A random literal over `syms`.
    pub fn literal(&mut self, syms: &[SymbolId]) -> Literal {
        let s = syms[self.rng.random_range(0..syms.len())];
        if self.rng.random_bool(0.5) {
            Literal::pos(s)
        } else {
            Literal::neg(s)
        }
    }

    /// A random expression over `syms` with at most `depth` operator
    /// levels. Sequences draw distinct symbols (repeated symbols collapse
    /// to `0` anyway).
    pub fn expr(&mut self, syms: &[SymbolId], depth: usize) -> Expr {
        if depth == 0 || self.rng.random_bool(0.3) {
            return match self.rng.random_range(0..10) {
                0 => Expr::Top,
                1 => Expr::Zero,
                _ => Expr::lit(self.literal(syms)),
            };
        }
        let arity = self.rng.random_range(2..=3);
        match self.rng.random_range(0..3) {
            0 => Expr::or((0..arity).map(|_| self.expr(syms, depth - 1))),
            1 => Expr::and((0..arity).map(|_| self.expr(syms, depth - 1))),
            _ => {
                // A sequence of distinct literals.
                let mut pool: Vec<SymbolId> = syms.to_vec();
                let mut parts = Vec::new();
                for _ in 0..arity.min(pool.len()) {
                    let ix = self.rng.random_range(0..pool.len());
                    let s = pool.swap_remove(ix);
                    let lit =
                        if self.rng.random_bool(0.5) { Literal::pos(s) } else { Literal::neg(s) };
                    parts.push(Expr::lit(lit));
                }
                Expr::seq(parts)
            }
        }
    }

    /// A random *satisfiable, non-trivial* dependency (resamples until the
    /// expression is neither `0` nor `⊤` and has a satisfying completion).
    pub fn dependency(&mut self, syms: &[SymbolId], depth: usize) -> Expr {
        loop {
            let e = self.expr(syms, depth);
            if !e.is_top() && !e.is_zero() && event_algebra::satisfiable(&e) {
                return e;
            }
        }
    }

    /// A random workflow: `n` dependencies over `syms`.
    pub fn workflow(&mut self, syms: &[SymbolId], n: usize, depth: usize) -> Vec<Expr> {
        (0..n).map(|_| self.dependency(syms, depth)).collect()
    }

    /// A random permutation of `0..n` (Fisher–Yates).
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.random_range(0..=i);
            v.swap(i, j);
        }
        v
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// `n` fresh symbols named `e0..` in a fresh table.
pub fn symbols(n: usize) -> (SymbolTable, Vec<SymbolId>) {
    let mut t = SymbolTable::new();
    let syms = (0..n).map(|i| t.intern(&format!("e{i}"))).collect();
    (t, syms)
}

/// Workload family: the chain dependency `e₁·e₂·…·eₙ` (strict pipeline).
pub fn chain(syms: &[SymbolId]) -> Expr {
    Expr::seq(syms.iter().map(|&s| Expr::lit(Literal::pos(s))))
}

/// Workload family: `n-1` Klein precedences forming a pipeline
/// (`e₁<e₂, e₂<e₃, …`) — the decomposed version of [`chain`].
pub fn klein_pipeline(syms: &[SymbolId]) -> Vec<Expr> {
    syms.windows(2)
        .map(|w| {
            let (a, b) = (Literal::pos(w[0]), Literal::pos(w[1]));
            Expr::or([
                Expr::lit(a.complement()),
                Expr::lit(b.complement()),
                Expr::seq([Expr::lit(a), Expr::lit(b)]),
            ])
        })
        .collect()
}

/// Workload family: a fan-out of arrows from a root (`r→e₁, r→e₂, …`).
pub fn arrow_fanout(root: SymbolId, leaves: &[SymbolId]) -> Vec<Expr> {
    leaves
        .iter()
        .map(|&l| Expr::or([Expr::lit(Literal::neg(root)), Expr::lit(Literal::pos(l))]))
        .collect()
}

/// Workload family: `k` independent Klein-arrow pairs over disjoint
/// symbols (`e₂ᵢ → e₂ᵢ₊₁`) — exercises the Theorem 2/4 independence fast
/// path when combined with `+`/`|`.
pub fn disjoint_arrows(syms: &[SymbolId]) -> Vec<Expr> {
    syms.chunks_exact(2)
        .map(|w| Expr::or([Expr::lit(Literal::neg(w[0])), Expr::lit(Literal::pos(w[1]))]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        let (_, syms) = symbols(4);
        let a: Vec<Expr> = {
            let mut g = Gen::new(9);
            (0..5).map(|_| g.expr(&syms, 3)).collect()
        };
        let b: Vec<Expr> = {
            let mut g = Gen::new(9);
            (0..5).map(|_| g.expr(&syms, 3)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn dependency_is_satisfiable_nontrivial() {
        let (_, syms) = symbols(4);
        let mut g = Gen::new(3);
        for _ in 0..20 {
            let d = g.dependency(&syms, 2);
            assert!(!d.is_top() && !d.is_zero());
            assert!(event_algebra::satisfiable(&d));
        }
    }

    #[test]
    fn workload_families_have_expected_shapes() {
        let (_, syms) = symbols(6);
        assert!(matches!(chain(&syms), Expr::Seq(_)));
        assert_eq!(klein_pipeline(&syms).len(), 5);
        assert_eq!(arrow_fanout(syms[0], &syms[1..]).len(), 5);
        assert_eq!(disjoint_arrows(&syms).len(), 3);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut g = Gen::new(1);
        let p = g.permutation(10);
        let mut q = p.clone();
        q.sort_unstable();
        assert_eq!(q, (0..10).collect::<Vec<_>>());
    }
}
