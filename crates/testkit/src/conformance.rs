//! Conformance harness for the distributed scheduler under faults.
//!
//! A *scenario* is a (workflow, fault plan, seed) triple. The driver runs
//! each scenario to quiescence on the simulated network and audits the
//! outcome against the protocol's promises:
//!
//! 1. **Guard safety** (Theorem 2): no guard-gated event occurred at a
//!    position of the realized trace where its *faithful* guard is false.
//! 2. **View consistency** (Section 6): no two actors associate the same
//!    global occurrence sequence number with different literals — the
//!    `□e`/`□ē` announcement streams never diverge.
//! 3. **Convergence**: the run reached true quiescence rather than
//!    exhausting its step budget.
//! 4. **Liveness** (opt-in, for statically clean workflows under healed
//!    fault plans): every dependency ends satisfied.
//! 5. **Determinism**: re-running the same triple reproduces the journal
//!    byte for byte.
//!
//! The audits deliberately re-derive everything from first principles —
//! guards are recompiled here and evaluated against the final trace with
//! the algebra's reference semantics, independent of whatever the actors
//! believed at runtime.
//!
//! When the run was made with the flight recorder on
//! (`ExecConfig::record`), a sixth audit runs over the captured trace:
//! **causal consistency** — every fact a guard evaluation or actor
//! consumed must be *established* by an `occurred` span that precedes the
//! consumer in the happens-before DAG (see `obs::causal_audit`).

use dist::{run_workflow_with_faults, ExecConfig, RunReport, WorkflowSpec};
use event_algebra::Literal;
use guard::{CompiledWorkflow, GuardScope};
use sim::{FaultPlan, Termination};
use std::collections::BTreeSet;

/// The outcome of one audited run.
#[derive(Debug)]
pub struct Conformance {
    /// Human-readable audit failures; empty iff the run conforms.
    pub failures: Vec<String>,
    /// The underlying run, for further inspection.
    pub report: RunReport,
}

impl Conformance {
    /// `true` when every audited property held.
    pub fn is_conformant(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The literals whose occurrences are guard-gated: positive, controllable
/// events. Immediate events (`abort`-style informs) and forced
/// complements occur without consulting a guard, so they are exempt from
/// the guard-safety audit (their safety is judged by dependency
/// satisfaction instead).
fn guard_gated(spec: &WorkflowSpec) -> BTreeSet<Literal> {
    let mut gated = BTreeSet::new();
    for a in &spec.agents {
        for ev in &a.agent.events {
            if ev.attrs.controllable {
                gated.insert(ev.literal);
            }
        }
    }
    for f in &spec.free_events {
        if f.attrs.controllable {
            gated.insert(f.lit);
        }
    }
    gated
}

/// Audit guard safety on a finished run: every guard-gated occurrence
/// must have its faithful (unweakened) guard true at its position in the
/// maximal trace. Returns the violations as `(literal, position)`.
pub fn audit_guards(spec: &WorkflowSpec, report: &RunReport) -> Vec<(Literal, usize)> {
    let compiled = CompiledWorkflow::compile(&spec.dependencies, GuardScope::Mentioning);
    let gated = guard_gated(spec);
    let mut violations = Vec::new();
    for (i, &lit) in report.maximal_trace.events().iter().enumerate() {
        if i >= report.trace.len() {
            break; // appended complements of unresolved symbols
        }
        if gated.contains(&lit) && !compiled.guard(lit).eval(&report.maximal_trace, i) {
            violations.push((lit, i));
        }
    }
    violations
}

/// Run one scenario to quiescence and audit it. `expect_live` additionally
/// demands `all_satisfied()` — set it for statically clean workflows under
/// fault plans whose partitions heal and whose crashed nodes restart.
pub fn check_run(
    spec: &WorkflowSpec,
    config: ExecConfig,
    plan: FaultPlan,
    expect_live: bool,
) -> Conformance {
    let report = run_workflow_with_faults(spec, config, plan);
    let mut failures = Vec::new();
    if report.termination != Termination::Quiescent {
        failures.push(format!("run exhausted its {} step budget without quiescing", report.steps));
    }
    for (lit, i) in audit_guards(spec, &report) {
        failures.push(format!(
            "guard safety violated: {} occurred at position {i} with a false guard",
            spec.table.literal_name(lit)
        ));
    }
    for &(seq, first, other) in &report.divergence {
        failures.push(format!(
            "view divergence at occurrence #{seq}: {} vs {}",
            spec.table.literal_name(first),
            spec.table.literal_name(other)
        ));
    }
    if expect_live && !report.all_satisfied() {
        let unsat: Vec<usize> =
            report.satisfied.iter().enumerate().filter_map(|(ix, &s)| (!s).then_some(ix)).collect();
        failures.push(format!(
            "liveness violated: dependencies {unsat:?} unsatisfied (unresolved: {:?}, parked: {:?})",
            report.unresolved, report.parked
        ));
    }
    if let Some(rec) = &report.recording {
        failures.extend(obs::causal_audit(rec));
    }
    Conformance { failures, report }
}

/// Run the same scenario twice and check the executions are identical:
/// byte-identical journals and equal traces. Returns failures (empty when
/// deterministic).
pub fn check_determinism(spec: &WorkflowSpec, config: ExecConfig, plan: FaultPlan) -> Vec<String> {
    let mut cfg = config;
    cfg.journal = true;
    let a = run_workflow_with_faults(spec, cfg, plan.clone());
    let b = run_workflow_with_faults(spec, cfg, plan);
    let mut failures = Vec::new();
    let ja: String = a
        .journal
        .iter()
        .map(|e| format!("{:>6} {}\n", e.time, e.kind.display(&spec.table)))
        .collect();
    let jb: String = b
        .journal
        .iter()
        .map(|e| format!("{:>6} {}\n", e.time, e.kind.display(&spec.table)))
        .collect();
    if ja != jb {
        failures.push("journals differ between identical runs".to_owned());
    }
    if a.trace.events() != b.trace.events() {
        failures.push("traces differ between identical runs".to_owned());
    }
    if a.duration != b.duration || a.steps != b.steps {
        failures.push(format!(
            "timing differs between identical runs: ({}, {}) vs ({}, {})",
            a.duration, a.steps, b.duration, b.steps
        ));
    }
    failures
}

/// The standard fault-plan matrix exercised by `scripts/check.sh
/// --faults`: each entry is a named plan derived from `fault_seed`. The
/// plans stay within what the hardened protocol tolerates (lossy but
/// fair links, healed partitions, crashed nodes that restart), so
/// liveness may be asserted under every one of them.
///
/// The `crash` plan kills node 0 at t=40 — a window that typically opens
/// *after* the first occurrences (attempts land around t=1, promise
/// rounds take a few 10–20-tick hops) — so the matrix exercises the
/// riskiest recovery path: rebuilding an already-occurred event from the
/// write-ahead log with its pre-crash sequence number intact.
pub fn standard_plans(fault_seed: u64) -> Vec<(&'static str, FaultPlan)> {
    use sim::{NodeId, SiteId};
    vec![
        ("clean", FaultPlan::new(fault_seed)),
        ("drop20", FaultPlan::new(fault_seed).drop_rate(0.2)),
        ("dup20", FaultPlan::new(fault_seed).duplicate_rate(0.2)),
        ("jitter", FaultPlan::new(fault_seed).jitter(0, 30)),
        ("partition", FaultPlan::new(fault_seed).partition(SiteId(0), SiteId(1), 20, 400)),
        ("crash", FaultPlan::new(fault_seed).crash(NodeId(0), 40, Some(300))),
        (
            "chaos",
            FaultPlan::new(fault_seed).drop_rate(0.2).duplicate_rate(0.2).jitter(0, 20).partition(
                SiteId(0),
                SiteId(1),
                20,
                400,
            ),
        ),
    ]
}

/// Exploration driver: run `spec` over the full `standard_plans` matrix
/// for every seed in `seeds`, with a determinism check per plan on the
/// first seed. Returns all failures, each prefixed with its scenario
/// coordinates.
pub fn explore(
    name: &str,
    spec: &WorkflowSpec,
    base: ExecConfig,
    seeds: std::ops::Range<u64>,
    expect_live: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    let first_seed = seeds.start;
    for seed in seeds {
        for (plan_name, plan) in standard_plans(seed ^ 0x5EED) {
            let mut config = base;
            config.sim.seed = seed;
            let run = check_run(spec, config, plan.clone(), expect_live);
            failures.extend(
                run.failures.into_iter().map(|f| format!("[{name}/{plan_name}/seed {seed}] {f}")),
            );
            if seed == first_seed {
                failures.extend(
                    check_determinism(spec, config, plan)
                        .into_iter()
                        .map(|f| format!("[{name}/{plan_name}/seed {seed}] {f}")),
                );
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use agent::EventAttrs;
    use event_algebra::{parse_expr, SymbolTable};
    use sim::SiteId;

    fn mutual_promise_spec() -> WorkflowSpec {
        let mut table = SymbolTable::new();
        let d1 = parse_expr("~e + f", &mut table).unwrap();
        let d2 = parse_expr("~f + e", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        WorkflowSpec {
            table,
            dependencies: vec![d1, d2],
            agents: vec![],
            free_events: vec![
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                dist::FreeEventSpec {
                    site: SiteId(1),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        }
    }

    #[test]
    fn clean_plan_on_clean_workflow_conforms() {
        let spec = mutual_promise_spec();
        let run = check_run(&spec, ExecConfig::seeded(7), FaultPlan::new(7), true);
        assert!(run.is_conformant(), "{:?}", run.failures);
        assert_eq!(run.report.trace.len(), 2);
    }

    #[test]
    fn faulty_plans_still_conform_with_reliability() {
        let spec = mutual_promise_spec();
        let mut config = ExecConfig::seeded(11);
        config.reliable = Some(dist::ReliableConfig::default());
        for (name, plan) in standard_plans(3) {
            let run = check_run(&spec, config, plan, true);
            assert!(run.is_conformant(), "{name}: {:?}", run.failures);
        }
    }

    #[test]
    fn determinism_holds_under_chaos() {
        let spec = mutual_promise_spec();
        let mut config = ExecConfig::seeded(5);
        config.reliable = Some(dist::ReliableConfig::default());
        let plan = standard_plans(9).pop().expect("chaos plan").1;
        assert_eq!(check_determinism(&spec, config, plan), Vec::<String>::new());
    }

    #[test]
    fn causal_audit_green_across_standard_plans() {
        // Pinned seed: every consumed fact in the flight-recorder DAG
        // must be established by an `occurred` span that happens-before
        // its consumer, under the whole fault matrix.
        let spec = mutual_promise_spec();
        let mut config = ExecConfig::seeded(13);
        config.reliable = Some(dist::ReliableConfig::default());
        config.record = Some(obs::RecordConfig::default());
        for (name, plan) in standard_plans(13) {
            let run = check_run(&spec, config, plan, true);
            assert!(run.is_conformant(), "{name}: {:?}", run.failures);
            let rec = run.report.recording.as_ref().expect("recording present");
            assert!(!rec.events.is_empty(), "{name}: recorder captured nothing");
            assert_eq!(rec.dropped, 0, "{name}: ring overflowed");
        }
    }

    #[test]
    fn guard_audit_flags_a_fabricated_violation() {
        // Build a report by hand whose trace violates e < f, then check
        // the auditor catches it (the real executor never produces this).
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        };
        let mut report = dist::run_workflow(&spec, ExecConfig::seeded(2));
        assert!(audit_guards(&spec, &report).is_empty(), "real run is safe");
        // Fabricate a bad trace: f before e violates f's guard `□e`.
        let bad = event_algebra::Trace::new([f, e]).unwrap();
        report.trace = bad.clone();
        report.maximal_trace = bad;
        // f fired before e, violating its `□e` guard; once the order is
        // broken, e's own guard (which demands it precede f) is false too.
        let violations = audit_guards(&spec, &report);
        assert!(violations.contains(&(f, 0)), "{violations:?}");
    }
}
