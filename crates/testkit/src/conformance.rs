//! Conformance harness for the distributed scheduler under faults.
//!
//! A *scenario* is a (workflow, fault plan, seed) triple. The driver runs
//! each scenario to quiescence on the simulated network and audits the
//! outcome against the protocol's promises:
//!
//! 1. **Guard safety** (Theorem 2): no guard-gated event occurred at a
//!    position of the realized trace where its *faithful* guard is false.
//! 2. **View consistency** (Section 6): no two actors associate the same
//!    global occurrence sequence number with different literals — the
//!    `□e`/`□ē` announcement streams never diverge.
//! 3. **Convergence**: the run reached true quiescence rather than
//!    exhausting its step budget.
//! 4. **Liveness** (opt-in, for statically clean workflows under healed
//!    fault plans): every dependency ends satisfied.
//! 5. **Determinism**: re-running the same triple reproduces the journal
//!    byte for byte.
//!
//! The audits deliberately re-derive everything from first principles —
//! guards are recompiled here and evaluated against the final trace with
//! the algebra's reference semantics, independent of whatever the actors
//! believed at runtime.
//!
//! When the run was made with the flight recorder on
//! (`ExecConfig::record`), a sixth audit runs over the captured trace:
//! **causal consistency** — every fact a guard evaluation or actor
//! consumed must be *established* by an `occurred` span that precedes the
//! consumer in the happens-before DAG (see `obs::causal_audit`).
//!
//! A seventh audit runs *online*: [`check_run`] arms the runtime
//! monitors (`monitor::WorkflowMonitor`) on every scenario. Unfaithful
//! guard and view-divergence alerts always fail, as does any
//! dependency-machine transition into `violated`/`at_risk` caused by a
//! real firing — that would be a guard-safety breach. A dependency the
//! finish sweep finds violated (never-fired events complement-closed,
//! stamped with node `u32::MAX`) is a *liveness* failure: it fails only
//! under `expect_live`, mirroring audit 4 — adversarial random
//! workflows may legitimately deadlock with everything parked. In every
//! case the monitor's final verdicts must agree with audit 4's
//! post-hoc satisfaction oracle. Stall alerts are advisory under fault
//! plans (a partitioned promise round *should* stall) and never fail
//! conformance.
//!
//! An eighth audit validates the static interference analyzer against
//! the realized schedule: for every *adjacent* pair of occurrences the
//! certified [`ShardPlan`] claims independent, transposing them must
//! leave every dependency machine in a byte-identical final state (the
//! □-view each actor derives) with unchanged acceptance — and the
//! occurrence set is preserved by construction. A pair whose
//! transposition changes any machine's destiny was *not* independent,
//! so the analyzer's certificate is falsified by a concrete schedule
//! race. [`audit_schedule_races_against`] takes the plan explicitly so
//! the mutation harness can inject a deliberately mis-classified pair
//! and prove the audit catches it.
//!
//! A ninth audit covers the multi-tenant engine:
//! [`audit_tenant_isolation`] runs a whole fleet through
//! [`dist::run_tenant`], then re-runs every instance *independently*
//! through the single-instance executor on the same (spec, seed, fault
//! plan) and demands byte-identical outcomes — same occurrences, same
//! timing, same termination honesty, same final `□`-views
//! ([`machine_views`]) and same online-monitor verdicts — plus zero
//! cross-instance transport/actor rejections and no phantom instance in
//! the shared write-ahead log. Sharing compiled machines, a multiplexer
//! and a WAL across tenants must be *unobservable* per tenant;
//! [`dist::TenantConfig::cross_wire`] is the mutation knob proving the
//! audit can fail.
//!
//! A tenth audit holds the work-stealing parallel runtime to the
//! deterministic simulator: [`audit_parallel_conformance`] runs the same
//! (spec, seed) on [`dist::run_workflow_parallel`] for every requested
//! worker count and on the single-queue oracle, and demands identical
//! occurrence sets, unresolved symbols, dependency verdicts, termination
//! honesty and final `□`-views ([`machine_views`]) — timing may differ
//! only through latency-RNG draw *order*, never through a lost or
//! reordered *fact*. All parallel runs must additionally be
//! byte-identical to each other across worker counts (the engine's
//! determinism guarantee), and the eighth audit's transposition check
//! re-runs over the parallel schedule as the safety net that catches a
//! forged [`ShardPlan`] independence claim. [`audit_parallel_fleet`] is
//! the fleet-scale variant, holding every instance of a
//! [`dist::run_parallel_fleet`] run to its isolated single-queue
//! baseline.
//!
//! An eleventh audit pins the *fused* monitor path to the legacy
//! sink-driven one: [`audit_monitor_equivalence`] runs the same (spec,
//! seed, fault plan) twice — once with the scheduler stepping the
//! monitors directly (`ExecConfig::monitor_oracle = false`, the
//! production default) and once with the monitors fed as an [`obs`]
//! event sink (the pre-fusion oracle) — and demands identical verdicts,
//! observation counters and violation-class alerts, byte for byte.
//! Stall alerts are compared as a multiset that ignores the alert's
//! `at` stamp: the sink oracle also sweeps its watchdogs on `CrashDrop`
//! spans (a delivery the network dropped on the floor, so no handler
//! runs and the fused path has no tick there), which can only shift
//! *when* an already-inevitable stall is stamped, never whether it
//! fires — the flagged set is identical because both paths perform the
//! same final sweep at quiescence.

use dist::{
    guard_gated, run_parallel_fleet, run_tenant, run_workflow_parallel, run_workflow_with_faults,
    Arrival, ExecConfig, ParallelFleetReport, ParallelRun, RunReport, TenantConfig, TenantReport,
    WorkflowSpec,
};
use event_algebra::{DependencyMachine, Literal, ShardPlan, StateId};
use guard::{CompiledWorkflow, GuardScope};
use sim::{FaultPlan, Termination};
use std::collections::BTreeMap;

/// The outcome of one audited run.
#[derive(Debug)]
pub struct Conformance {
    /// Human-readable audit failures; empty iff the run conforms.
    pub failures: Vec<String>,
    /// The underlying run, for further inspection.
    pub report: RunReport,
}

impl Conformance {
    /// `true` when every audited property held.
    pub fn is_conformant(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Audit guard safety on a finished run: every guard-gated occurrence
/// must have its faithful (unweakened) guard true at its position in the
/// maximal trace. Returns the violations as `(literal, position)`.
pub fn audit_guards(spec: &WorkflowSpec, report: &RunReport) -> Vec<(Literal, usize)> {
    let compiled = CompiledWorkflow::compile(&spec.dependencies, GuardScope::Mentioning);
    let gated = guard_gated(spec);
    let mut violations = Vec::new();
    for (i, &lit) in report.maximal_trace.events().iter().enumerate() {
        if i >= report.trace.len() {
            break; // appended complements of unresolved symbols
        }
        if gated.contains(&lit) && !compiled.guard(lit).eval(&report.maximal_trace, i) {
            violations.push((lit, i));
        }
    }
    violations
}

/// Final per-dependency machine states after replaying `events` from the
/// initial state — the □-view a correct actor derives from that delivery
/// order. Public because the tenant-isolation audit compares these views
/// between a fleet instance and its isolated baseline run.
pub fn machine_views(machines: &[DependencyMachine], events: &[Literal]) -> Vec<StateId> {
    machines.iter().map(|m| events.iter().fold(m.initial, |q, &l| m.step(q, l))).collect()
}

/// Audit the interference analyzer's independence claims against the
/// realized schedule: re-derive the [`ShardPlan`] from the spec's
/// dependencies and delegate to [`audit_schedule_races_against`].
pub fn audit_schedule_races(spec: &WorkflowSpec, report: &RunReport) -> Vec<String> {
    let areport = analyze::analyze_dependencies(
        &spec.dependencies,
        &spec.table,
        &analyze::AnalyzeOptions::default(),
    );
    match areport.shard_plan {
        Some(plan) => audit_schedule_races_against(spec, report, &plan),
        None => Vec::new(),
    }
}

/// Audit an explicit independence relation against the realized
/// schedule. For each adjacent pair of the maximal trace that `plan`
/// claims independent, transpose the two occurrences and replay every
/// dependency machine: the final states (□-views) and acceptance must be
/// byte-identical to the unpermuted run's, and the occurrence set is
/// identical by construction (a transposition permutes, never drops).
/// Any difference is a schedule race the analyzer failed to certify.
///
/// Taking `plan` as a parameter (rather than re-deriving it) lets the
/// mutation harness feed a falsified relation and prove detection.
pub fn audit_schedule_races_against(
    spec: &WorkflowSpec,
    report: &RunReport,
    plan: &ShardPlan,
) -> Vec<String> {
    let machines = DependencyMachine::compile_all(&spec.dependencies);
    let events = report.maximal_trace.events();
    let baseline = machine_views(&machines, events);
    let mut failures = Vec::new();
    let mut permuted = events.to_vec();
    for i in 0..events.len().saturating_sub(1) {
        let (a, b) = (events[i], events[i + 1]);
        if !plan.is_independent(a.symbol(), b.symbol()) {
            continue;
        }
        permuted.swap(i, i + 1);
        let swapped = machine_views(&machines, &permuted);
        permuted.swap(i, i + 1); // restore for the next window
        for (ix, (&q0, &q1)) in baseline.iter().zip(&swapped).enumerate() {
            if q0 != q1 || machines[ix].is_accepting(q0) != machines[ix].is_accepting(q1) {
                failures.push(format!(
                    "schedule race: transposing independent pair ({}, {}) at position {i} \
                     moves dependency {ix} from state {} to {} — the shard plan's \
                     independence claim is falsified by this schedule",
                    spec.table.literal_name(a),
                    spec.table.literal_name(b),
                    q0.0,
                    q1.0,
                ));
            }
        }
    }
    failures
}

/// Run one scenario to quiescence and audit it. `expect_live` additionally
/// demands `all_satisfied()` — set it for statically clean workflows under
/// fault plans whose partitions heal and whose crashed nodes restart.
pub fn check_run(
    spec: &WorkflowSpec,
    mut config: ExecConfig,
    plan: FaultPlan,
    expect_live: bool,
) -> Conformance {
    // Arm the online monitors on every audited scenario (unless the
    // caller configured them explicitly): the post-hoc audits below and
    // the online verdicts must agree.
    if config.monitor.is_none() {
        config.monitor = Some(monitor::MonitorConfig::default());
    }
    let report = run_workflow_with_faults(spec, config, plan);
    let mut failures = Vec::new();
    failures.extend(audit_schedule_races(spec, &report));
    if report.termination != Termination::Quiescent {
        failures.push(format!("run exhausted its {} step budget without quiescing", report.steps));
    }
    for (lit, i) in audit_guards(spec, &report) {
        failures.push(format!(
            "guard safety violated: {} occurred at position {i} with a false guard",
            spec.table.literal_name(lit)
        ));
    }
    for &(seq, first, other) in &report.divergence {
        failures.push(format!(
            "view divergence at occurrence #{seq}: {} vs {}",
            spec.table.literal_name(first),
            spec.table.literal_name(other)
        ));
    }
    if expect_live && !report.all_satisfied() {
        let unsat: Vec<usize> =
            report.satisfied.iter().enumerate().filter_map(|(ix, &s)| (!s).then_some(ix)).collect();
        failures.push(format!(
            "liveness violated: dependencies {unsat:?} unsatisfied (unresolved: {:?}, parked: {:?})",
            report.unresolved, report.parked
        ));
    }
    if let Some(rec) = &report.recording {
        failures.extend(obs::causal_audit(rec));
    }
    if let Some(mrep) = &report.monitor {
        for (ix, v) in mrep.verdicts.iter().enumerate() {
            let violated = *v == monitor::DepVerdict::Violated;
            // The online verdict and the post-hoc oracle must agree on
            // the maximal trace: a disagreement means one of the two
            // observers mis-stepped the algebra.
            if report.satisfied.get(ix).copied().unwrap_or(false) == violated {
                failures.push(format!(
                    "online monitor disagrees with the satisfaction oracle: \
                     dependency {ix} ended {} but the executor reports satisfied={}",
                    v.label(),
                    report.satisfied.get(ix).copied().unwrap_or(false),
                ));
            }
            if violated && expect_live {
                failures.push(format!("online monitor: dependency {ix} ended violated"));
            }
        }
        for a in &report.alerts {
            // Stalls are advisory: a partitioned promise round is
            // *supposed* to stall until the partition heals. A doomed
            // dependency flagged by the finish sweep (node == u32::MAX:
            // never-fired events complement-closed) is a liveness
            // failure, gated on `expect_live` like audit 4; the same
            // alert with a real node id means an actual firing killed
            // the dependency — a safety breach, always fatal.
            let fatal = match &a.kind {
                monitor::AlertKind::DepViolated { .. } | monitor::AlertKind::DepAtRisk { .. } => {
                    a.node != u32::MAX || expect_live
                }
                kind => kind.is_violation(),
            };
            if fatal {
                failures.push(format!(
                    "online monitor alert [{}] at t={}: {}",
                    a.kind.tag(),
                    a.at,
                    a.detail
                ));
            }
        }
    }
    Conformance { failures, report }
}

/// Mutation harness for the guard-faithfulness monitor: run `spec` with
/// its dependencies *stripped from the scheduler* (every guard compiles
/// to `⊤`, so events fire in arbitrary order — the executor analogue of a
/// broken guard synthesis) while the monitors still hold the original
/// dependencies. Returns the monitor's report on that unguarded run; a
/// spec whose dependencies actually constrain order must come back with
/// violated verdicts and unfaithful-guard alerts.
pub fn run_unguarded_monitored(spec: &WorkflowSpec, config: ExecConfig) -> monitor::MonitorReport {
    let mutated = WorkflowSpec {
        table: spec.table.clone(),
        dependencies: Vec::new(),
        agents: spec.agents.clone(),
        free_events: spec.free_events.clone(),
    };
    let mut cfg = config.clone();
    cfg.record = Some(obs::RecordConfig::default());
    cfg.monitor = None; // the run's own monitors would see no dependencies
    let report = dist::run_workflow(&mutated, cfg);
    let rec = report.recording.expect("recording was configured");
    monitor::replay(
        &rec.events,
        &spec.table,
        &spec.dependencies,
        guard_gated(spec),
        config.monitor.unwrap_or_default(),
    )
}

/// Run the same scenario twice and check the executions are identical:
/// byte-identical journals and equal traces. Returns failures (empty when
/// deterministic).
pub fn check_determinism(spec: &WorkflowSpec, config: ExecConfig, plan: FaultPlan) -> Vec<String> {
    let mut cfg = config;
    cfg.journal = true;
    let a = run_workflow_with_faults(spec, cfg.clone(), plan.clone());
    let b = run_workflow_with_faults(spec, cfg, plan);
    let mut failures = Vec::new();
    let ja: String = a
        .journal
        .iter()
        .map(|e| format!("{:>6} {}\n", e.time, e.kind.display(&spec.table)))
        .collect();
    let jb: String = b
        .journal
        .iter()
        .map(|e| format!("{:>6} {}\n", e.time, e.kind.display(&spec.table)))
        .collect();
    if ja != jb {
        failures.push("journals differ between identical runs".to_owned());
    }
    if a.trace.events() != b.trace.events() {
        failures.push("traces differ between identical runs".to_owned());
    }
    if a.duration != b.duration || a.steps != b.steps {
        failures.push(format!(
            "timing differs between identical runs: ({}, {}) vs ({}, {})",
            a.duration, a.steps, b.duration, b.steps
        ));
    }
    failures
}

/// The ninth audit: tenant isolation. Run the fleet, then re-run every
/// arrival independently through the single-instance executor (same
/// specialized spec, same seed, same fault plan) and compare:
///
/// - **Occurrences**: literal, virtual time and global sequence of every
///   event, exactly equal.
/// - **Timing and honesty**: duration, delivery count and
///   [`Termination`] equal — a fleet must not silently upgrade a
///   budget-exhausted instance.
/// - **`□`-views**: replaying both maximal traces through the
///   dependency machines ([`machine_views`]) lands in identical states,
///   and neither side reports internal view divergence.
/// - **Monitor verdicts**: when monitors are armed, per-dependency
///   final verdicts agree.
/// - **No cross-instance traffic**: the transport's foreign-envelope
///   and the actors' foreign-announcement counters are zero fleet-wide.
/// - **WAL hygiene**: the shared write-ahead log holds slices only for
///   admitted instances (no phantom tenants).
///
/// Returns the failures (empty iff isolation held) with the fleet
/// report for further inspection.
pub fn audit_tenant_isolation(
    specs: &[WorkflowSpec],
    arrivals: &[Arrival],
    config: &TenantConfig,
) -> (Vec<String>, TenantReport) {
    let report = run_tenant(specs, arrivals, config);
    let mut failures = Vec::new();
    if report.cross_instance_dropped > 0 {
        failures.push(format!(
            "transport dropped {} foreign envelope(s): instance traffic crossed an \
             InstanceId boundary",
            report.cross_instance_dropped
        ));
    }
    if report.cross_instance_rejected > 0 {
        failures.push(format!(
            "actors rejected {} foreign announcement(s): instance facts crossed an \
             InstanceId boundary",
            report.cross_instance_rejected
        ));
    }
    if let Some(wal) = &report.wal {
        let known: std::collections::BTreeSet<_> = arrivals.iter().map(|a| a.instance).collect();
        for i in wal.instances() {
            if !known.contains(&i) {
                failures.push(format!("write-ahead log holds a slice for phantom instance {i}"));
            }
        }
    }
    let by_instance: BTreeMap<_, _> = report.instances.iter().map(|o| (o.instance, o)).collect();
    for a in arrivals {
        let Some(o) = by_instance.get(&a.instance) else {
            failures.push(format!("instance {} was admitted but never reported", a.instance));
            continue;
        };
        let spec = a.apply_to_spec(&specs[a.spec_ix]);
        let solo = match &config.plan {
            Some(plan) => run_workflow_with_faults(&spec, config.instance_exec(a), plan.clone()),
            None => dist::run_workflow(&spec, config.instance_exec(a)),
        };
        let tag = format!("instance {}", a.instance);
        if o.report.occurrences != solo.occurrences {
            failures.push(format!(
                "{tag}: occurrences diverge from the isolated baseline: fleet {:?} vs solo {:?}",
                o.report.occurrences, solo.occurrences
            ));
        }
        if o.report.termination != solo.termination
            || o.report.steps != solo.steps
            || o.report.duration != solo.duration
        {
            failures.push(format!(
                "{tag}: timing/termination diverge: fleet ({:?}, {} steps, t={}) vs \
                 solo ({:?}, {} steps, t={})",
                o.report.termination,
                o.report.steps,
                o.report.duration,
                solo.termination,
                solo.steps,
                solo.duration
            ));
        }
        for (side, rep) in [("fleet", &o.report), ("solo", &solo)] {
            if !rep.divergence.is_empty() {
                failures.push(format!("{tag}: {side} run has internal view divergence"));
            }
        }
        let machines = DependencyMachine::compile_all(&spec.dependencies);
        let fleet_views = machine_views(&machines, o.report.maximal_trace.events());
        let solo_views = machine_views(&machines, solo.maximal_trace.events());
        if fleet_views != solo_views {
            failures.push(format!(
                "{tag}: final □-views diverge: fleet {fleet_views:?} vs solo {solo_views:?}"
            ));
        }
        match (&o.report.monitor, &solo.monitor) {
            (Some(fm), Some(sm)) if fm.verdicts != sm.verdicts => {
                failures.push(format!(
                    "{tag}: monitor verdicts diverge: fleet {:?} vs solo {:?}",
                    fm.verdicts, sm.verdicts
                ));
            }
            (Some(_), None) | (None, Some(_)) => {
                failures.push(format!("{tag}: monitors armed on one side only"));
            }
            _ => {}
        }
    }
    (failures, report)
}

/// Shared core of the parallel audits: compare a parallel run's logical
/// results against the single-queue oracle's. `tag` prefixes failures.
fn diff_parallel_vs_oracle(
    spec: &WorkflowSpec,
    tag: &str,
    par: &RunReport,
    oracle: &RunReport,
) -> Vec<String> {
    let mut failures = Vec::new();
    let lits = |r: &RunReport| -> std::collections::BTreeSet<Literal> {
        r.occurrences.iter().map(|&(l, _, _)| l).collect()
    };
    if lits(par) != lits(oracle) {
        failures.push(format!(
            "{tag}: occurrence sets diverge: parallel {:?} vs oracle {:?}",
            lits(par),
            lits(oracle)
        ));
    }
    if par.unresolved != oracle.unresolved {
        failures.push(format!(
            "{tag}: unresolved symbols diverge: parallel {:?} vs oracle {:?}",
            par.unresolved, oracle.unresolved
        ));
    }
    if par.satisfied != oracle.satisfied {
        failures.push(format!(
            "{tag}: dependency verdicts diverge: parallel {:?} vs oracle {:?}",
            par.satisfied, oracle.satisfied
        ));
    }
    if par.termination != oracle.termination {
        failures.push(format!(
            "{tag}: termination honesty diverges: parallel {:?} vs oracle {:?}",
            par.termination, oracle.termination
        ));
    }
    for (side, rep) in [("parallel", par), ("oracle", oracle)] {
        if !rep.divergence.is_empty() {
            failures.push(format!(
                "{tag}: {side} run has internal view divergence: {:?}",
                rep.divergence
            ));
        }
    }
    let machines = DependencyMachine::compile_all(&spec.dependencies);
    let par_views = machine_views(&machines, par.maximal_trace.events());
    let oracle_views = machine_views(&machines, oracle.maximal_trace.events());
    if par_views != oracle_views {
        failures.push(format!(
            "{tag}: final □-views diverge: parallel {par_views:?} vs oracle {oracle_views:?}"
        ));
    }
    failures
}

/// The tenth audit: parallel conformance. Run `spec` on the
/// work-stealing parallel executor once per entry of `workers`, and once
/// on the single-queue simulator (the oracle), all from the same
/// `config`. Demands, for every worker count:
///
/// - **Logical identity with the oracle**: same occurrence *set*, same
///   unresolved symbols, same per-dependency verdicts, same
///   [`Termination`], no internal view divergence on either side, and
///   identical final `□`-views under [`machine_views`]. (Timestamps and
///   delivery sequences may differ: the parallel runtime samples
///   latency statelessly per send, not from the oracle's serial RNG.)
/// - **Worker-count determinism**: every parallel run is byte-identical
///   — occurrences with timestamps and sequences, duration, step count —
///   to the first one.
/// - **No schedule races**: the eighth audit's transposition check over
///   the *parallel* schedule, both against the analyzer-derived plan
///   ([`audit_schedule_races`]) and against the plan that actually keyed
///   the shards — the safety net for forged independence claims.
///
/// Returns the failures (empty iff conformant) and the last parallel
/// run for inspection.
pub fn audit_parallel_conformance(
    spec: &WorkflowSpec,
    config: &ExecConfig,
    workers: &[usize],
) -> (Vec<String>, ParallelRun) {
    assert!(!workers.is_empty(), "at least one worker count to audit");
    let mut oracle_cfg = config.clone();
    oracle_cfg.parallel = None;
    let oracle = dist::run_workflow(spec, oracle_cfg);
    let mut failures = Vec::new();
    // (workers, occurrences, duration, steps) of the first parallel run —
    // the byte-level determinism baseline the other counts must match.
    type Baseline = (usize, Vec<(Literal, sim::Time, u64)>, sim::Time, u64);
    let mut baseline: Option<Baseline> = None;
    let mut last: Option<ParallelRun> = None;
    for &w in workers {
        let mut par_cfg = config.clone();
        par_cfg.parallel = Some(sim::ParallelConfig::new(w));
        let run = run_workflow_parallel(spec, &par_cfg);
        let tag = format!("{w} worker(s)");
        failures.extend(diff_parallel_vs_oracle(spec, &tag, &run.report, &oracle));
        failures.extend(
            audit_schedule_races(spec, &run.report).into_iter().map(|f| format!("{tag}: {f}")),
        );
        failures.extend(
            audit_schedule_races_against(spec, &run.report, &run.plan)
                .into_iter()
                .map(|f| format!("{tag} (shard-keying plan): {f}")),
        );
        match &baseline {
            Some((bw, occ, dur, steps)) => {
                if run.report.occurrences != *occ
                    || run.report.duration != *dur
                    || run.report.steps != *steps
                {
                    failures.push(format!(
                        "{tag}: results differ from the {bw}-worker run — the parallel \
                         engine broke its worker-count determinism guarantee"
                    ));
                }
            }
            None => {
                baseline = Some((
                    w,
                    run.report.occurrences.clone(),
                    run.report.duration,
                    run.report.steps,
                ));
            }
        }
        last = Some(run);
    }
    (failures, last.expect("workers is non-empty"))
}

/// Fleet-scale tenth audit: run a whole fleet through
/// [`dist::run_parallel_fleet`] and hold every instance to its isolated
/// single-queue baseline (same specialized spec, same seed), with the
/// same logical-identity contract as [`audit_parallel_conformance`] —
/// occurrence sets, unresolved symbols, verdicts and final `□`-views;
/// fleet-clock timestamps are instance-relative only in duration, so
/// timing is not compared.
pub fn audit_parallel_fleet(
    specs: &[WorkflowSpec],
    arrivals: &[Arrival],
    config: &ExecConfig,
) -> (Vec<String>, ParallelFleetReport) {
    let fleet = run_parallel_fleet(specs, arrivals, config);
    let mut failures = Vec::new();
    for (a, o) in arrivals.iter().zip(&fleet.instances) {
        let spec = a.apply_to_spec(&specs[a.spec_ix]);
        let mut solo_cfg = config.clone();
        solo_cfg.sim.seed = a.seed;
        solo_cfg.parallel = None;
        solo_cfg.journal = false;
        solo_cfg.record = None;
        solo_cfg.monitor = None;
        let solo = dist::run_workflow(&spec, solo_cfg);
        let tag = format!("instance {}", a.instance);
        failures.extend(diff_parallel_vs_oracle(&spec, &tag, &o.report, &solo));
    }
    (failures, fleet)
}

/// The eleventh audit: fused-monitor equivalence. Run the same
/// scenario twice — fused stepping (the production default) and the
/// legacy sink-driven oracle (`monitor_oracle = true`) — and compare
/// the two monitor reports:
///
/// - **Run identity** first: monitors are passive observers, so the
///   occurrence streams of the two runs must be byte-identical —
///   otherwise the comparison below would be vacuous.
/// - **Verdicts**, **observation counters** (`facts`,
///   `guard_checks`, `cross_shard_divergence`) and **violation-class
///   alerts** exactly, including timestamps.
/// - **Stall alerts** as a multiset over (kind, node, detail),
///   ignoring `at`: the sink oracle sweeps on `CrashDrop` spans where
///   no handler (and hence no fused tick) runs, which can stamp an
///   inevitable stall a little earlier but never changes the flagged
///   set (see the module docs).
pub fn audit_monitor_equivalence(
    spec: &WorkflowSpec,
    base: &ExecConfig,
    plan: &FaultPlan,
) -> Vec<String> {
    let mut fused_cfg = base.clone();
    if fused_cfg.monitor.is_none() {
        fused_cfg.monitor = Some(monitor::MonitorConfig::default());
    }
    fused_cfg.monitor_oracle = false;
    let mut oracle_cfg = fused_cfg.clone();
    oracle_cfg.monitor_oracle = true;
    let fused = run_workflow_with_faults(spec, fused_cfg, plan.clone());
    let oracle = run_workflow_with_faults(spec, oracle_cfg, plan.clone());
    let mut failures = Vec::new();
    if fused.occurrences != oracle.occurrences {
        failures.push(format!(
            "runs diverged before the monitors could be compared: fused {:?} vs oracle {:?}",
            fused.occurrences, oracle.occurrences
        ));
        return failures;
    }
    let (Some(fm), Some(om)) = (&fused.monitor, &oracle.monitor) else {
        failures.push("monitor report missing on at least one side".to_owned());
        return failures;
    };
    if fm.verdicts != om.verdicts {
        failures.push(format!(
            "fused and sink-driven monitors disagree on verdicts: {:?} vs {:?}",
            fm.verdicts, om.verdicts
        ));
    }
    if (fm.facts, fm.guard_checks) != (om.facts, om.guard_checks) {
        failures.push(format!(
            "observation counters diverge: fused ({} facts, {} guard checks) vs \
             oracle ({} facts, {} guard checks)",
            fm.facts, fm.guard_checks, om.facts, om.guard_checks
        ));
    }
    if fm.cross_shard_divergence != om.cross_shard_divergence {
        failures.push(format!(
            "cross-shard divergence counters diverge: fused {} vs oracle {}",
            fm.cross_shard_divergence, om.cross_shard_divergence
        ));
    }
    let violations = |m: &monitor::MonitorReport| -> Vec<monitor::Alert> {
        m.alerts.iter().filter(|a| a.kind.is_violation()).cloned().collect()
    };
    let (fv, ov) = (violations(fm), violations(om));
    if fv != ov {
        failures.push(format!("violation-class alerts diverge: fused {fv:?} vs oracle {ov:?}"));
    }
    // Stall alerts: multiset keyed by everything except `at`. The
    // detail string embeds the round's *open* time, which both paths
    // observe identically — only the sweep stamp may shift.
    let stalls = |m: &monitor::MonitorReport| -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for a in m.alerts.iter().filter(|a| !a.kind.is_violation()) {
            *counts
                .entry(format!("[{}] node {}: {}", a.kind.tag(), a.node, a.detail))
                .or_insert(0) += 1;
        }
        counts
    };
    let (fs, os) = (stalls(fm), stalls(om));
    if fs != os {
        failures.push(format!(
            "stall-alert sets diverge (compared modulo timestamp): fused {fs:?} vs oracle {os:?}"
        ));
    }
    failures
}

/// The standard fault-plan matrix exercised by `scripts/check.sh
/// --faults`: each entry is a named plan derived from `fault_seed`. The
/// plans stay within what the hardened protocol tolerates (lossy but
/// fair links, healed partitions, crashed nodes that restart), so
/// liveness may be asserted under every one of them.
///
/// The `crash` plan kills node 0 at t=40 — a window that typically opens
/// *after* the first occurrences (attempts land around t=1, promise
/// rounds take a few 10–20-tick hops) — so the matrix exercises the
/// riskiest recovery path: rebuilding an already-occurred event from the
/// write-ahead log with its pre-crash sequence number intact.
pub fn standard_plans(fault_seed: u64) -> Vec<(&'static str, FaultPlan)> {
    use sim::{NodeId, SiteId};
    vec![
        ("clean", FaultPlan::new(fault_seed)),
        ("drop20", FaultPlan::new(fault_seed).drop_rate(0.2)),
        ("dup20", FaultPlan::new(fault_seed).duplicate_rate(0.2)),
        ("jitter", FaultPlan::new(fault_seed).jitter(0, 30)),
        ("partition", FaultPlan::new(fault_seed).partition(SiteId(0), SiteId(1), 20, 400)),
        ("crash", FaultPlan::new(fault_seed).crash(NodeId(0), 40, Some(300))),
        (
            "chaos",
            FaultPlan::new(fault_seed).drop_rate(0.2).duplicate_rate(0.2).jitter(0, 20).partition(
                SiteId(0),
                SiteId(1),
                20,
                400,
            ),
        ),
    ]
}

/// Exploration driver: run `spec` over the full `standard_plans` matrix
/// for every seed in `seeds`, with a determinism check per plan on the
/// first seed. Returns all failures, each prefixed with its scenario
/// coordinates.
pub fn explore(
    name: &str,
    spec: &WorkflowSpec,
    base: ExecConfig,
    seeds: std::ops::Range<u64>,
    expect_live: bool,
) -> Vec<String> {
    let mut failures = Vec::new();
    let first_seed = seeds.start;
    for seed in seeds {
        for (plan_name, plan) in standard_plans(seed ^ 0x5EED) {
            let mut config = base.clone();
            config.sim.seed = seed;
            let run = check_run(spec, config.clone(), plan.clone(), expect_live);
            failures.extend(
                run.failures.into_iter().map(|f| format!("[{name}/{plan_name}/seed {seed}] {f}")),
            );
            if seed == first_seed {
                failures.extend(
                    check_determinism(spec, config, plan)
                        .into_iter()
                        .map(|f| format!("[{name}/{plan_name}/seed {seed}] {f}")),
                );
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use agent::EventAttrs;
    use event_algebra::{parse_expr, SymbolTable};
    use sim::SiteId;

    fn mutual_promise_spec() -> WorkflowSpec {
        let mut table = SymbolTable::new();
        let d1 = parse_expr("~e + f", &mut table).unwrap();
        let d2 = parse_expr("~f + e", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        WorkflowSpec {
            table,
            dependencies: vec![d1, d2],
            agents: vec![],
            free_events: vec![
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                dist::FreeEventSpec {
                    site: SiteId(1),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        }
    }

    #[test]
    fn clean_plan_on_clean_workflow_conforms() {
        let spec = mutual_promise_spec();
        let run = check_run(&spec, ExecConfig::seeded(7), FaultPlan::new(7), true);
        assert!(run.is_conformant(), "{:?}", run.failures);
        assert_eq!(run.report.trace.len(), 2);
    }

    #[test]
    fn faulty_plans_still_conform_with_reliability() {
        let spec = mutual_promise_spec();
        let mut config = ExecConfig::seeded(11);
        config.reliable = Some(dist::ReliableConfig::default());
        for (name, plan) in standard_plans(3) {
            let run = check_run(&spec, config.clone(), plan, true);
            assert!(run.is_conformant(), "{name}: {:?}", run.failures);
        }
    }

    #[test]
    fn determinism_holds_under_chaos() {
        let spec = mutual_promise_spec();
        let mut config = ExecConfig::seeded(5);
        config.reliable = Some(dist::ReliableConfig::default());
        let plan = standard_plans(9).pop().expect("chaos plan").1;
        assert_eq!(check_determinism(&spec, config, plan), Vec::<String>::new());
    }

    #[test]
    fn causal_audit_green_across_standard_plans() {
        // Pinned seed: every consumed fact in the flight-recorder DAG
        // must be established by an `occurred` span that happens-before
        // its consumer, under the whole fault matrix.
        let spec = mutual_promise_spec();
        let mut config = ExecConfig::seeded(13);
        config.reliable = Some(dist::ReliableConfig::default());
        config.record = Some(obs::RecordConfig::default());
        for (name, plan) in standard_plans(13) {
            let run = check_run(&spec, config.clone(), plan, true);
            assert!(run.is_conformant(), "{name}: {:?}", run.failures);
            let rec = run.report.recording.as_ref().expect("recording present");
            assert!(!rec.events.is_empty(), "{name}: recorder captured nothing");
            assert_eq!(rec.dropped, 0, "{name}: ring overflowed");
        }
    }

    #[test]
    fn clean_runs_raise_no_alerts() {
        // The acceptance bar for the armed monitors: zero alerts and no
        // violated verdict on a fault-free run of a clean workflow.
        let spec = mutual_promise_spec();
        let run = check_run(&spec, ExecConfig::seeded(7), FaultPlan::new(7), true);
        assert!(run.is_conformant(), "{:?}", run.failures);
        assert!(run.report.alerts.is_empty(), "{:?}", run.report.alerts);
        let mrep = run.report.monitor.as_ref().expect("monitors were armed");
        assert!(mrep.verdicts.iter().all(|v| *v == monitor::DepVerdict::Satisfied), "{mrep:?}");
        assert!(mrep.facts > 0, "the monitor actually observed the run");
    }

    #[test]
    fn unguarded_run_is_flagged_by_the_monitors() {
        // Mutation: strip D< from the scheduler so nothing stops f from
        // firing before e (seed 5 realizes exactly that order), then
        // replay the recording through monitors holding the real
        // dependency. The broken order must come back violated, with the
        // dependency-verdict alert raised at e's firing (not at finish)
        // and the guard-faithfulness alert naming the unjustified event.
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                dist::FreeEventSpec {
                    site: SiteId(1),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(40),
                },
            ],
        };
        let mrep = run_unguarded_monitored(&spec, ExecConfig::seeded(5));
        assert!(mrep.has_violation(), "{mrep:?}");
        assert_eq!(mrep.verdicts, vec![monitor::DepVerdict::Violated], "{mrep:?}");
        let dep_alert = mrep
            .alerts
            .iter()
            .find(|a| matches!(a.kind, monitor::AlertKind::DepViolated { .. }))
            .expect("dependency-violated alert");
        // Flagged online at the offending firing, not by the finish-time
        // sweep (which stamps its transitions with node u32::MAX).
        assert_ne!(dep_alert.node, u32::MAX, "flagged post-hoc: {dep_alert:?}");
        assert!(
            mrep.alerts
                .iter()
                .any(|a| matches!(a.kind, monitor::AlertKind::GuardUnfaithful { .. })),
            "{mrep:?}"
        );
    }

    #[test]
    fn fused_monitor_is_equivalent_to_the_sink_oracle() {
        // The eleventh audit across the whole fault matrix, including
        // the crash plan whose CrashDrop sweeps are the one known
        // timestamp divergence between the two stepping modes.
        let spec = mutual_promise_spec();
        for seed in [0u64, 7, 23] {
            let mut config = ExecConfig::seeded(seed);
            config.reliable = Some(dist::ReliableConfig::default());
            for (name, plan) in standard_plans(seed ^ 0x5EED) {
                let failures = audit_monitor_equivalence(&spec, &config, &plan);
                assert_eq!(failures, Vec::<String>::new(), "{name}/seed {seed}");
            }
        }
    }

    #[test]
    fn schedule_race_audit_catches_a_forged_independence_claim() {
        // Precedence e < f does not commute (e·f reaches ⊤, f·e reaches
        // 0), so the honest analyzer colocates the pair and never claims
        // independence — the audit is green on a real run. Mutation: forge
        // a plan that mis-classifies (e, f) as independent and prove the
        // transposition replay catches it on the very same run.
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        };
        let report = dist::run_workflow(&spec, ExecConfig::seeded(2));
        assert!(report.all_satisfied(), "clean run should satisfy e < f");
        assert_eq!(audit_schedule_races(&spec, &report), Vec::<String>::new());
        let pair = event_algebra::shard::canonical(e.symbol(), f.symbol());
        let forged = ShardPlan {
            classes: vec![
                event_algebra::ShardClass { id: 0, events: vec![pair.0], site: None },
                event_algebra::ShardClass { id: 1, events: vec![pair.1], site: None },
            ],
            commuting: vec![pair],
            independent: vec![pair],
            ..ShardPlan::default()
        };
        let failures = audit_schedule_races_against(&spec, &report, &forged);
        assert!(!failures.is_empty(), "forged independence claim went undetected");
        assert!(failures[0].contains("schedule race"), "{failures:?}");
    }

    #[test]
    fn tenant_isolation_audit_green_across_fault_matrix() {
        // A small mixed fleet of Example 11 instances, audited against
        // independent runs under every standard fault plan.
        let spec = mutual_promise_spec();
        let arrivals: Vec<Arrival> =
            (0..4).map(|i| Arrival::new(i, 0, i * 5, 0xBEEF ^ i)).collect();
        for (name, plan) in standard_plans(3) {
            let mut config = TenantConfig::new(ExecConfig::seeded(0));
            config.exec.reliable = Some(dist::ReliableConfig::default());
            config.exec.monitor = Some(monitor::MonitorConfig::default());
            config.plan = Some(plan);
            let (failures, report) =
                audit_tenant_isolation(std::slice::from_ref(&spec), &arrivals, &config);
            assert_eq!(failures, Vec::<String>::new(), "{name}");
            assert_eq!(report.instances.len(), 4, "{name}");
            if name == "crash" {
                let wal = report.wal.as_ref().expect("fault plan materializes the WAL");
                assert!(wal.total() > 0, "{name}: crash plan should exercise the WAL");
            }
        }
    }

    #[test]
    fn tenant_isolation_audit_catches_a_cross_wired_instance() {
        // Mutation: stamp instance 1's announcements with a foreign id.
        // Its actors reject them (counted), and on a precedence spec the
        // downstream event starves — the audit must report both the
        // rejection counter and the occurrence divergence.
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                dist::FreeEventSpec {
                    site: SiteId(1),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        };
        let arrivals: Vec<Arrival> = (0..3).map(|i| Arrival::new(i, 0, i, 0xACE ^ i)).collect();
        let mut config = TenantConfig::new(ExecConfig::seeded(0));
        config.cross_wire = Some(dist::InstanceId(1));
        let (failures, _) = audit_tenant_isolation(&[spec], &arrivals, &config);
        assert!(!failures.is_empty(), "cross-wired instance went undetected");
        assert!(
            failures.iter().any(|f| f.contains("foreign announcement")),
            "rejection counter not reported: {failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("instance i1") && f.contains("diverge")),
            "divergence not attributed to the mutant: {failures:?}"
        );
        assert!(
            !failures.iter().any(|f| f.contains("instance i0") || f.contains("instance i2")),
            "healthy instances wrongly implicated: {failures:?}"
        );
    }

    #[test]
    fn guard_audit_flags_a_fabricated_violation() {
        // Build a report by hand whose trace violates e < f, then check
        // the auditor catches it (the real executor never produces this).
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        };
        let mut report = dist::run_workflow(&spec, ExecConfig::seeded(2));
        assert!(audit_guards(&spec, &report).is_empty(), "real run is safe");
        // Fabricate a bad trace: f before e violates f's guard `□e`.
        let bad = event_algebra::Trace::new([f, e]).unwrap();
        report.trace = bad.clone();
        report.maximal_trace = bad;
        // f fired before e, violating its `□e` guard; once the order is
        // broken, e's own guard (which demands it precede f) is false too.
        let violations = audit_guards(&spec, &report);
        assert!(violations.contains(&(f, 0)), "{violations:?}");
    }

    /// A precedence chain whose arrow dependencies all commute: the
    /// coupling fallback gives singleton classes, so the parallel run
    /// actually exercises multi-shard rounds.
    fn chain_spec(n: usize) -> WorkflowSpec {
        let mut table = SymbolTable::new();
        let mut deps = Vec::new();
        for i in 0..n.saturating_sub(1) {
            deps.push(parse_expr(&format!("~e{i} + e{}", i + 1), &mut table).unwrap());
        }
        let free_events = (0..n)
            .map(|i| dist::FreeEventSpec {
                site: SiteId(i as u32),
                lit: table.event(&format!("e{i}")),
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            })
            .collect();
        WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
    }

    #[test]
    fn parallel_conformance_audit_green_on_clean_specs() {
        // The tenth audit across worker counts 1/2/4 on both a
        // promise-consensus spec and a commuting pipeline, two seeds.
        for seed in [0, 23] {
            for spec in [mutual_promise_spec(), chain_spec(5)] {
                let (failures, run) =
                    audit_parallel_conformance(&spec, &ExecConfig::seeded(seed), &[1, 2, 4]);
                assert_eq!(failures, Vec::<String>::new(), "seed {seed}");
                assert!(run.report.all_satisfied(), "seed {seed}: {:?}", run.report);
            }
        }
    }

    #[test]
    fn parallel_fleet_audit_green() {
        let spec = chain_spec(4);
        let arrivals: Vec<Arrival> = (0..5).map(|i| Arrival::new(i, 0, i * 7, 0xACE ^ i)).collect();
        let mut config = ExecConfig::seeded(0);
        config.parallel = Some(sim::ParallelConfig::new(2));
        let (failures, fleet) =
            audit_parallel_fleet(std::slice::from_ref(&spec), &arrivals, &config);
        assert_eq!(failures, Vec::<String>::new());
        assert_eq!(fleet.instances.len(), 5);
        assert!(fleet.all_satisfied());
    }

    #[test]
    fn parallel_audit_catches_a_forged_shard_plan() {
        // Mutation: key the shards with a plan that falsely claims the
        // non-commuting precedence pair (e, f) independent. Whatever the
        // racy schedule produces, the audit must come back red — through
        // the transposition replay over the shard-keying plan at least.
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                dist::FreeEventSpec {
                    site: SiteId(0),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        };
        let pair = event_algebra::shard::canonical(e.symbol(), f.symbol());
        let forged = ShardPlan {
            classes: vec![
                event_algebra::ShardClass { id: 0, events: vec![pair.0], site: None },
                event_algebra::ShardClass { id: 1, events: vec![pair.1], site: None },
            ],
            commuting: vec![pair],
            independent: vec![pair],
            ..ShardPlan::default()
        };
        let mut config = ExecConfig::seeded(2);
        config.shard_plan = Some(std::sync::Arc::new(forged));
        let (failures, _) = audit_parallel_conformance(&spec, &config, &[1]);
        assert!(!failures.is_empty(), "forged plan went undetected");
        assert!(
            failures.iter().any(|fl| fl.contains("schedule race") && fl.contains("e")),
            "the race must be attributed to the forged pair: {failures:?}"
        );
    }
}
