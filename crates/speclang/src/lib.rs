//! The declarative workflow specification language (Sections 1 and 3).
//!
//! Workflows "of any model may be declaratively specified": this crate
//! parses a textual syntax for events (with scheduling attributes and
//! placement) and dependencies — the bare algebra operators, Klein's
//! `->` / `<` primitives [10], the extended-transaction macros capturing
//! ACTA [3] and Günthör [8] dependencies, and parametrized atoms `e[x]`
//! (Section 5) — and lowers them for the schedulers.

#![warn(missing_docs)]

mod ast;
mod compile;
mod parser;

pub use ast::{
    atom, atom_vars, complement, expand_macro, klein_arrow, klein_precedes, AgentDecl, DepDecl,
    EventDecl, ScriptItem, Span, WorkflowDecl,
};
pub use compile::{DepOrigin, LoweredEvent, LoweredWorkflow};
pub use parser::{parse_dependency, parse_workflow, SpecError};
