//! Parser for the workflow specification language.
//!
//! ```text
//! workflow travel {
//!     event buy::start   { triggerable };
//!     event buy::commit  { controllable } @ site 1;
//!     event buy::abort   { immediate };
//!
//!     dep d1: ~buy::start + book::start;
//!     dep d2: book::commit < buy::commit;          // Klein precedence
//!     dep d3: buy::start -> book::start;           // Klein arrow
//!     dep d4: compensate(book, buy, cancel);       // macro
//!     dep d5: mutex(b1[x], e1[x], b2[y]);          // parametrized
//! }
//! ```
//!
//! `::` separates an agent prefix from its event (interned as
//! `agent.event`, matching [`agent::TaskAgent`] registration). `.` is the
//! sequencing operator. Precedences: `->`/`<` (lowest, top level only),
//! `+`, `|`, `.`, atoms.

use crate::ast::{
    expand_macro, klein_arrow, klein_precedes, AgentDecl, DepDecl, EventDecl, ScriptItem, Span,
    WorkflowDecl,
};
use event_algebra::{PExpr, PLit, Polarity, Term};
use std::fmt;

/// A parse error with line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for SpecError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Plus,
    Pipe,
    Dot,
    Tilde,
    Arrow,
    Less,
    At,
    Zero,
    Top,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn err(&self, message: impl Into<String>) -> SpecError {
        SpecError { line: self.line, col: self.col, message: message.into() }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize, usize)>, SpecError> {
        let mut out = Vec::new();
        loop {
            // Skip whitespace and // comments.
            loop {
                match self.peek() {
                    Some(b) if b.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                        while let Some(b) = self.bump() {
                            if b == b'\n' {
                                break;
                            }
                        }
                    }
                    _ => break,
                }
            }
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else { break };
            let tok = match b {
                b'{' => {
                    self.bump();
                    Tok::LBrace
                }
                b'}' => {
                    self.bump();
                    Tok::RBrace
                }
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b';' => {
                    self.bump();
                    Tok::Semi
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'+' => {
                    self.bump();
                    Tok::Plus
                }
                b'|' => {
                    self.bump();
                    Tok::Pipe
                }
                b'.' => {
                    self.bump();
                    Tok::Dot
                }
                b'~' => {
                    self.bump();
                    Tok::Tilde
                }
                b'<' => {
                    self.bump();
                    Tok::Less
                }
                b'@' => {
                    self.bump();
                    Tok::At
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        return Err(self.err("expected '->'"));
                    }
                }
                b':' => {
                    self.bump();
                    if self.peek() == Some(b':') {
                        return Err(self.err("stray '::' outside an identifier"));
                    }
                    Tok::Colon
                }
                b'0' => {
                    self.bump();
                    Tok::Zero
                }
                b if b.is_ascii_digit() => {
                    let mut n: u64 = 0;
                    while let Some(d) = self.peek() {
                        if d.is_ascii_digit() {
                            n = n * 10 + u64::from(d - b'0');
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Num(n)
                }
                b if b.is_ascii_alphabetic() || b == b'_' => {
                    let mut name = String::new();
                    loop {
                        match self.peek() {
                            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                                name.push(c as char);
                                self.bump();
                            }
                            Some(b':') if self.src.get(self.pos + 1) == Some(&b':') => {
                                self.bump();
                                self.bump();
                                name.push('.');
                            }
                            _ => break,
                        }
                    }
                    if name == "T" {
                        Tok::Top
                    } else {
                        Tok::Ident(name)
                    }
                }
                other => return Err(self.err(format!("unexpected character {:?}", other as char))),
            };
            out.push((tok, line, col));
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> SpecError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((0, 0));
        SpecError { line, col, message: message.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    /// The source position of the token about to be consumed.
    fn span_here(&self) -> Span {
        self.toks.get(self.pos).map(|&(_, l, c)| Span::at(l, c)).unwrap_or_default()
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), SpecError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err_at(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SpecError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => Err(self.err_at(format!("expected {what}"))),
        }
    }

    fn workflow(&mut self) -> Result<WorkflowDecl, SpecError> {
        let kw = self.ident("'workflow'")?;
        if kw != "workflow" {
            return Err(self.err_at("expected 'workflow'"));
        }
        let name = self.ident("workflow name")?;
        self.expect(&Tok::LBrace, "'{'")?;
        let mut events = Vec::new();
        let mut agents = Vec::new();
        let mut deps = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Ident(kw)) if kw == "event" => {
                    let span = self.span_here();
                    self.pos += 1;
                    events.push(self.event_decl(span)?);
                }
                Some(Tok::Ident(kw)) if kw == "agent" => {
                    let span = self.span_here();
                    self.pos += 1;
                    agents.push(self.agent_decl(span)?);
                }
                Some(Tok::Ident(kw)) if kw == "dep" => {
                    let span = self.span_here();
                    self.pos += 1;
                    deps.push(self.dep_decl(span)?);
                }
                _ => return Err(self.err_at("expected 'event', 'agent', 'dep' or '}'")),
            }
        }
        if self.pos != self.toks.len() {
            return Err(self.err_at("trailing input after workflow"));
        }
        Ok(WorkflowDecl { name, events, agents, deps })
    }

    /// `agent NAME: KIND (@ site N)? ({ script: item, item, ... })? ;`
    fn agent_decl(&mut self, span: Span) -> Result<AgentDecl, SpecError> {
        let name = self.ident("agent name")?;
        self.expect(&Tok::Colon, "':'")?;
        let kind = self.ident("agent kind")?;
        let mut decl = AgentDecl { name, kind, site: 0, script: Vec::new(), span };
        if self.peek() == Some(&Tok::At) {
            self.pos += 1;
            let kw = self.ident("'site'")?;
            if kw != "site" {
                return Err(self.err_at("expected 'site'"));
            }
            match self.next() {
                Some(Tok::Num(n)) => decl.site = n as u32,
                Some(Tok::Zero) => decl.site = 0,
                _ => return Err(self.err_at("expected site number")),
            }
        }
        if self.peek() == Some(&Tok::LBrace) {
            self.pos += 1;
            let kw = self.ident("'script'")?;
            if kw != "script" {
                return Err(self.err_at("expected 'script'"));
            }
            self.expect(&Tok::Colon, "':'")?;
            if self.peek() != Some(&Tok::RBrace) {
                loop {
                    match self.next() {
                        Some(Tok::Ident(w)) if w == "wait" => match self.next() {
                            Some(Tok::Num(n)) => decl.script.push(ScriptItem::Wait(n)),
                            Some(Tok::Zero) => decl.script.push(ScriptItem::Wait(0)),
                            _ => return Err(self.err_at("expected wait duration")),
                        },
                        Some(Tok::Ident(ev)) => decl.script.push(ScriptItem::Event(ev)),
                        _ => return Err(self.err_at("expected script step")),
                    }
                    match self.next() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBrace) => break,
                        _ => return Err(self.err_at("expected ',' or '}'")),
                    }
                }
            } else {
                self.pos += 1;
            }
        }
        self.expect(&Tok::Semi, "';'")?;
        Ok(decl)
    }

    fn event_decl(&mut self, span: Span) -> Result<EventDecl, SpecError> {
        let name = self.ident("event name")?;
        let mut decl = EventDecl {
            name,
            controllable: false,
            triggerable: false,
            immediate: false,
            site: None,
            span,
        };
        if self.peek() == Some(&Tok::LBrace) {
            self.pos += 1;
            loop {
                let attr = self.ident("attribute")?;
                match attr.as_str() {
                    "controllable" => decl.controllable = true,
                    "triggerable" => decl.triggerable = true,
                    "immediate" => decl.immediate = true,
                    other => return Err(self.err_at(format!("unknown attribute {other}"))),
                }
                match self.next() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RBrace) => break,
                    _ => return Err(self.err_at("expected ',' or '}'")),
                }
            }
        }
        if self.peek() == Some(&Tok::At) {
            self.pos += 1;
            let kw = self.ident("'site'")?;
            if kw != "site" {
                return Err(self.err_at("expected 'site'"));
            }
            match self.next() {
                Some(Tok::Num(n)) => decl.site = Some(n as u32),
                Some(Tok::Zero) => decl.site = Some(0),
                _ => return Err(self.err_at("expected site number")),
            }
        }
        self.expect(&Tok::Semi, "';'")?;
        // Defaults: an event with no attributes is controllable.
        if !decl.controllable && !decl.triggerable && !decl.immediate {
            decl.controllable = true;
        }
        Ok(decl)
    }

    fn dep_decl(&mut self, span: Span) -> Result<DepDecl, SpecError> {
        // Optional label before ':'.
        let label = if let (Some(Tok::Ident(name)), Some((Tok::Colon, _, _))) =
            (self.peek().cloned(), self.toks.get(self.pos + 1))
        {
            self.pos += 2;
            Some(name)
        } else {
            return Err(self.err_at("expected 'dep <label>:'"));
        };
        let body = self.klein_expr()?;
        self.expect(&Tok::Semi, "';'")?;
        Ok(DepDecl { label, body, span })
    }

    /// `expr ('->' expr | '<' expr)?` — Klein sugar at the top level.
    fn klein_expr(&mut self) -> Result<PExpr, SpecError> {
        let lhs = self.or_expr()?;
        match self.peek() {
            Some(Tok::Arrow) => {
                self.pos += 1;
                let rhs = self.or_expr()?;
                Ok(klein_arrow(lhs, rhs))
            }
            Some(Tok::Less) => {
                self.pos += 1;
                let rhs = self.or_expr()?;
                Ok(klein_precedes(lhs, rhs))
            }
            _ => Ok(lhs),
        }
    }

    fn or_expr(&mut self) -> Result<PExpr, SpecError> {
        let mut parts = vec![self.and_expr()?];
        while self.peek() == Some(&Tok::Plus) {
            self.pos += 1;
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one") } else { PExpr::Or(parts) })
    }

    fn and_expr(&mut self) -> Result<PExpr, SpecError> {
        let mut parts = vec![self.seq_expr()?];
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            parts.push(self.seq_expr()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one") } else { PExpr::And(parts) })
    }

    fn seq_expr(&mut self) -> Result<PExpr, SpecError> {
        let mut parts = vec![self.atom()?];
        while self.peek() == Some(&Tok::Dot) {
            self.pos += 1;
            parts.push(self.atom()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("one") } else { PExpr::Seq(parts) })
    }

    fn atom(&mut self) -> Result<PExpr, SpecError> {
        match self.next() {
            Some(Tok::Tilde) => {
                let inner = self.atom()?;
                Ok(crate::ast::complement(inner))
            }
            Some(Tok::Zero) => Ok(PExpr::Zero),
            Some(Tok::Top) => Ok(PExpr::Top),
            Some(Tok::LParen) => {
                let e = self.klein_expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                // Parameter tuple?
                let mut args: Vec<Term> = Vec::new();
                if self.peek() == Some(&Tok::LBracket) {
                    self.pos += 1;
                    loop {
                        match self.next() {
                            Some(Tok::Ident(v)) => args.push(Term::Var(v)),
                            Some(Tok::Num(n)) => args.push(Term::Val(n)),
                            Some(Tok::Zero) => args.push(Term::Val(0)),
                            _ => return Err(self.err_at("expected parameter")),
                        }
                        match self.next() {
                            Some(Tok::Comma) => continue,
                            Some(Tok::RBracket) => break,
                            _ => return Err(self.err_at("expected ',' or ']'")),
                        }
                    }
                    return Ok(PExpr::Lit(PLit {
                        event: event_algebra::PEvent::new(&name, args),
                        polarity: Polarity::Pos,
                    }));
                }
                // Macro call?
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut margs = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            margs.push(self.klein_expr()?);
                            match self.next() {
                                Some(Tok::Comma) => continue,
                                Some(Tok::RParen) => break,
                                _ => return Err(self.err_at("expected ',' or ')'")),
                            }
                        }
                    } else {
                        self.pos += 1;
                    }
                    return expand_macro(&name, &margs).map_err(|m| self.err_at(m));
                }
                Ok(PExpr::lit(&name, &[]))
            }
            _ => Err(self.err_at("expected an atom")),
        }
    }
}

/// Parse a workflow specification file.
pub fn parse_workflow(src: &str) -> Result<WorkflowDecl, SpecError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    p.workflow()
}

/// Parse a bare dependency expression (with Klein sugar, macros and
/// parameters).
pub fn parse_dependency(src: &str) -> Result<PExpr, SpecError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.klein_expr()?;
    if p.pos != p.toks.len() {
        return Err(p.err_at("trailing input"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{Binding, SymbolTable};

    #[test]
    fn parses_travel_workflow() {
        let src = r#"
            workflow travel {
                event buy::start   { triggerable };
                event buy::commit  { controllable } @ site 1;
                event buy::abort   { immediate };
                event book::start  { triggerable };
                event book::commit { controllable };
                event cancel::start { triggerable };

                // Example 4's three dependencies:
                dep d1: ~buy::start + book::start;
                dep d2: ~buy::commit + book::commit . buy::commit;
                dep d3: ~book::commit + buy::commit + cancel::start;
            }
        "#;
        let w = parse_workflow(src).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(w.name, "travel");
        assert_eq!(w.events.len(), 6);
        assert_eq!(w.deps.len(), 3);
        assert!(w.deps.iter().all(DepDecl::is_ground));
        assert_eq!(w.events[1].site, Some(1));
        assert!(w.events[2].immediate);
        // d2 grounds to ~buy.commit + book.commit·buy.commit.
        let mut t = SymbolTable::new();
        let g = w.deps[1].body.instantiate(&Binding::new(), &mut t);
        assert!(t.lookup("buy.commit").is_some());
        assert!(t.lookup("book.commit").is_some());
        assert!(matches!(g, event_algebra::Expr::Or(_)));
    }

    #[test]
    fn klein_sugar_parses() {
        let mut t = SymbolTable::new();
        let d = parse_dependency("e < f").unwrap().instantiate(&Binding::new(), &mut t);
        let expected = event_algebra::parse_expr("~e + ~f + e.f", &mut t).unwrap();
        assert_eq!(d, expected);
        let d2 = parse_dependency("e -> f").unwrap().instantiate(&Binding::new(), &mut t);
        let expected2 = event_algebra::parse_expr("~e + f", &mut t).unwrap();
        assert_eq!(d2, expected2);
    }

    #[test]
    fn macro_calls_parse() {
        let d = parse_dependency("commit_dep(book, buy)").unwrap();
        let mut t = SymbolTable::new();
        let g = d.instantiate(&Binding::new(), &mut t);
        assert!(t.lookup("book.commit").is_some());
        let _ = g;
        assert!(parse_dependency("unknown_macro(a)").is_err());
    }

    #[test]
    fn parametrized_deps_parse() {
        let d = parse_dependency("mutex(b1[x], e1[x], b2[y])").unwrap();
        assert_eq!(d.vars().len(), 2);
        let d2 = parse_dependency("~f[y] + g[y]").unwrap();
        assert_eq!(d2.vars().len(), 1);
        let d3 = parse_dependency("e[3] -> f[3]").unwrap();
        assert!(d3.vars().is_empty());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_workflow("workflow x {\n  dep d1 ~e;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_workflow("workflow x { event ; }").is_err());
        assert!(parse_dependency("e +").is_err());
        assert!(parse_dependency("e ^ f").is_err());
    }

    #[test]
    fn comments_and_defaults() {
        let w = parse_workflow("workflow w {\n// only a comment\nevent e;\ndep d: e -> e2;\n}")
            .unwrap();
        assert!(w.events[0].controllable, "default attribute");
        assert_eq!(w.deps.len(), 1);
    }

    #[test]
    fn zero_and_top_parse_in_deps() {
        assert_eq!(parse_dependency("0").unwrap(), PExpr::Zero);
        assert_eq!(parse_dependency("T").unwrap(), PExpr::Top);
    }
}
