//! AST of the workflow specification language.
//!
//! A workflow file declares events (with scheduling attributes and
//! optional site placement) and dependencies. Dependency expressions use
//! the algebra operators plus Klein's arrow `->` and precedence `<` as
//! infix sugar [10], macro invocations for the common extended-transaction
//! primitives of ACTA [3] and Günthör [8], and parameter tuples `e[x]`
//! (Section 5).

use event_algebra::{PExpr, Term};
use std::fmt;

/// A source position (1-based line and column) attached to declarations
/// so downstream diagnostics (the `analyze` crate and the `wfcheck` CLI)
/// can point back into the specification file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct Span {
    /// 1-based line (0 when synthesized, e.g. for builder-made events).
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl Span {
    /// A span at `line`:`col`.
    pub fn at(line: usize, col: usize) -> Span {
        Span { line, col }
    }

    /// `true` for the default span of programmatically-built declarations
    /// that never came from a source file.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parsed workflow declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowDecl {
    /// Workflow name.
    pub name: String,
    /// Declared events.
    pub events: Vec<EventDecl>,
    /// Declared task agents.
    pub agents: Vec<AgentDecl>,
    /// Declared dependencies, in order.
    pub deps: Vec<DepDecl>,
}

/// One step of a declared agent script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptItem {
    /// Attempt/perform the named local event.
    Event(String),
    /// Think time in virtual ticks.
    Wait(u64),
}

/// A declared task agent, instantiated from the agent library by kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentDecl {
    /// Agent name (its events intern as `name.event`).
    pub name: String,
    /// Library kind: `rda`, `app`, `compensatable`, `two_phase`, `looper`.
    pub kind: String,
    /// Site placement (default 0).
    pub site: u32,
    /// Driver script.
    pub script: Vec<ScriptItem>,
    /// Where the declaration appears in the source.
    pub span: Span,
}

/// A declared event with attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDecl {
    /// Event name.
    pub name: String,
    /// The scheduler may delay/permit it.
    pub controllable: bool,
    /// The scheduler may proactively cause it.
    pub triggerable: bool,
    /// It happens without asking (e.g. abort).
    pub immediate: bool,
    /// Optional site assignment (`@ site N`).
    pub site: Option<u32>,
    /// Where the declaration appears in the source.
    pub span: Span,
}

/// A named dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct DepDecl {
    /// Optional label (`dep d1: …`).
    pub label: Option<String>,
    /// The dependency body. Ground dependencies have no variables; bodies
    /// with variables are parametrized templates (Section 5).
    pub body: PExpr,
    /// Where the declaration appears in the source.
    pub span: Span,
}

impl DepDecl {
    /// `true` if the body mentions no variables (instantiable directly).
    pub fn is_ground(&self) -> bool {
        self.body.vars().is_empty()
    }
}

/// Klein's `e -> f`: if `e` occurs then `f` occurs (either order) —
/// formalized as `ē + f` (Example 2).
pub fn klein_arrow(e: PExpr, f: PExpr) -> PExpr {
    PExpr::Or(vec![complement(e), f])
}

/// Klein's `e < f`: if both occur, `e` precedes `f` — formalized as
/// `ē + f̄ + e·f` (Example 3).
pub fn klein_precedes(e: PExpr, f: PExpr) -> PExpr {
    PExpr::Or(vec![complement(e.clone()), complement(f.clone()), PExpr::Seq(vec![e, f])])
}

/// Complement an atom (or map complements through `+`/`|` is *not*
/// defined — the sugar applies to atoms only, as in the paper).
pub fn complement(e: PExpr) -> PExpr {
    match e {
        PExpr::Lit(mut l) => {
            l.polarity = l.polarity.flipped();
            PExpr::Lit(l)
        }
        other => panic!("`->`/`<` sugar applies to event atoms, got {other:?}"),
    }
}

/// The macro library: extended-transaction-model primitives expressed as
/// dependencies over the `task.event` naming convention.
///
/// These capture the primitives of Klein [10], which the paper notes "can
/// capture those of [3] and [8]" (ACTA and Günthör's dependency rules).
pub fn expand_macro(name: &str, args: &[PExpr]) -> Result<PExpr, String> {
    let atom = |ix: usize| -> Result<PExpr, String> {
        args.get(ix).cloned().ok_or_else(|| format!("macro {name}: missing argument {ix}"))
    };
    let task_event = |ix: usize, ev: &str| -> Result<PExpr, String> {
        match args.get(ix) {
            Some(PExpr::Lit(l)) => {
                let mut l = l.clone();
                l.event.name = format!("{}.{}", l.event.name, ev);
                Ok(PExpr::Lit(l))
            }
            other => Err(format!("macro {name}: argument {ix} must be a task name, got {other:?}")),
        }
    };
    match name {
        // Klein primitives on explicit events.
        "arrow" => Ok(klein_arrow(atom(0)?, atom(1)?)),
        "prec" => Ok(klein_precedes(atom(0)?, atom(1)?)),
        // ACTA-style primitives on tasks (convention: task.start /
        // task.commit / task.abort / task.compensate).
        //
        // commit_dep(a, b): b's commit requires a's commit to precede it.
        "commit_dep" => Ok(klein_precedes(task_event(0, "commit")?, task_event(1, "commit")?)),
        // abort_dep(a, b): if a aborts, b aborts.
        "abort_dep" => Ok(klein_arrow(task_event(0, "abort")?, task_event(1, "abort")?)),
        // begin_on_commit(a, b): b starts exactly when a commits — the
        // ordering (b starts only after a's commit) conjoined with the
        // initiation (if a commits, b starts), so the scheduler both
        // delays and proactively triggers b.start.
        "begin_on_commit" => {
            let s = task_event(1, "start")?;
            let c = task_event(0, "commit")?;
            Ok(PExpr::And(vec![
                PExpr::Or(vec![complement(s.clone()), PExpr::Seq(vec![c.clone(), s.clone()])]),
                PExpr::Or(vec![complement(c), s]),
            ]))
        }
        // exclusion(a, b): at most one of the two commits (Günthör-style
        // alternative tasks).
        "exclusion" => {
            let ca = task_event(0, "commit")?;
            let cb = task_event(1, "commit")?;
            Ok(PExpr::Or(vec![complement(ca), complement(cb)]))
        }
        // compensate(t, parent, c): if t committed but the parent's commit
        // never happens, start the compensating task c (Example 4's dep 3).
        "compensate" => {
            let ct = task_event(0, "commit")?;
            let cp = task_event(1, "commit")?;
            let sc = task_event(2, "start")?;
            Ok(PExpr::Or(vec![complement(ct), cp, sc]))
        }
        // mutex(b1, e1, b2, e2): Example 13's one-direction critical
        // section dependency over parametrized enters/exits.
        "mutex" => {
            let b1 = atom(0)?;
            let e1 = atom(1)?;
            let b2 = atom(2)?;
            Ok(PExpr::Or(vec![
                PExpr::Seq(vec![b2.clone(), b1]),
                complement(e1.clone()),
                complement(b2.clone()),
                PExpr::Seq(vec![e1, b2]),
            ]))
        }
        other => Err(format!("unknown macro {other}")),
    }
}

/// Convenience: a parameterless positive atom.
pub fn atom(name: &str) -> PExpr {
    PExpr::lit(name, &[])
}

/// Convenience: a positive atom with variables.
pub fn atom_vars(name: &str, vars: &[&str]) -> PExpr {
    let args: Vec<Term> = vars.iter().map(|v| Term::Var((*v).to_owned())).collect();
    PExpr::lit(name, &args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{Binding, SymbolTable};

    #[test]
    fn klein_sugar_matches_paper_formalization() {
        let mut t = SymbolTable::new();
        let arrow = klein_arrow(atom("e"), atom("f")).instantiate(&Binding::new(), &mut t);
        let expected = event_algebra::parse_expr("~e + f", &mut t).unwrap();
        assert_eq!(arrow, expected);
        let prec = klein_precedes(atom("e"), atom("f")).instantiate(&Binding::new(), &mut t);
        let expected = event_algebra::parse_expr("~e + ~f + e.f", &mut t).unwrap();
        assert_eq!(prec, expected);
    }

    #[test]
    fn macros_expand() {
        let d = expand_macro("commit_dep", &[atom("a"), atom("b")]).unwrap();
        let mut t = SymbolTable::new();
        let g = d.instantiate(&Binding::new(), &mut t);
        assert!(t.lookup("a.commit").is_some());
        assert!(t.lookup("b.commit").is_some());
        assert_eq!(g.symbols().len(), 2);
        assert!(expand_macro("nope", &[]).is_err());
        assert!(expand_macro("arrow", &[atom("e")]).is_err());
    }

    #[test]
    fn begin_on_commit_shape() {
        let d = expand_macro("begin_on_commit", &[atom("a"), atom("b")]).unwrap();
        let mut t = SymbolTable::new();
        let g = d.instantiate(&Binding::new(), &mut t);
        let expected = event_algebra::parse_expr("~b_start + a_commit.b_start", &mut {
            let mut tt = SymbolTable::new();
            tt.intern("b_start");
            tt
        });
        // Structure check: the conjunction of ordering and initiation.
        drop(expected);
        match g {
            event_algebra::Expr::And(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other}"),
        }
        let _ = t;
    }

    #[test]
    fn mutex_macro_is_example13() {
        let d = expand_macro(
            "mutex",
            &[atom_vars("b1", &["x"]), atom_vars("e1", &["x"]), atom_vars("b2", &["y"])],
        )
        .unwrap();
        assert_eq!(d.vars().len(), 2);
    }

    #[test]
    #[should_panic(expected = "sugar applies to event atoms")]
    fn complement_of_compound_panics() {
        let _ = complement(PExpr::Or(vec![atom("a"), atom("b")]));
    }
}
