//! Lowering parsed workflow declarations into executable form.

use crate::ast::{AgentDecl, Span, WorkflowDecl};
use crate::parser::{parse_workflow, SpecError};
use event_algebra::{Binding, Expr, Literal, PExpr, SymbolTable};

/// A declared event after lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredEvent {
    /// Declared name (with `::` already folded to `.`).
    pub name: String,
    /// The interned literal.
    pub literal: Literal,
    /// Scheduler may delay/permit.
    pub controllable: bool,
    /// Scheduler may proactively cause.
    pub triggerable: bool,
    /// Happens without permission.
    pub immediate: bool,
    /// Optional site placement.
    pub site: Option<u32>,
    /// Source position of the declaration (synthetic when built
    /// programmatically).
    pub span: Span,
}

/// Provenance of one lowered dependency: its declared label and source
/// position, aligned index-for-index with
/// [`LoweredWorkflow::ground_deps`] (or `templates`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DepOrigin {
    /// The `dep <label>:` name.
    pub label: Option<String>,
    /// Source position of the declaration.
    pub span: Span,
}

/// A workflow lowered to ground dependencies plus parametrized templates.
#[derive(Debug, Clone)]
pub struct LoweredWorkflow {
    /// Workflow name.
    pub name: String,
    /// The symbol table holding every ground event.
    pub table: SymbolTable,
    /// Variable-free dependencies, ready for guard synthesis.
    pub ground_deps: Vec<Expr>,
    /// Parametrized dependency templates (Section 5), for the dynamic
    /// scheduler.
    pub templates: Vec<PExpr>,
    /// Label/span provenance for each entry of `ground_deps`.
    pub dep_origins: Vec<DepOrigin>,
    /// Label/span provenance for each entry of `templates`.
    pub template_origins: Vec<DepOrigin>,
    /// Declared events.
    pub events: Vec<LoweredEvent>,
    /// Declared agents (instantiated from the agent library by the
    /// consumer — the spec language itself only records the declaration).
    pub agents: Vec<AgentDecl>,
}

impl LoweredWorkflow {
    /// Lower a parsed declaration.
    pub fn from_decl(decl: &WorkflowDecl) -> LoweredWorkflow {
        let mut table = SymbolTable::new();
        let events: Vec<LoweredEvent> = decl
            .events
            .iter()
            .map(|e| LoweredEvent {
                name: e.name.clone(),
                literal: table.event(&e.name),
                controllable: e.controllable,
                triggerable: e.triggerable,
                immediate: e.immediate,
                site: e.site,
                span: e.span,
            })
            .collect();
        let mut ground_deps = Vec::new();
        let mut templates = Vec::new();
        let mut dep_origins = Vec::new();
        let mut template_origins = Vec::new();
        for d in &decl.deps {
            let origin = DepOrigin { label: d.label.clone(), span: d.span };
            if d.is_ground() {
                ground_deps.push(d.body.instantiate(&Binding::new(), &mut table));
                dep_origins.push(origin);
            } else {
                templates.push(d.body.clone());
                template_origins.push(origin);
            }
        }
        LoweredWorkflow {
            name: decl.name.clone(),
            table,
            ground_deps,
            templates,
            dep_origins,
            template_origins,
            events,
            agents: decl.agents.clone(),
        }
    }

    /// Parse and lower in one step.
    pub fn parse(src: &str) -> Result<LoweredWorkflow, SpecError> {
        Ok(LoweredWorkflow::from_decl(&parse_workflow(src)?))
    }

    /// Find a lowered event by name.
    pub fn event(&self, name: &str) -> Option<&LoweredEvent> {
        self.events.iter().find(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowers_mixed_ground_and_parametrized() {
        let src = r#"
            workflow w {
                event a;
                event b { immediate };
                dep d1: a -> b;
                dep d2: ~f[y] + g[y];
            }
        "#;
        let w = LoweredWorkflow::parse(src).unwrap();
        assert_eq!(w.ground_deps.len(), 1);
        assert_eq!(w.templates.len(), 1);
        assert_eq!(w.events.len(), 2);
        assert!(w.event("b").unwrap().immediate);
        assert!(w.event("a").unwrap().controllable);
        assert!(w.event("zzz").is_none());
        // Declared events intern before dependency symbols.
        assert_eq!(w.table.name(w.event("a").unwrap().literal.symbol()), Some("a"));
    }

    #[test]
    fn lowered_deps_reference_declared_events() {
        let src = r#"
            workflow w {
                event e;
                event f;
                dep d: e < f;
            }
        "#;
        let w = LoweredWorkflow::parse(src).unwrap();
        let e = w.event("e").unwrap().literal;
        let f = w.event("f").unwrap().literal;
        assert!(w.ground_deps[0].mentions(e.symbol()));
        assert!(w.ground_deps[0].mentions(f.symbol()));
        // No spurious extra symbols.
        assert_eq!(w.ground_deps[0].symbols().len(), 2);
    }
}
