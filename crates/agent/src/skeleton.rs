//! Task agents and their coarse significant-event skeletons (Section 2).
//!
//! An agent embodies "a coarse description of the task, including only
//! states and transitions (or events) that are significant for
//! coordination". The agent interfaces the task with the scheduling
//! system: it informs the system of uncontrollable events (like *abort*),
//! requests permission for controllable ones (like *commit*), and causes
//! triggerable ones (like *start*) when the scheduler asks.

use event_algebra::{Expr, Literal, SymbolTable};
use std::fmt;

/// Scheduling attributes of a significant event (after [2] and [14]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventAttrs {
    /// The scheduler may delay or permit the event (the agent requests
    /// permission and waits). Example: `commit`.
    pub controllable: bool,
    /// The scheduler may proactively cause the event in the task.
    /// Example: `start` of a subtask.
    pub triggerable: bool,
    /// The scheduler may permanently reject the event (forcing the agent
    /// down an alternative path). A non-rejectable, non-controllable event
    /// (like `abort`) must be accepted whenever the agent reports it.
    pub rejectable: bool,
}

impl EventAttrs {
    /// A controllable, rejectable event (e.g. `commit`).
    pub fn controllable() -> EventAttrs {
        EventAttrs { controllable: true, triggerable: false, rejectable: true }
    }

    /// A triggerable (and controllable) event (e.g. `start`).
    pub fn triggerable() -> EventAttrs {
        EventAttrs { controllable: true, triggerable: true, rejectable: true }
    }

    /// An immediate event the scheduler can neither delay nor reject
    /// (e.g. `abort`): it simply learns that it happened.
    pub fn immediate() -> EventAttrs {
        EventAttrs { controllable: false, triggerable: false, rejectable: false }
    }
}

/// Index of a state within a skeleton.
pub type StateIx = usize;

/// Index of a significant event within an agent.
pub type EventIx = usize;

/// One significant event of a task agent.
#[derive(Debug, Clone)]
pub struct AgentEvent {
    /// Name within the agent (e.g. `"commit"`).
    pub name: String,
    /// The global literal this event was registered as.
    pub literal: Literal,
    /// Scheduling attributes.
    pub attrs: EventAttrs,
}

/// A coarse task skeleton: states and significant-event transitions.
///
/// The *invisible* states of the task are not exposed; arbitrary internal
/// loops and branches hide between the significant transitions.
#[derive(Debug, Clone)]
pub struct TaskAgent {
    /// Agent name (used as an event-name prefix when registering).
    pub name: String,
    /// State names; index 0 is initial.
    pub states: Vec<String>,
    /// Significant events.
    pub events: Vec<AgentEvent>,
    /// Transitions `(from_state, event, to_state)`.
    pub transitions: Vec<(StateIx, EventIx, StateIx)>,
    /// Current state.
    pub current: StateIx,
}

impl TaskAgent {
    /// Start building an agent named `name`.
    pub fn builder(name: &str) -> TaskAgentBuilder {
        TaskAgentBuilder {
            name: name.to_owned(),
            states: Vec::new(),
            events: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// The events enabled in the current state.
    pub fn available(&self) -> Vec<EventIx> {
        let mut v: Vec<EventIx> = self
            .transitions
            .iter()
            .filter(|&&(from, _, _)| from == self.current)
            .map(|&(_, e, _)| e)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// `true` if `event` can fire from the current state.
    pub fn can_fire(&self, event: EventIx) -> bool {
        self.transitions.iter().any(|&(from, e, _)| from == self.current && e == event)
    }

    /// Fire `event`, moving to its target state.
    pub fn fire(&mut self, event: EventIx) -> Result<StateIx, IllegalTransition> {
        match self.transitions.iter().find(|&&(from, e, _)| from == self.current && e == event) {
            Some(&(_, _, to)) => {
                self.current = to;
                Ok(to)
            }
            None => Err(IllegalTransition {
                agent: self.name.clone(),
                state: self.states[self.current].clone(),
                event: self.events[event].name.clone(),
            }),
        }
    }

    /// `true` if no transition leaves the current state.
    pub fn is_terminal(&self) -> bool {
        self.available().is_empty()
    }

    /// Find an event by its local name.
    pub fn event_named(&self, name: &str) -> Option<EventIx> {
        self.events.iter().position(|e| e.name == name)
    }

    /// The literal registered for `event`.
    pub fn literal_of(&self, event: EventIx) -> Literal {
        self.events[event].literal
    }

    /// Derive the task's *structure dependencies*: for every pair of
    /// events `f`, `e` where `f` dominates `e` in the skeleton (every
    /// path from the initial state to a state from which `e` can fire
    /// passes through an `f`-transition), emit `ē + f·e` — "if e occurs,
    /// f occurred first". These encode the coarse task structure the
    /// agent exposes (Section 2) as ordinary dependencies, letting the
    /// scheduler reason that e.g. a commit can never happen once the
    /// start has been ruled out.
    pub fn structure_dependencies(&self) -> Vec<Expr> {
        let mut out = Vec::new();
        for e_ix in 0..self.events.len() {
            for f_ix in 0..self.events.len() {
                if e_ix == f_ix {
                    continue;
                }
                if self.dominates(f_ix, e_ix) {
                    let e = self.events[e_ix].literal;
                    let f = self.events[f_ix].literal;
                    out.push(Expr::or([
                        Expr::lit(e.complement()),
                        Expr::seq([Expr::lit(f), Expr::lit(e)]),
                    ]));
                }
            }
        }
        out
    }

    /// `true` if every path from the initial state to any source state of
    /// `e`-transitions passes through an `f`-transition.
    fn dominates(&self, f: EventIx, e: EventIx) -> bool {
        // Reachability from the initial state with f-transitions removed.
        let mut reach = vec![false; self.states.len()];
        let mut stack = vec![0usize];
        reach[0] = true;
        while let Some(s) = stack.pop() {
            for &(from, ev, to) in &self.transitions {
                if from == s && ev != f && !reach[to] {
                    reach[to] = true;
                    stack.push(to);
                }
            }
        }
        // e is dominated if none of its source states stays reachable.
        let mut has_source = false;
        for &(from, ev, _) in &self.transitions {
            if ev == e {
                has_source = true;
                if reach[from] {
                    return false;
                }
            }
        }
        has_source
    }

    /// Render the skeleton (used by the Figure 1 regeneration binary).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "agent {}:", self.name);
        for (ix, s) in self.states.iter().enumerate() {
            let mark = if ix == 0 {
                " (initial)"
            } else if self.transitions.iter().all(|&(f, _, _)| f != ix) {
                " (terminal)"
            } else {
                ""
            };
            let _ = writeln!(out, "  state {s}{mark}");
            for &(from, e, to) in &self.transitions {
                if from == ix {
                    let ev = &self.events[e];
                    let attrs = [
                        ev.attrs.controllable.then_some("controllable"),
                        ev.attrs.triggerable.then_some("triggerable"),
                        (!ev.attrs.rejectable && !ev.attrs.controllable).then_some("immediate"),
                    ]
                    .into_iter()
                    .flatten()
                    .collect::<Vec<_>>()
                    .join(",");
                    let _ = writeln!(out, "    --{} [{}]--> {}", ev.name, attrs, self.states[to]);
                }
            }
        }
        out
    }
}

/// Error: an event fired from a state with no such transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The agent in which the violation happened.
    pub agent: String,
    /// The state the agent was in.
    pub state: String,
    /// The event that was attempted.
    pub event: String,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "agent {}: event {} is not enabled in state {}",
            self.agent, self.event, self.state
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// Builder for [`TaskAgent`].
pub struct TaskAgentBuilder {
    name: String,
    states: Vec<String>,
    events: Vec<(String, EventAttrs)>,
    transitions: Vec<(StateIx, EventIx, StateIx)>,
}

impl TaskAgentBuilder {
    /// Add a state; the first added state is initial.
    pub fn state(mut self, name: &str) -> Self {
        assert!(!self.states.iter().any(|s| s == name), "duplicate state {name}");
        self.states.push(name.to_owned());
        self
    }

    /// Declare a significant event.
    pub fn event(mut self, name: &str, attrs: EventAttrs) -> Self {
        assert!(!self.events.iter().any(|(n, _)| n == name), "duplicate event {name}");
        self.events.push((name.to_owned(), attrs));
        self
    }

    /// Add a transition `from --event--> to` (all by name).
    pub fn transition(mut self, from: &str, event: &str, to: &str) -> Self {
        let f = self.states.iter().position(|s| s == from).expect("unknown from-state");
        let t = self.states.iter().position(|s| s == to).expect("unknown to-state");
        let e = self.events.iter().position(|(n, _)| n == event).expect("unknown event");
        self.transitions.push((f, e, t));
        self
    }

    /// Finish, registering each event as `"<agent>.<event>"` in `table`.
    pub fn build(self, table: &mut SymbolTable) -> TaskAgent {
        assert!(!self.states.is_empty(), "agent needs at least one state");
        let events = self
            .events
            .into_iter()
            .map(|(name, attrs)| {
                let literal = table.event(&format!("{}.{}", self.name, name));
                AgentEvent { name, literal, attrs }
            })
            .collect();
        TaskAgent {
            name: self.name,
            states: self.states,
            events,
            transitions: self.transitions,
            current: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple(table: &mut SymbolTable) -> TaskAgent {
        TaskAgent::builder("t")
            .state("init")
            .state("run")
            .state("done")
            .event("start", EventAttrs::triggerable())
            .event("finish", EventAttrs::controllable())
            .transition("init", "start", "run")
            .transition("run", "finish", "done")
            .build(table)
    }

    #[test]
    fn builder_wires_states_and_events() {
        let mut t = SymbolTable::new();
        let a = simple(&mut t);
        assert_eq!(a.states.len(), 3);
        assert_eq!(a.events.len(), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a.events[0].literal.symbol()), Some("t.start"));
    }

    #[test]
    fn fire_follows_transitions() {
        let mut t = SymbolTable::new();
        let mut a = simple(&mut t);
        let start = a.event_named("start").unwrap();
        let finish = a.event_named("finish").unwrap();
        assert_eq!(a.available(), vec![start]);
        assert!(a.can_fire(start));
        assert!(!a.can_fire(finish));
        a.fire(start).unwrap();
        assert_eq!(a.available(), vec![finish]);
        a.fire(finish).unwrap();
        assert!(a.is_terminal());
    }

    #[test]
    fn illegal_transition_reports_context() {
        let mut t = SymbolTable::new();
        let mut a = simple(&mut t);
        let finish = a.event_named("finish").unwrap();
        let err = a.fire(finish).unwrap_err();
        assert_eq!(err.state, "init");
        assert_eq!(err.event, "finish");
        assert!(err.to_string().contains("not enabled"));
    }

    #[test]
    #[should_panic(expected = "duplicate state")]
    fn duplicate_states_rejected() {
        let _ = TaskAgent::builder("x").state("a").state("a");
    }

    #[test]
    fn render_contains_attrs() {
        let mut t = SymbolTable::new();
        let a = simple(&mut t);
        let r = a.render();
        assert!(r.contains("triggerable"), "{r}");
        assert!(r.contains("(initial)"), "{r}");
        assert!(r.contains("(terminal)"), "{r}");
    }
}
