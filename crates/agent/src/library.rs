//! The common task agents of Figure 1, as a reusable library.
//!
//! The paper's Figure 1 sketches two archetypes: a *typical application*
//! (start → … → finish, possibly failing) and an *RDA transaction*
//! (start, then commit or abort). We add the compensatable and two-phase
//! variants that the workflow examples (Example 4) and the extended
//! transaction models of [3, 8] rely on.

use crate::skeleton::{EventAttrs, TaskAgent};
use event_algebra::SymbolTable;

/// A typical (non-transactional) application: `start` then `finish` or
/// `fail`. `fail` is immediate — the scheduler cannot delay or reject it.
pub fn typical_application(name: &str, table: &mut SymbolTable) -> TaskAgent {
    TaskAgent::builder(name)
        .state("initial")
        .state("executing")
        .state("done")
        .state("failed")
        .event("start", EventAttrs::triggerable())
        .event("finish", EventAttrs::controllable())
        .event("fail", EventAttrs::immediate())
        .transition("initial", "start", "executing")
        .transition("executing", "finish", "done")
        .transition("executing", "fail", "failed")
        .build(table)
}

/// An RDA (remote database access) transaction: `start`, then `commit`
/// (controllable — permission is requested) or `abort` (immediate — the
/// scheduler has no choice but to accept it, Section 3.3).
pub fn rda_transaction(name: &str, table: &mut SymbolTable) -> TaskAgent {
    TaskAgent::builder(name)
        .state("initial")
        .state("active")
        .state("committed")
        .state("aborted")
        .event("start", EventAttrs::triggerable())
        .event("commit", EventAttrs::controllable())
        .event("abort", EventAttrs::immediate())
        .transition("initial", "start", "active")
        .transition("active", "commit", "committed")
        .transition("active", "abort", "aborted")
        .build(table)
}

/// A compensatable task: after committing, a compensating step can undo
/// its effect (Example 4's `book`/`cancel` pair collapsed into one agent).
pub fn compensatable_task(name: &str, table: &mut SymbolTable) -> TaskAgent {
    TaskAgent::builder(name)
        .state("initial")
        .state("active")
        .state("committed")
        .state("aborted")
        .state("compensated")
        .event("start", EventAttrs::triggerable())
        .event("commit", EventAttrs::controllable())
        .event("abort", EventAttrs::immediate())
        .event("compensate", EventAttrs::triggerable())
        .transition("initial", "start", "active")
        .transition("active", "commit", "committed")
        .transition("active", "abort", "aborted")
        .transition("committed", "compensate", "compensated")
        .build(table)
}

/// A transaction with a visible precommit (prepared) state — the shape a
/// two-phase commit participant exposes. The paper's travel example is
/// motivated by databases that *lack* this state.
pub fn two_phase_participant(name: &str, table: &mut SymbolTable) -> TaskAgent {
    TaskAgent::builder(name)
        .state("initial")
        .state("active")
        .state("prepared")
        .state("committed")
        .state("aborted")
        .event("start", EventAttrs::triggerable())
        .event("prepare", EventAttrs::controllable())
        .event("commit", EventAttrs::controllable())
        .event("abort", EventAttrs::immediate())
        .transition("initial", "start", "active")
        .transition("active", "prepare", "prepared")
        .transition("active", "abort", "aborted")
        .transition("prepared", "commit", "committed")
        .transition("prepared", "abort", "aborted")
        .build(table)
}

/// A task that loops: each iteration enters and exits a critical section
/// (Example 13's shape). The loop illustrates "arbitrary tasks": the
/// skeleton has a cycle, so event *types* recur while event *instances*
/// are distinguished by the per-agent counter (Section 5).
pub fn looping_task(name: &str, table: &mut SymbolTable) -> TaskAgent {
    TaskAgent::builder(name)
        .state("idle")
        .state("critical")
        .state("stopped")
        .event("enter", EventAttrs::controllable())
        .event("exit", EventAttrs::controllable())
        .event("stop", EventAttrs::immediate())
        .transition("idle", "enter", "critical")
        .transition("critical", "exit", "idle")
        .transition("idle", "stop", "stopped")
        .build(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rda_transaction_shape() {
        let mut t = SymbolTable::new();
        let mut a = rda_transaction("buy", &mut t);
        let start = a.event_named("start").unwrap();
        let commit = a.event_named("commit").unwrap();
        let abort = a.event_named("abort").unwrap();
        a.fire(start).unwrap();
        // Both commit and abort available from active.
        assert_eq!(a.available().len(), 2);
        a.fire(commit).unwrap();
        assert!(a.is_terminal());
        // Abort path:
        let mut b = rda_transaction("buy2", &mut t);
        b.fire(start).unwrap();
        b.fire(abort).unwrap();
        assert!(b.is_terminal());
        // Attributes: commit controllable, abort immediate.
        assert!(a.events[commit].attrs.controllable);
        assert!(!a.events[abort].attrs.controllable);
        assert!(!a.events[abort].attrs.rejectable);
        assert!(a.events[start].attrs.triggerable);
    }

    #[test]
    fn typical_application_shape() {
        let mut t = SymbolTable::new();
        let mut a = typical_application("app", &mut t);
        a.fire(a.event_named("start").unwrap()).unwrap();
        a.fire(a.event_named("fail").unwrap()).unwrap();
        assert!(a.is_terminal());
    }

    #[test]
    fn compensatable_task_can_undo() {
        let mut t = SymbolTable::new();
        let mut a = compensatable_task("book", &mut t);
        a.fire(a.event_named("start").unwrap()).unwrap();
        a.fire(a.event_named("commit").unwrap()).unwrap();
        assert!(!a.is_terminal(), "compensation still available");
        a.fire(a.event_named("compensate").unwrap()).unwrap();
        assert!(a.is_terminal());
    }

    #[test]
    fn two_phase_has_visible_precommit() {
        let mut t = SymbolTable::new();
        let mut a = two_phase_participant("p", &mut t);
        a.fire(a.event_named("start").unwrap()).unwrap();
        a.fire(a.event_named("prepare").unwrap()).unwrap();
        assert_eq!(a.states[a.current], "prepared");
        // Abort still possible from prepared.
        assert!(a.can_fire(a.event_named("abort").unwrap()));
    }

    #[test]
    fn looping_task_cycles() {
        let mut t = SymbolTable::new();
        let mut a = looping_task("t1", &mut t);
        let enter = a.event_named("enter").unwrap();
        let exit = a.event_named("exit").unwrap();
        for _ in 0..5 {
            a.fire(enter).unwrap();
            a.fire(exit).unwrap();
        }
        assert_eq!(a.states[a.current], "idle");
        a.fire(a.event_named("stop").unwrap()).unwrap();
        assert!(a.is_terminal());
    }

    #[test]
    fn distinct_agents_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = rda_transaction("x", &mut t);
        let b = rda_transaction("y", &mut t);
        assert_ne!(a.literal_of(0), b.literal_of(0));
        assert_eq!(t.len(), 6);
    }
}
