//! Task agents: the interface between autonomous tasks and the event
//! scheduler (Section 2 of Singh, ICDE 1996).
//!
//! Agents expose only a coarse significant-event skeleton of their task —
//! states and transitions relevant for coordination. Controllable events
//! request permission; immediate events (like `abort`) merely inform the
//! scheduler; triggerable events (like `start`) can be caused by the
//! scheduler proactively. The [`library`] module provides the agents of
//! Figure 1 plus the variants used by the workflow examples.

#![warn(missing_docs)]

pub mod library;
mod skeleton;

pub use skeleton::{
    AgentEvent, EventAttrs, EventIx, IllegalTransition, StateIx, TaskAgent, TaskAgentBuilder,
};
