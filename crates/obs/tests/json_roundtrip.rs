//! Property: a recording — events of every span kind, parent edges, and
//! the metrics snapshot — survives the JSON round trip identically, so
//! the happens-before DAG reconstructed by `wftrace` from a trace file is
//! the DAG the run produced.
//!
//! Strategies stay plain integer ranges (`seed in ...`) with a hand-rolled
//! splitmix generator deriving the structure, so the property runs under
//! both real proptest and the offline stub.

use obs::recording::Dag;
use obs::{Fact, MetricsRegistry, ObsLit, Recording, SpanId, SpanKind, TraceEvent, Verdict};
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn lit(r: &mut u64) -> ObsLit {
    ObsLit((splitmix(r) % 12) as u32)
}

fn kind(r: &mut u64) -> SpanKind {
    let a = (splitmix(r) % 6) as u32;
    let b = (splitmix(r) % 6) as u32;
    let seq = splitmix(r) % 1000;
    match splitmix(r) % 28 {
        0 => SpanKind::MsgSend { from: a, to: b, label: "announce".into() },
        1 => SpanKind::MsgDeliver { from: a, to: b, label: "attempt".into() },
        2 => SpanKind::FaultDrop { from: a, to: b },
        3 => SpanKind::FaultDuplicate { from: a, to: b },
        4 => SpanKind::FaultDelay { from: a, to: b, by: seq },
        5 => SpanKind::PartitionDrop { from: a, to: b },
        6 => SpanKind::CrashDrop { node: a },
        7 => SpanKind::Restart { node: a },
        8 => SpanKind::EnvSend { to: b, seq },
        9 => SpanKind::EnvRetransmit { to: b, seq, attempt: a + 1 },
        10 => SpanKind::EnvAck { peer: b, seq },
        11 => SpanKind::EnvDedupDrop { from: a, seq },
        12 => SpanKind::EnvGiveUp { to: b, seq },
        13 => SpanKind::Attempt { lit: lit(r) },
        14 => {
            let verdict = match splitmix(r) % 3 {
                0 => Verdict::Enabled,
                1 => Verdict::Parked,
                _ => Verdict::Dead,
            };
            let facts = (0..splitmix(r) % 4)
                .map(|_| Fact { seq: splitmix(r) % 100, lit: lit(r), at: splitmix(r) % 50 })
                .collect();
            SpanKind::GuardEval {
                lit: lit(r),
                verdict,
                residual: (splitmix(r) % 9000) as u32,
                facts,
            }
        }
        15 => SpanKind::DepStep {
            dep: a,
            input: lit(r),
            state: (splitmix(r) % 100) as u32,
            live: splitmix(r).is_multiple_of(2),
        },
        16 => SpanKind::FactApplied { lit: lit(r), seq },
        17 => SpanKind::Occurred { lit: lit(r), seq, by_acceptance: splitmix(r).is_multiple_of(2) },
        18 => SpanKind::Parked { lit: lit(r) },
        19 => SpanKind::Rejected { lit: lit(r) },
        20 => SpanKind::Triggered { lit: lit(r) },
        21 => SpanKind::PromiseOpen { lit: lit(r), for_lit: lit(r) },
        22 => SpanKind::PromiseGrant { lit: lit(r), to: b },
        23 => SpanKind::PromiseDeny { lit: lit(r), to: b },
        24 => SpanKind::PromiseAbort { lit: lit(r) },
        25 => SpanKind::PromiseCommit { lit: lit(r) },
        26 => SpanKind::WalAppend { seq },
        _ => SpanKind::WalReplay { entries: seq },
    }
}

fn recording(seed: u64) -> Recording {
    let r = &mut { seed };
    let n_events = 1 + (splitmix(r) % 40) as usize;
    let mut at = 0u64;
    let events: Vec<TraceEvent> = (0..n_events as u64)
        .map(|id| {
            at += splitmix(r) % 3;
            let parent = if id > 0 && !splitmix(r).is_multiple_of(3) {
                Some(SpanId(splitmix(r) % id))
            } else {
                None
            };
            let node = (splitmix(r) % 5) as u32;
            TraceEvent { id: SpanId(id), parent, at, node, site: node % 3, kind: kind(r) }
        })
        .collect();
    let reg = MetricsRegistry::new();
    for _ in 0..splitmix(r) % 6 {
        reg.add("net.sent", &[("site", "0")], splitmix(r) % 50);
        reg.set_gauge("dep.satisfied", &[("dep", "1")], (splitmix(r) % 3) as i64 - 1);
        reg.observe("net.latency", &[], splitmix(r) % (1 << 20));
    }
    Recording {
        workflow: format!("wf-{}", seed % 97),
        symbols: (0..6).map(|i| format!("e{i}")).collect(),
        dropped: splitmix(r) % 3,
        sampled_out: splitmix(r) % 3,
        events,
        metrics: reg.snapshot(),
    }
}

proptest! {
    #[test]
    fn recording_round_trips_through_json(seed in 0u64..u64::MAX / 2) {
        let rec = recording(seed);
        let back = Recording::parse(&rec.to_json_string())
            .expect("serialized recording must parse");
        prop_assert_eq!(&back, &rec);

        // The reconstructed DAG answers reachability identically: parent
        // edges and per-node program order survive the round trip.
        let dag_a = Dag::new(&rec);
        let dag_b = Dag::new(&back);
        let n = rec.events.len() as u64;
        let mut s = seed ^ 0xD1A6;
        for _ in 0..16 {
            let a = SpanId(splitmix(&mut s) % n);
            let b = SpanId(splitmix(&mut s) % n);
            prop_assert_eq!(dag_a.precedes(a, b), dag_b.precedes(a, b));
        }
    }

    #[test]
    fn metrics_snapshot_round_trips(seed in 0u64..u64::MAX / 2) {
        let rec = recording(seed);
        let snap = rec.metrics.clone();
        let back = obs::MetricsSnapshot::from_json(&snap.to_json())
            .expect("serialized snapshot must parse");
        prop_assert_eq!(back, snap);
    }
}
