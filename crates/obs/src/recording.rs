//! A completed recording: the event DAG plus metrics, its JSON codec, and
//! the causal-consistency audit.
//!
//! # The happens-before DAG invariant
//!
//! A recording's events form a DAG under two edge families:
//!
//! 1. **parent edges** — each record may name the span in scope when it
//!    was made (the delivery being handled, the guard evaluation that
//!    fired, ...);
//! 2. **program order** — a node's records are totally ordered by span id
//!    (ids come from one global monotone counter and each node is handled
//!    sequentially by the simulator).
//!
//! Both edge families point strictly backwards in id order, so the union
//! is acyclic. The causal audit ([`causal_audit`]) checks the semantic
//! invariant on top: every fact a guard evaluation consumed has an
//! establishing `Occurred` record that *precedes* the consumer in this
//! DAG. Program order is a legitimate happens-before edge even across a
//! crash–restart, because the WAL replays exactly the messages whose
//! deliveries were recorded before the crash.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::span::{Fact, ObsLit, SpanId, SpanKind, TraceEvent, Verdict};
use std::collections::{HashMap, HashSet};

/// A serialized run: identity, the event DAG, and the metrics snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Recording {
    /// Workflow name from the spec.
    pub workflow: String,
    /// Symbol names indexed by symbol id (renders [`ObsLit`]s).
    pub symbols: Vec<String>,
    /// Records overwritten by the ring buffer before the snapshot.
    pub dropped: u64,
    /// Non-safety records elided by sampling ([`RecordConfig::sample`]);
    /// they consumed span ids but recorded no payload.
    ///
    /// [`RecordConfig::sample`]: crate::RecordConfig::sample
    pub sampled_out: u64,
    /// The recorded events in id order.
    pub events: Vec<TraceEvent>,
    /// Metrics captured at the end of the run.
    pub metrics: MetricsSnapshot,
}

impl Recording {
    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workflow", Json::str(&self.workflow)),
            ("symbols", Json::Arr(self.symbols.iter().map(|s| Json::str(s)).collect())),
            ("dropped", Json::u64(self.dropped)),
            ("sampled_out", Json::u64(self.sampled_out)),
            ("events", Json::Arr(self.events.iter().map(event_to_json).collect())),
            ("metrics", self.metrics.to_json()),
        ])
    }

    /// Serialize to a JSON document string.
    pub fn to_json_string(&self) -> String {
        let mut s = self.to_json().to_string_compact();
        s.push('\n');
        s
    }

    /// Inverse of [`Recording::to_json`].
    pub fn from_json(v: &Json) -> Result<Recording, String> {
        let workflow = v
            .get("workflow")
            .and_then(Json::as_str)
            .ok_or("recording missing workflow")?
            .to_string();
        let symbols = v
            .get("symbols")
            .and_then(Json::as_arr)
            .ok_or("recording missing symbols")?
            .iter()
            .map(|s| s.as_str().map(str::to_string).ok_or("symbol must be a string"))
            .collect::<Result<Vec<_>, _>>()?;
        let dropped = v.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        // Absent in recordings from before sampling existed — they are
        // exact by construction.
        let sampled_out = v.get("sampled_out").and_then(Json::as_u64).unwrap_or(0);
        let mut events = v
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("recording missing events")?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        events.sort_by_key(|e| e.id);
        let metrics = match v.get("metrics") {
            Some(m) => MetricsSnapshot::from_json(m)?,
            None => MetricsSnapshot::default(),
        };
        Ok(Recording { workflow, symbols, dropped, sampled_out, events, metrics })
    }

    /// Parse a JSON document string.
    pub fn parse(src: &str) -> Result<Recording, String> {
        Recording::from_json(&Json::parse(src)?)
    }

    /// The event with span id `id`, if it is still in the recording.
    pub fn event(&self, id: SpanId) -> Option<&TraceEvent> {
        self.events.binary_search_by_key(&id, |e| e.id).ok().map(|i| &self.events[i])
    }

    /// Resolve an event name (`commit` / `~commit`, also accepting the
    /// spec's `agent::event` form for the table's `agent.event` symbols)
    /// to a literal.
    pub fn lit_by_name(&self, name: &str) -> Option<ObsLit> {
        let (neg, base) = match name.strip_prefix('~') {
            Some(rest) => (true, rest),
            None => (false, name),
        };
        let dotted = base.replace("::", ".");
        let sym = self.symbols.iter().position(|s| *s == dotted)? as u32;
        Some(if neg { ObsLit::neg(sym) } else { ObsLit::pos(sym) })
    }

    /// The `Occurred` record establishing fact `(lit, seq)`.
    pub fn establisher(&self, lit: ObsLit, seq: u64) -> Option<&TraceEvent> {
        self.events.iter().find(|e| {
            matches!(&e.kind, SpanKind::Occurred { lit: l, seq: s, .. } if *l == lit && *s == seq)
        })
    }
}

/// Reachability queries over a recording's happens-before DAG.
///
/// Edges are parent links plus per-node program order; both kinds point
/// to strictly smaller ids, so backward search is bounded.
pub struct Dag<'a> {
    rec: &'a Recording,
    /// For each event (by position), the previous event on the same node.
    prev_on_node: Vec<Option<SpanId>>,
    index: HashMap<SpanId, usize>,
}

impl<'a> Dag<'a> {
    /// Build the program-order index for `rec`.
    pub fn new(rec: &'a Recording) -> Dag<'a> {
        let mut last: HashMap<u32, SpanId> = HashMap::new();
        let mut prev_on_node = Vec::with_capacity(rec.events.len());
        let mut index = HashMap::with_capacity(rec.events.len());
        for (i, e) in rec.events.iter().enumerate() {
            prev_on_node.push(last.get(&e.node).copied());
            last.insert(e.node, e.id);
            index.insert(e.id, i);
        }
        Dag { rec, prev_on_node, index }
    }

    /// A concrete happens-before path from `a` to `b` (inclusive), or
    /// `None` if `a` does not precede `b`. Each consecutive pair in the
    /// returned path is one DAG edge (a parent link or one step of
    /// per-node program order), so the whole path can be re-verified
    /// edge-by-edge with [`Dag::precedes`].
    pub fn path(&self, a: SpanId, b: SpanId) -> Option<Vec<SpanId>> {
        if a >= b {
            return None;
        }
        // Backward BFS from `b`; `came_from[p] = successor we reached p
        // from`, so the forward path falls out by following successors.
        let mut came_from: HashMap<SpanId, SpanId> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([b]);
        'search: while let Some(cur) = queue.pop_front() {
            let Some(&i) = self.index.get(&cur) else { continue };
            for pred in [self.rec.events[i].parent, self.prev_on_node[i]].into_iter().flatten() {
                // Backward edges strictly decrease ids: below `a` nothing
                // can lead back to it.
                if pred < a || came_from.contains_key(&pred) {
                    continue;
                }
                came_from.insert(pred, cur);
                if pred == a {
                    break 'search;
                }
                queue.push_back(pred);
            }
        }
        came_from.contains_key(&a).then(|| {
            let mut path = vec![a];
            let mut cur = a;
            while cur != b {
                cur = came_from[&cur];
                path.push(cur);
            }
            path
        })
    }

    /// `true` if `a` strictly happens-before `b` in the DAG.
    pub fn precedes(&self, a: SpanId, b: SpanId) -> bool {
        if a >= b {
            return false;
        }
        let mut seen: HashSet<SpanId> = HashSet::new();
        let mut stack = vec![b];
        while let Some(cur) = stack.pop() {
            let Some(&i) = self.index.get(&cur) else { continue };
            for pred in [self.rec.events[i].parent, self.prev_on_node[i]].into_iter().flatten() {
                if pred == a {
                    return true;
                }
                // Backward edges strictly decrease ids: below `a` nothing
                // can lead back to it.
                if pred > a && seen.insert(pred) {
                    stack.push(pred);
                }
            }
        }
        false
    }
}

/// Check the causal-consistency invariant: the parent edges form a
/// well-founded DAG (no dangling references, no forward edges — which
/// would admit cycles — and no child stamped earlier than its parent),
/// and on top of that every fact consumed by a guard evaluation or fact
/// application has an establishing `Occurred` record that precedes the
/// consumer in the happens-before DAG.
///
/// Returns human-readable violations (empty = green). Facts and parents
/// whose records were overwritten by the ring buffer are excused when
/// `rec.dropped > 0`. A dangling *parent* is additionally excused when
/// `rec.sampled_out > 0` (the parent may have been a sampled-out
/// non-safety span), but a missing *establisher* is never excused by
/// sampling: establishers are `Occurred` records, a safety kind the
/// sampler always keeps, so that half of the audit keeps its full
/// strength on sampled recordings.
///
/// The establisher-precedes-consumer check degrades gracefully on a
/// sampled recording: the relay spans (`msg_send`/`msg_deliver`) that
/// carry a cross-node happens-before path are non-safety kinds the
/// sampler may elide, so when a path cannot be traced and
/// `rec.sampled_out > 0` the audit falls back to timestamp order
/// between the two safety spans themselves — which are exact by
/// construction — and flags only `consumer.at < establisher.at`.
pub fn causal_audit(rec: &Recording) -> Vec<String> {
    let dag = Dag::new(rec);
    let mut violations = Vec::new();
    for e in &rec.events {
        let Some(p) = e.parent else { continue };
        // A parent edge must point strictly backwards in id order: ids
        // come from one monotone counter, so a forward (or self) edge is
        // fabricated and would let the "DAG" contain a cycle.
        if p >= e.id {
            violations
                .push(format!("parent edge {} → {p} points forward in id order (cycle)", e.id));
            continue;
        }
        match rec.event(p) {
            None => {
                if rec.dropped == 0 && rec.sampled_out == 0 {
                    violations.push(format!("{} names a dangling parent {p}", e.id));
                }
            }
            Some(pe) => {
                if e.at < pe.at {
                    violations.push(format!(
                        "{} at t={} is stamped earlier than its parent {p} at t={}",
                        e.id, e.at, pe.at
                    ));
                }
            }
        }
    }
    let mut check = |consumer: &TraceEvent, lit: ObsLit, seq: u64| match rec.establisher(lit, seq) {
        None => {
            if rec.dropped == 0 {
                violations.push(format!(
                    "fact {}@{seq} consumed by {} (node {}) has no establishing record",
                    lit.name(&rec.symbols),
                    consumer.id,
                    consumer.node
                ));
            }
        }
        Some(est) => {
            if est.id != consumer.id && !dag.precedes(est.id, consumer.id) {
                // A sampled recording may have elided the relay spans
                // that carried this cross-node path; both endpoints are
                // safety spans with exact stamps, so fall back to
                // timestamp order (see the doc comment).
                if rec.sampled_out == 0 || consumer.at < est.at {
                    violations.push(format!(
                        "establisher {} of fact {}@{seq} does not precede consumer {} (node {})",
                        est.id,
                        lit.name(&rec.symbols),
                        consumer.id,
                        consumer.node
                    ));
                }
            }
        }
    };
    for e in &rec.events {
        match &e.kind {
            SpanKind::GuardEval { facts, .. } => {
                for f in facts {
                    check(e, f.lit, f.seq);
                }
            }
            SpanKind::FactApplied { lit, seq } => check(e, *lit, *seq),
            _ => {}
        }
    }
    violations
}

fn opt_u64(v: Option<SpanId>) -> Json {
    match v {
        Some(id) => Json::u64(id.0),
        None => Json::Null,
    }
}

fn event_to_json(e: &TraceEvent) -> Json {
    let mut pairs = vec![
        ("id", Json::u64(e.id.0)),
        ("parent", opt_u64(e.parent)),
        ("at", Json::u64(e.at)),
        ("node", Json::u64(e.node as u64)),
        ("site", Json::u64(e.site as u64)),
        ("k", Json::str(e.kind.tag())),
    ];
    pairs.extend(kind_fields(&e.kind));
    Json::obj(pairs)
}

fn kind_fields(kind: &SpanKind) -> Vec<(&'static str, Json)> {
    let lit = |l: &ObsLit| Json::u64(l.0 as u64);
    match kind {
        SpanKind::MsgSend { from, to, label } | SpanKind::MsgDeliver { from, to, label } => vec![
            ("from", Json::u64(*from as u64)),
            ("to", Json::u64(*to as u64)),
            ("label", Json::str(label)),
        ],
        SpanKind::FaultDrop { from, to }
        | SpanKind::FaultDuplicate { from, to }
        | SpanKind::PartitionDrop { from, to } => {
            vec![("from", Json::u64(*from as u64)), ("to", Json::u64(*to as u64))]
        }
        SpanKind::FaultDelay { from, to, by } => vec![
            ("from", Json::u64(*from as u64)),
            ("to", Json::u64(*to as u64)),
            ("by", Json::u64(*by)),
        ],
        SpanKind::CrashDrop { node } | SpanKind::Restart { node } => {
            vec![("n", Json::u64(*node as u64))]
        }
        SpanKind::EnvSend { to, seq } | SpanKind::EnvGiveUp { to, seq } => {
            vec![("to", Json::u64(*to as u64)), ("seq", Json::u64(*seq))]
        }
        SpanKind::EnvRetransmit { to, seq, attempt } => vec![
            ("to", Json::u64(*to as u64)),
            ("seq", Json::u64(*seq)),
            ("attempt", Json::u64(*attempt as u64)),
        ],
        SpanKind::EnvAck { peer, seq } => {
            vec![("peer", Json::u64(*peer as u64)), ("seq", Json::u64(*seq))]
        }
        SpanKind::EnvDedupDrop { from, seq } => {
            vec![("from", Json::u64(*from as u64)), ("seq", Json::u64(*seq))]
        }
        SpanKind::Attempt { lit: l }
        | SpanKind::Parked { lit: l }
        | SpanKind::Rejected { lit: l }
        | SpanKind::Triggered { lit: l }
        | SpanKind::PromiseAbort { lit: l }
        | SpanKind::PromiseCommit { lit: l } => vec![("lit", lit(l))],
        SpanKind::GuardEval { lit: l, verdict, residual, facts } => vec![
            ("lit", lit(l)),
            ("verdict", Json::str(verdict.label())),
            ("residual", Json::u64(*residual as u64)),
            (
                "facts",
                Json::Arr(
                    facts
                        .iter()
                        .map(|f| {
                            Json::obj(vec![
                                ("seq", Json::u64(f.seq)),
                                ("lit", Json::u64(f.lit.0 as u64)),
                                ("at", Json::u64(f.at)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ],
        SpanKind::DepStep { dep, input, state, live } => vec![
            ("dep", Json::u64(*dep as u64)),
            ("input", lit(input)),
            ("state", Json::u64(*state as u64)),
            ("live", Json::Bool(*live)),
        ],
        SpanKind::FactApplied { lit: l, seq } => vec![("lit", lit(l)), ("seq", Json::u64(*seq))],
        SpanKind::Occurred { lit: l, seq, by_acceptance } => {
            vec![("lit", lit(l)), ("seq", Json::u64(*seq)), ("acc", Json::Bool(*by_acceptance))]
        }
        SpanKind::PromiseOpen { lit: l, for_lit } => {
            vec![("lit", lit(l)), ("for", lit(for_lit))]
        }
        SpanKind::PromiseGrant { lit: l, to } | SpanKind::PromiseDeny { lit: l, to } => {
            vec![("lit", lit(l)), ("to", Json::u64(*to as u64))]
        }
        SpanKind::WalAppend { seq } => vec![("seq", Json::u64(*seq))],
        SpanKind::WalReplay { entries } => vec![("entries", Json::u64(*entries))],
    }
}

fn event_from_json(v: &Json) -> Result<TraceEvent, String> {
    let u64_field = |name: &str| -> Result<u64, String> {
        v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("event missing {name}"))
    };
    let u32_field = |name: &str| -> Result<u32, String> {
        u64_field(name).and_then(|n| u32::try_from(n).map_err(|_| format!("{name} overflows u32")))
    };
    let lit_field = |name: &str| -> Result<ObsLit, String> { Ok(ObsLit(u32_field(name)?)) };
    let bool_field = |name: &str| -> Result<bool, String> {
        v.get(name).and_then(Json::as_bool).ok_or_else(|| format!("event missing {name}"))
    };
    let str_field = |name: &str| -> Result<String, String> {
        v.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("event missing {name}"))
    };
    let id = SpanId(u64_field("id")?);
    let parent = match v.get("parent") {
        Some(Json::Null) | None => None,
        Some(p) => Some(SpanId(p.as_u64().ok_or("bad parent")?)),
    };
    let at = u64_field("at")?;
    let node = u32_field("node")?;
    let site = u32_field("site")?;
    let tag = str_field("k")?;
    let kind = match tag.as_str() {
        "msg_send" => SpanKind::MsgSend {
            from: u32_field("from")?,
            to: u32_field("to")?,
            label: str_field("label")?.into(),
        },
        "msg_deliver" => SpanKind::MsgDeliver {
            from: u32_field("from")?,
            to: u32_field("to")?,
            label: str_field("label")?.into(),
        },
        "fault_drop" => SpanKind::FaultDrop { from: u32_field("from")?, to: u32_field("to")? },
        "fault_dup" => SpanKind::FaultDuplicate { from: u32_field("from")?, to: u32_field("to")? },
        "fault_delay" => SpanKind::FaultDelay {
            from: u32_field("from")?,
            to: u32_field("to")?,
            by: u64_field("by")?,
        },
        "partition_drop" => {
            SpanKind::PartitionDrop { from: u32_field("from")?, to: u32_field("to")? }
        }
        "crash_drop" => SpanKind::CrashDrop { node: u32_field("n")? },
        "restart" => SpanKind::Restart { node: u32_field("n")? },
        "env_send" => SpanKind::EnvSend { to: u32_field("to")?, seq: u64_field("seq")? },
        "env_rtx" => SpanKind::EnvRetransmit {
            to: u32_field("to")?,
            seq: u64_field("seq")?,
            attempt: u32_field("attempt")?,
        },
        "env_ack" => SpanKind::EnvAck { peer: u32_field("peer")?, seq: u64_field("seq")? },
        "env_dedup" => SpanKind::EnvDedupDrop { from: u32_field("from")?, seq: u64_field("seq")? },
        "env_giveup" => SpanKind::EnvGiveUp { to: u32_field("to")?, seq: u64_field("seq")? },
        "attempt" => SpanKind::Attempt { lit: lit_field("lit")? },
        "guard_eval" => {
            let verdict =
                Verdict::from_label(&str_field("verdict")?).ok_or("bad guard_eval verdict")?;
            let facts = v
                .get("facts")
                .and_then(Json::as_arr)
                .ok_or("guard_eval missing facts")?
                .iter()
                .map(|f| -> Result<Fact, String> {
                    Ok(Fact {
                        seq: f.get("seq").and_then(Json::as_u64).ok_or("fact seq")?,
                        lit: ObsLit(
                            f.get("lit")
                                .and_then(Json::as_u64)
                                .and_then(|n| u32::try_from(n).ok())
                                .ok_or("fact lit")?,
                        ),
                        at: f.get("at").and_then(Json::as_u64).ok_or("fact at")?,
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            SpanKind::GuardEval {
                lit: lit_field("lit")?,
                verdict,
                residual: u32_field("residual")?,
                facts,
            }
        }
        "dep_step" => SpanKind::DepStep {
            dep: u32_field("dep")?,
            input: lit_field("input")?,
            state: u32_field("state")?,
            live: bool_field("live")?,
        },
        "fact_applied" => SpanKind::FactApplied { lit: lit_field("lit")?, seq: u64_field("seq")? },
        "occurred" => SpanKind::Occurred {
            lit: lit_field("lit")?,
            seq: u64_field("seq")?,
            by_acceptance: bool_field("acc")?,
        },
        "parked" => SpanKind::Parked { lit: lit_field("lit")? },
        "rejected" => SpanKind::Rejected { lit: lit_field("lit")? },
        "triggered" => SpanKind::Triggered { lit: lit_field("lit")? },
        "promise_open" => {
            SpanKind::PromiseOpen { lit: lit_field("lit")?, for_lit: lit_field("for")? }
        }
        "promise_grant" => SpanKind::PromiseGrant { lit: lit_field("lit")?, to: u32_field("to")? },
        "promise_deny" => SpanKind::PromiseDeny { lit: lit_field("lit")?, to: u32_field("to")? },
        "promise_abort" => SpanKind::PromiseAbort { lit: lit_field("lit")? },
        "promise_commit" => SpanKind::PromiseCommit { lit: lit_field("lit")? },
        "wal_append" => SpanKind::WalAppend { seq: u64_field("seq")? },
        "wal_replay" => SpanKind::WalReplay { entries: u64_field("entries")? },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(TraceEvent { id, parent, at, node, site, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, parent: Option<u64>, node: u32, kind: SpanKind) -> TraceEvent {
        TraceEvent { id: SpanId(id), parent: parent.map(SpanId), at: id, node, site: node, kind }
    }

    fn sample() -> Recording {
        Recording {
            workflow: "travel".to_string(),
            symbols: vec!["buy.commit".to_string(), "book.commit".to_string()],
            dropped: 0,
            sampled_out: 0,
            events: vec![
                ev(0, None, 0, SpanKind::Attempt { lit: ObsLit::pos(0) }),
                ev(
                    1,
                    Some(0),
                    0,
                    SpanKind::Occurred { lit: ObsLit::pos(0), seq: 3, by_acceptance: false },
                ),
                ev(2, Some(1), 0, SpanKind::MsgSend { from: 0, to: 1, label: "announce".into() }),
                ev(
                    3,
                    Some(2),
                    1,
                    SpanKind::MsgDeliver { from: 0, to: 1, label: "announce".into() },
                ),
                ev(4, Some(3), 1, SpanKind::FactApplied { lit: ObsLit::pos(0), seq: 3 }),
                ev(
                    5,
                    Some(3),
                    1,
                    SpanKind::GuardEval {
                        lit: ObsLit::pos(1),
                        verdict: Verdict::Enabled,
                        residual: 7,
                        facts: vec![Fact { seq: 3, lit: ObsLit::pos(0), at: 1 }],
                    },
                ),
                ev(
                    6,
                    Some(5),
                    1,
                    SpanKind::Occurred { lit: ObsLit::pos(1), seq: 9, by_acceptance: false },
                ),
            ],
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let rec = sample();
        let back = Recording::parse(&rec.to_json_string()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn dag_precedence_follows_parents_and_program_order() {
        let rec = sample();
        let dag = Dag::new(&rec);
        // Parent chain: 0 → 1 → 2 → 3 → 5 → 6.
        assert!(dag.precedes(SpanId(0), SpanId(6)));
        assert!(dag.precedes(SpanId(2), SpanId(6)));
        // Program order on node 1: 4 precedes 6 even though 6's parent is 5.
        assert!(dag.precedes(SpanId(4), SpanId(6)));
        // Nothing precedes itself, and later never precedes earlier.
        assert!(!dag.precedes(SpanId(6), SpanId(6)));
        assert!(!dag.precedes(SpanId(6), SpanId(0)));
    }

    #[test]
    fn causal_audit_accepts_well_formed_run() {
        assert_eq!(causal_audit(&sample()), Vec::<String>::new());
    }

    #[test]
    fn causal_audit_flags_missing_establisher() {
        let mut rec = sample();
        // Remove the establishing occurrence of buy.commit@3.
        rec.events.retain(|e| e.id != SpanId(1));
        let violations = causal_audit(&rec);
        // Dropping #1 also dangles #2's parent edge, so the structural
        // pass adds a third diagnostic to fact_applied + guard_eval.
        assert_eq!(violations.len(), 3, "{violations:?}");
        assert!(violations.iter().any(|v| v.contains("dangling parent")), "{violations:?}");
        assert!(
            violations.iter().filter(|v| v.contains("no establishing record")).count() == 2,
            "{violations:?}"
        );
        // ...unless the ring dropped records, which excuses absences.
        rec.dropped = 1;
        assert!(causal_audit(&rec).is_empty());
    }

    #[test]
    fn causal_audit_flags_non_preceding_establisher() {
        let mut rec = sample();
        // Detach the establisher from the DAG and move it after the
        // consumer: same node trickery won't save it on another node.
        rec.events.retain(|e| e.id != SpanId(1));
        rec.events.push(ev(
            9,
            None,
            3,
            SpanKind::Occurred { lit: ObsLit::pos(0), seq: 3, by_acceptance: false },
        ));
        let violations = causal_audit(&rec);
        assert!(violations.iter().any(|v| v.contains("does not precede")), "{violations:?}");
    }

    #[test]
    fn dag_path_is_a_concrete_edge_verified_chain() {
        let rec = sample();
        let dag = Dag::new(&rec);
        let path = dag.path(SpanId(0), SpanId(6)).expect("0 precedes 6");
        assert_eq!(path.first(), Some(&SpanId(0)));
        assert_eq!(path.last(), Some(&SpanId(6)));
        assert!(path.len() >= 2);
        for pair in path.windows(2) {
            assert!(dag.precedes(pair[0], pair[1]), "{} !< {}", pair[0], pair[1]);
        }
        // Unrelated or reversed queries have no path.
        assert!(dag.path(SpanId(6), SpanId(0)).is_none());
        assert!(dag.path(SpanId(6), SpanId(6)).is_none());
    }

    #[test]
    fn causal_audit_flags_a_dangling_parent() {
        let mut rec = sample();
        // Parent 8 does not exist; the edge still points backwards, so
        // only the dangling-reference check can catch it.
        rec.events.push(ev(9, Some(8), 2, SpanKind::Attempt { lit: ObsLit::pos(1) }));
        let violations = causal_audit(&rec);
        assert!(violations.iter().any(|v| v.contains("dangling parent")), "{violations:?}");
        // A ring overflow excuses the absence — the parent may simply
        // have been evicted.
        rec.dropped = 1;
        assert!(causal_audit(&rec).is_empty());
    }

    #[test]
    fn causal_audit_flags_a_parent_cycle() {
        let mut rec = sample();
        // 7 → 8 → 7: the forward half of the cycle is the fabrication.
        rec.events.push(ev(7, Some(8), 2, SpanKind::Attempt { lit: ObsLit::pos(0) }));
        rec.events.push(ev(8, Some(7), 2, SpanKind::Attempt { lit: ObsLit::pos(1) }));
        let violations = causal_audit(&rec);
        assert!(violations.iter().any(|v| v.contains("points forward")), "{violations:?}");
        // Even with drops the cycle stays flagged: no eviction story
        // explains an id pointing at a later record.
        rec.dropped = 5;
        assert!(causal_audit(&rec).iter().any(|v| v.contains("points forward")));
    }

    #[test]
    fn causal_audit_flags_a_child_stamped_earlier_than_its_parent() {
        let mut rec = sample();
        // Parent 5 is stamped at t=5; a child claiming t=2 inverts time.
        rec.events.push(TraceEvent {
            id: SpanId(7),
            parent: Some(SpanId(5)),
            at: 2,
            node: 1,
            site: 1,
            kind: SpanKind::Attempt { lit: ObsLit::pos(1) },
        });
        let violations = causal_audit(&rec);
        assert!(
            violations.iter().any(|v| v.contains("stamped earlier than its parent")),
            "{violations:?}"
        );
    }

    #[test]
    fn sampling_excuses_dangling_parents_but_not_missing_establishers() {
        let mut rec = sample();
        // A dangling parent edge may point at a sampled-out span.
        rec.events.push(ev(9, Some(8), 2, SpanKind::Attempt { lit: ObsLit::pos(1) }));
        assert!(causal_audit(&rec).iter().any(|v| v.contains("dangling parent")));
        rec.sampled_out = 1;
        assert!(causal_audit(&rec).is_empty());
        // A missing establisher is a safety span: sampling never elides
        // those, so sampled_out must NOT excuse it.
        rec.events.retain(|e| e.id != SpanId(1));
        let violations = causal_audit(&rec);
        assert!(violations.iter().any(|v| v.contains("no establishing record")), "{violations:?}");
    }

    #[test]
    fn sampled_out_roundtrips_and_defaults_to_zero() {
        let mut rec = sample();
        rec.sampled_out = 17;
        let back = Recording::parse(&rec.to_json_string()).unwrap();
        assert_eq!(back.sampled_out, 17);
        // Recordings serialized before the field existed parse as exact.
        let mut v = rec.to_json();
        if let Json::Obj(map) = &mut v {
            map.remove("sampled_out");
        }
        let old = Recording::from_json(&v).unwrap();
        assert_eq!(old.sampled_out, 0);
    }

    #[test]
    fn lit_and_establisher_lookup() {
        let rec = sample();
        assert_eq!(rec.lit_by_name("book.commit"), Some(ObsLit::pos(1)));
        assert_eq!(rec.lit_by_name("~buy.commit"), Some(ObsLit::neg(0)));
        assert_eq!(rec.lit_by_name("nope"), None);
        assert_eq!(rec.establisher(ObsLit::pos(0), 3).unwrap().id, SpanId(1));
        assert!(rec.establisher(ObsLit::pos(0), 99).is_none());
    }
}
