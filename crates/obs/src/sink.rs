//! The streaming side of observability: an [`EventSink`] receives every
//! [`TraceEvent`] the instant it is recorded.
//!
//! The flight recorder's ring buffer is one sink among several — an
//! [`Obs`](crate::Obs) handle fans each event out to any number of
//! attached sinks (runtime monitors, test probes) before the recorder
//! stores it. Sinks see events in global id order, on the thread that
//! recorded them, while the run is still in flight; this is what lets an
//! online monitor flag a violation *as it happens* rather than from a
//! post-hoc dump.
//!
//! The zero-cost contract is unchanged: a disabled `Obs` (no recorder,
//! no sinks) never constructs a payload, so arming sinks costs nothing
//! until one is actually attached.

use crate::span::TraceEvent;

/// A consumer of the live trace-event stream.
///
/// Implementations must be cheap and non-blocking relative to the run
/// they observe: they are invoked synchronously from the recording call
/// sites. Interior mutability (a mutex over the sink's state) is the
/// expected pattern — the stream arrives via `&self`.
pub trait EventSink: Send + Sync {
    /// Observe one event. Events arrive in global span-id order.
    fn on_event(&self, event: &TraceEvent);
}

/// A sink that discards everything — useful as a placeholder and for
/// measuring the dispatch overhead in isolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn on_event(&self, _event: &TraceEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Obs, RecordConfig};
    use crate::span::{ObsLit, SpanKind};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[derive(Default)]
    struct Counter(AtomicU64);

    impl EventSink for Counter {
        fn on_event(&self, _event: &TraceEvent) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn sinks_see_every_event_the_recorder_keeps() {
        let counter = Arc::new(Counter::default());
        let obs =
            Obs::with_sinks(Some(RecordConfig::with_capacity(2)), vec![counter.clone() as Arc<_>]);
        for i in 0..5 {
            obs.rec(i, 0, 0, SpanKind::Attempt { lit: ObsLit::pos(i as u32) });
        }
        // The ring kept 2, but the stream saw all 5: sinks are not
        // subject to the recorder's retention policy.
        assert_eq!(obs.recorder().unwrap().len(), 2);
        assert_eq!(counter.0.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn sink_only_obs_is_enabled_without_a_ring() {
        let counter = Arc::new(Counter::default());
        let obs = Obs::with_sinks(None, vec![counter.clone() as Arc<_>]);
        assert!(obs.enabled());
        assert!(obs.recorder().is_none());
        let id = obs.rec(3, 1, 0, SpanKind::Attempt { lit: ObsLit::pos(0) });
        assert!(id.is_some());
        assert_eq!(counter.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn no_recorder_and_no_sinks_is_off() {
        let obs = Obs::with_sinks(None, Vec::new());
        assert!(!obs.enabled());
        assert_eq!(obs.rec(0, 0, 0, SpanKind::Attempt { lit: ObsLit::pos(0) }), None);
    }
}
