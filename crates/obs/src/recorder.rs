//! The [`Recorder`] trait, the ring-buffered [`FlightRecorder`], and the
//! cheap handles ([`Obs`], [`NodeObs`]) the runtime threads through itself.
//!
//! # Zero cost when disabled
//!
//! The runtime never talks to a recorder directly; it holds an [`Obs`]
//! handle, which is `Option` of the enabled machinery (span allocator,
//! optional ring, attached [`EventSink`]s) inside. Call sites guard
//! every record with `if obs.enabled() { ... }`, so with recording off
//! (the default) the hot path pays one predictable branch and constructs
//! no payloads — perfprobe numbers are unchanged within noise.
//!
//! # Causal parents
//!
//! The recorder keeps a *cursor*: the span currently in scope. The
//! simulator sets it to the `MsgDeliver` span before dispatching a
//! message handler and clears it afterwards, so every record made while
//! handling (guard evaluations, sends placed on the outbox, WAL appends)
//! is parented under the delivery that caused it. Parent edges plus
//! per-node program order make the record a happens-before DAG.

use crate::sink::EventSink;
use crate::span::{SpanId, SpanKind, Time, TraceEvent};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Configuration for an enabled flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordConfig {
    /// Ring-buffer capacity in events; the oldest records are overwritten
    /// once it fills (the drop count is kept).
    pub capacity: usize,
    /// Keep one in `sample` non-safety spans (`0` or `1` = keep all).
    /// Safety-relevant kinds ([`SpanKind::is_safety`]) are always kept
    /// exactly, so monitor verdicts and the establisher half of the
    /// causal audit are unaffected by any sampling rate. The decision is
    /// a deterministic hash of `(sample_seed, span id)`: the same run
    /// records the same spans.
    pub sample: u32,
    /// Seed mixed into the sampling hash, so fleets can decorrelate
    /// which spans their instances keep.
    pub sample_seed: u64,
}

impl Default for RecordConfig {
    fn default() -> RecordConfig {
        RecordConfig { capacity: 1 << 20, sample: 1, sample_seed: 0 }
    }
}

impl RecordConfig {
    /// Default config with the given ring capacity.
    pub fn with_capacity(capacity: usize) -> RecordConfig {
        RecordConfig { capacity, ..RecordConfig::default() }
    }

    /// This config with 1-in-`sample` sampling of non-safety spans under
    /// `seed`.
    pub fn sampled(self, sample: u32, seed: u64) -> RecordConfig {
        RecordConfig { sample, sample_seed: seed, ..self }
    }
}

/// `splitmix64` finalizer — the stateless hash behind the deterministic
/// sampling decision (and the same mixer `sim::parallel` uses for
/// latency jitter).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// How a record names its causal parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParentRef {
    /// Use the recorder's current cursor (the span in scope).
    #[default]
    Cursor,
    /// Force a root record (no parent).
    Root,
    /// An explicit parent span.
    Span(SpanId),
}

/// A sink for trace events.
pub trait Recorder {
    /// Append one record; returns its id, or `None` if recording is off.
    fn record_event(
        &self,
        at: Time,
        node: u32,
        site: u32,
        parent: ParentRef,
        kind: SpanKind,
    ) -> Option<SpanId>;

    /// Set the cursor (current causal scope).
    fn set_cursor(&self, _cursor: Option<SpanId>) {}

    /// The current cursor.
    fn cursor(&self) -> Option<SpanId> {
        None
    }

    /// `true` if records are actually kept. Call sites use this to skip
    /// payload construction entirely.
    fn enabled(&self) -> bool;
}

/// The default recorder: keeps nothing, reports itself disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record_event(
        &self,
        _at: Time,
        _node: u32,
        _site: u32,
        _parent: ParentRef,
        _kind: SpanKind,
    ) -> Option<SpanId> {
        None
    }

    fn enabled(&self) -> bool {
        false
    }
}

#[derive(Debug)]
struct RecorderInner {
    ring: VecDeque<TraceEvent>,
    capacity: usize,
    next_id: u64,
    dropped: u64,
    cursor: Option<SpanId>,
    sample: u32,
    sample_seed: u64,
    sampled_out: u64,
}

/// A shared, ring-buffered event sink.
///
/// Clones share the same buffer (`Arc<Mutex<..>>`), mirroring how the
/// journal is threaded through actors. Span ids come from one monotone
/// counter, so id order is global record order even after the ring wraps.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl FlightRecorder {
    /// A recorder with the given ring capacity (minimum 1).
    pub fn new(config: RecordConfig) -> FlightRecorder {
        let capacity = config.capacity.max(1);
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                // Pre-size the ring for typical runs, but never reserve a
                // huge default capacity up front.
                ring: VecDeque::with_capacity(capacity.min(1024)),
                capacity,
                next_id: 0,
                dropped: 0,
                cursor: None,
                sample: config.sample.max(1),
                sample_seed: config.sample_seed,
                sampled_out: 0,
            })),
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").ring.len()
    }

    /// `true` if nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records overwritten by the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("recorder lock").dropped
    }

    /// Non-safety records elided by this recorder's own sampling (the
    /// direct [`Recorder::record_event`] path; events pushed pre-stamped
    /// via the sink path were sampled upstream by [`Obs`]).
    pub fn sampled_out(&self) -> u64 {
        self.inner.lock().expect("recorder lock").sampled_out
    }

    /// Snapshot of all held records in id order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("recorder lock").ring.iter().cloned().collect()
    }

    /// Drain all held records in id order, leaving the ring empty.
    ///
    /// The end-of-run path uses this instead of [`FlightRecorder::events`]:
    /// assembling the final `Recording` would otherwise deep-clone every
    /// span (message labels, guard fact lists) a second time, which shows
    /// up directly in the recorder-overhead benchmark.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.lock().expect("recorder lock").ring).into()
    }

    /// Store an already-stamped event (the sink path: span ids were
    /// allocated upstream by the [`Obs`] handle). Evicts the oldest
    /// record and counts the drop when the ring is full.
    pub fn push(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("recorder lock");
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event);
    }

    /// Drain a whole delivery round's worth of already-stamped events
    /// into the ring under a single lock acquisition, evicting and
    /// counting drops exactly as per-event [`FlightRecorder::push`]
    /// would.
    pub fn push_batch(&self, events: &mut Vec<TraceEvent>) {
        let mut inner = self.inner.lock().expect("recorder lock");
        for event in events.drain(..) {
            if inner.ring.len() == inner.capacity {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(event);
        }
    }
}

impl EventSink for FlightRecorder {
    fn on_event(&self, event: &TraceEvent) {
        self.push(event.clone());
    }
}

impl Recorder for FlightRecorder {
    fn record_event(
        &self,
        at: Time,
        node: u32,
        site: u32,
        parent: ParentRef,
        kind: SpanKind,
    ) -> Option<SpanId> {
        let mut inner = self.inner.lock().expect("recorder lock");
        let id = SpanId(inner.next_id);
        inner.next_id += 1;
        if inner.sample > 1
            && !kind.is_safety()
            && !splitmix64(inner.sample_seed ^ id.0).is_multiple_of(inner.sample as u64)
        {
            inner.sampled_out += 1;
            return Some(id);
        }
        let parent = match parent {
            ParentRef::Cursor => inner.cursor,
            ParentRef::Root => None,
            ParentRef::Span(p) => Some(p),
        };
        if inner.ring.len() == inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(TraceEvent { id, parent, at, node, site, kind });
        Some(id)
    }

    fn set_cursor(&self, cursor: Option<SpanId>) {
        self.inner.lock().expect("recorder lock").cursor = cursor;
    }

    fn cursor(&self) -> Option<SpanId> {
        self.inner.lock().expect("recorder lock").cursor
    }

    fn enabled(&self) -> bool {
        true
    }
}

/// Span-id allocation, the causal cursor, and the open delivery-round
/// buffer, shared by all clones of one [`Obs`] handle. Ids come from a
/// single monotone counter, so id order is global record order across
/// every sink.
#[derive(Debug, Default)]
struct AllocState {
    next_id: u64,
    cursor: Option<SpanId>,
    /// Events of the delivery round currently open (between
    /// [`Obs::begin_round`] and [`Obs::end_round`]); `None` when no
    /// round is open and records flush individually.
    round: Option<Vec<TraceEvent>>,
    /// The drained round buffer, kept to reuse its allocation.
    spare: Vec<TraceEvent>,
    /// Non-safety spans elided by sampling. They still consumed a span
    /// id (so id allocation is sampling-invariant); only the payload was
    /// skipped.
    sampled_out: u64,
}

/// The enabled half of an [`Obs`] handle: the id allocator, the optional
/// ring buffer, and the attached live sinks.
#[derive(Clone)]
struct ObsInner {
    alloc: Arc<Mutex<AllocState>>,
    /// The ring-buffered recorder, when a post-hoc [`Recording`] is
    /// wanted. Kept as a direct handle (not a boxed sink) so the runtime
    /// can read `events()`/`dropped()` at the end of the run, and so the
    /// common record-only path moves the event instead of cloning it.
    ///
    /// [`Recording`]: crate::Recording
    rec: Option<FlightRecorder>,
    /// Live subscribers; each sees every event before the ring stores it.
    sinks: Arc<[Arc<dyn EventSink>]>,
    /// Keep one in `sample` non-safety spans (≤ 1 = keep all).
    sample: u32,
    /// Seed of the deterministic sampling hash.
    sample_seed: u64,
    /// Record-only fast path: with a ring and no live sinks, every record
    /// goes straight to [`FlightRecorder::record_event`] — id allocation,
    /// cursor lookup, sampling, and the ring insert under one lock
    /// instead of an allocator lock plus a ring lock per span. Ids,
    /// parents, and sampling decisions are identical to the fan-out path.
    direct: bool,
}

/// The handle the runtime actually carries: either off (free) or a span
/// allocator fanning each [`TraceEvent`] out to the attached sinks — the
/// ring-buffered [`FlightRecorder`] and/or any live [`EventSink`]s
/// (runtime monitors). Clones share the allocator, the cursor, and every
/// sink.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<ObsInner>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(off)"),
            Some(inner) => {
                write!(f, "Obs(ring: {}, sinks: {})", inner.rec.is_some(), inner.sinks.len())
            }
        }
    }
}

impl Obs {
    /// A disabled handle — the default everywhere.
    pub fn off() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle backed by a fresh recorder and no live sinks.
    pub fn on(config: RecordConfig) -> Obs {
        Obs::with_sinks(Some(config), Vec::new())
    }

    /// Wrap an existing recorder (clones share its buffer).
    pub fn from_recorder(rec: FlightRecorder) -> Obs {
        Obs {
            inner: Some(ObsInner {
                alloc: Arc::default(),
                rec: Some(rec),
                sinks: Arc::from(Vec::new()),
                sample: 1,
                sample_seed: 0,
                direct: true,
            }),
        }
    }

    /// The general constructor: an optional ring buffer plus any number
    /// of live sinks. With neither, the handle is off — identical to
    /// [`Obs::off`] down to the hot-path branch.
    pub fn with_sinks(record: Option<RecordConfig>, sinks: Vec<Arc<dyn EventSink>>) -> Obs {
        if record.is_none() && sinks.is_empty() {
            return Obs::off();
        }
        let (sample, sample_seed) = record.map_or((1, 0), |c| (c.sample.max(1), c.sample_seed));
        let direct = record.is_some() && sinks.is_empty();
        Obs {
            inner: Some(ObsInner {
                alloc: Arc::default(),
                rec: record.map(FlightRecorder::new),
                sinks: Arc::from(sinks),
                sample,
                sample_seed,
                direct,
            }),
        }
    }

    /// `true` if records go anywhere. Guard payload construction with
    /// this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The underlying ring-buffered recorder, if one is attached.
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.inner.as_ref()?.rec.as_ref()
    }

    /// Non-safety spans elided by sampling so far.
    pub fn sampled_out(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            if i.direct {
                i.rec.as_ref().map_or(0, FlightRecorder::sampled_out)
            } else {
                i.alloc.lock().expect("obs alloc lock").sampled_out
            }
        })
    }

    /// Open a delivery-round buffer: subsequent records are staged under
    /// the allocator lock and flushed to the sinks and the ring in one
    /// batch at [`Obs::end_round`]. Idempotent while a round is open.
    /// Record order, span ids, and parent edges are identical to the
    /// unbatched path — only the lock cadence changes (one ring lock per
    /// round instead of per span).
    pub fn begin_round(&self) {
        if let Some(inner) = &self.inner {
            if inner.direct {
                // The direct path already pays one lock per span with no
                // sink fan-out; staging would add work, not remove it.
                return;
            }
            let mut alloc = inner.alloc.lock().expect("obs alloc lock");
            if alloc.round.is_none() {
                let spare = std::mem::take(&mut alloc.spare);
                alloc.round = Some(spare);
            }
        }
    }

    /// Close the open delivery round (if any): fan the staged records to
    /// the sinks in record order, then bulk-append them to the ring.
    pub fn end_round(&self) {
        let Some(inner) = &self.inner else { return };
        if inner.direct {
            return;
        }
        let Some(mut buf) = inner.alloc.lock().expect("obs alloc lock").round.take() else {
            return;
        };
        for event in &buf {
            for sink in inner.sinks.iter() {
                sink.on_event(event);
            }
        }
        match &inner.rec {
            Some(rec) => rec.push_batch(&mut buf),
            None => buf.clear(),
        }
        inner.alloc.lock().expect("obs alloc lock").spare = buf;
    }

    /// Allocate an id, stamp the event, and either stage it in the open
    /// delivery round or fan it out to the sinks and the ring directly.
    fn emit(
        &self,
        at: Time,
        node: u32,
        site: u32,
        parent: ParentRef,
        kind: SpanKind,
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        if inner.direct {
            return inner.rec.as_ref()?.record_event(at, node, site, parent, kind);
        }
        let (id, parent) = {
            let mut alloc = inner.alloc.lock().expect("obs alloc lock");
            let id = SpanId(alloc.next_id);
            alloc.next_id += 1;
            let parent = match parent {
                ParentRef::Cursor => alloc.cursor,
                ParentRef::Root => None,
                ParentRef::Span(p) => Some(p),
            };
            if inner.sample > 1
                && !kind.is_safety()
                && !splitmix64(inner.sample_seed ^ id.0).is_multiple_of(inner.sample as u64)
            {
                alloc.sampled_out += 1;
                return Some(id);
            }
            if let Some(round) = alloc.round.as_mut() {
                round.push(TraceEvent { id, parent, at, node, site, kind });
                return Some(id);
            }
            (id, parent)
        };
        let event = TraceEvent { id, parent, at, node, site, kind };
        for sink in inner.sinks.iter() {
            sink.on_event(&event);
        }
        if let Some(rec) = &inner.rec {
            rec.push(event);
        }
        Some(id)
    }

    /// Record under the current cursor.
    #[inline]
    pub fn rec(&self, at: Time, node: u32, site: u32, kind: SpanKind) -> Option<SpanId> {
        self.emit(at, node, site, ParentRef::Cursor, kind)
    }

    /// Record under an explicit parent (`None` = root).
    #[inline]
    pub fn rec_under(
        &self,
        parent: Option<SpanId>,
        at: Time,
        node: u32,
        site: u32,
        kind: SpanKind,
    ) -> Option<SpanId> {
        let parent = match parent {
            Some(p) => ParentRef::Span(p),
            None => ParentRef::Root,
        };
        self.emit(at, node, site, parent, kind)
    }

    /// Set the causal cursor.
    #[inline]
    pub fn set_cursor(&self, cursor: Option<SpanId>) {
        if let Some(inner) = &self.inner {
            if inner.direct {
                if let Some(rec) = &inner.rec {
                    Recorder::set_cursor(rec, cursor);
                }
                return;
            }
            inner.alloc.lock().expect("obs alloc lock").cursor = cursor;
        }
    }

    /// The causal cursor.
    #[inline]
    pub fn cursor(&self) -> Option<SpanId> {
        self.inner.as_ref().and_then(|i| {
            if i.direct {
                i.rec.as_ref().and_then(Recorder::cursor)
            } else {
                i.alloc.lock().expect("obs alloc lock").cursor
            }
        })
    }
}

impl Recorder for Obs {
    fn record_event(
        &self,
        at: Time,
        node: u32,
        site: u32,
        parent: ParentRef,
        kind: SpanKind,
    ) -> Option<SpanId> {
        self.emit(at, node, site, parent, kind)
    }

    fn set_cursor(&self, cursor: Option<SpanId>) {
        Obs::set_cursor(self, cursor);
    }

    fn cursor(&self) -> Option<SpanId> {
        Obs::cursor(self)
    }

    fn enabled(&self) -> bool {
        Obs::enabled(self)
    }
}

/// An [`Obs`] pre-bound to one node and site — what each actor and
/// transport endpoint holds so call sites don't repeat their identity.
#[derive(Debug, Clone, Default)]
pub struct NodeObs {
    obs: Obs,
    /// The node this handle records for.
    pub node: u32,
    /// The site the node lives on.
    pub site: u32,
}

impl NodeObs {
    /// A disabled handle.
    pub fn off() -> NodeObs {
        NodeObs::default()
    }

    /// Bind `obs` to a node/site identity.
    pub fn new(obs: Obs, node: u32, site: u32) -> NodeObs {
        NodeObs { obs, node, site }
    }

    /// `true` if records are kept.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.obs.enabled()
    }

    /// The unbound handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Record under the current cursor.
    #[inline]
    pub fn rec(&self, at: Time, kind: SpanKind) -> Option<SpanId> {
        self.obs.rec(at, self.node, self.site, kind)
    }

    /// Record under an explicit parent (`None` = root).
    #[inline]
    pub fn rec_under(&self, parent: Option<SpanId>, at: Time, kind: SpanKind) -> Option<SpanId> {
        self.obs.rec_under(parent, at, self.node, self.site, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::ObsLit;

    fn attempt(sym: u32) -> SpanKind {
        SpanKind::Attempt { lit: ObsLit::pos(sym) }
    }

    #[test]
    fn noop_records_nothing() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        assert_eq!(r.record_event(0, 0, 0, ParentRef::Root, attempt(0)), None);
    }

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        assert_eq!(obs.rec(1, 2, 3, attempt(0)), None);
        obs.set_cursor(Some(SpanId(9)));
        assert_eq!(obs.cursor(), None);
    }

    #[test]
    fn cursor_becomes_default_parent() {
        let obs = Obs::on(RecordConfig::default());
        let root = obs.rec(0, 0, 0, attempt(0)).unwrap();
        obs.set_cursor(Some(root));
        let child = obs.rec(1, 0, 0, attempt(1)).unwrap();
        obs.set_cursor(None);
        let orphan = obs.rec(2, 0, 0, attempt(2)).unwrap();
        let events = obs.recorder().unwrap().events();
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].id, child);
        assert_eq!(events[1].parent, Some(root));
        assert_eq!(events[2].id, orphan);
        assert_eq!(events[2].parent, None);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let obs = Obs::on(RecordConfig::with_capacity(2));
        for i in 0..5 {
            obs.rec(i, 0, 0, attempt(i as u32));
        }
        let rec = obs.recorder().unwrap();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let ids: Vec<u64> = rec.events().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn clones_share_one_buffer() {
        let obs = Obs::on(RecordConfig::default());
        let node = NodeObs::new(obs.clone(), 7, 1);
        node.rec(5, attempt(0));
        let events = obs.recorder().unwrap().events();
        assert_eq!(events.len(), 1);
        assert_eq!((events[0].node, events[0].site, events[0].at), (7, 1, 5));
    }

    #[test]
    fn round_batching_preserves_ids_order_and_parents() {
        // Same sequence of records, once unbatched and once inside
        // begin_round/end_round: the stored events must be identical.
        let run = |batched: bool| {
            let obs = Obs::on(RecordConfig::default());
            let root = obs.rec(0, 0, 0, attempt(0)).unwrap();
            if batched {
                obs.begin_round();
            }
            obs.set_cursor(Some(root));
            obs.rec(1, 1, 0, attempt(1));
            obs.rec(1, 2, 0, attempt(2));
            obs.set_cursor(None);
            if batched {
                obs.end_round();
            }
            obs.recorder().unwrap().events()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn end_round_without_begin_is_a_noop() {
        let obs = Obs::on(RecordConfig::default());
        obs.end_round();
        obs.rec(0, 0, 0, attempt(0));
        obs.end_round();
        assert_eq!(obs.recorder().unwrap().len(), 1);
    }

    #[test]
    fn round_batch_drops_count_at_ring_overflow() {
        let obs = Obs::on(RecordConfig::with_capacity(2));
        obs.begin_round();
        for i in 0..5 {
            obs.rec(i, 0, 0, attempt(i as u32));
        }
        obs.end_round();
        let rec = obs.recorder().unwrap();
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let ids: Vec<u64> = rec.events().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn sampling_elides_only_non_safety_spans_and_keeps_ids() {
        let obs = Obs::on(RecordConfig::default().sampled(1 << 30, 7));
        // Attempt is sampleable; with a huge rate essentially everything
        // non-safety is elided. Occurred is a safety kind and survives.
        for i in 0..50 {
            obs.rec(i, 0, 0, attempt(i as u32));
        }
        let kept = obs
            .rec(99, 0, 0, SpanKind::Occurred { lit: ObsLit::pos(0), seq: 1, by_acceptance: false })
            .unwrap();
        // Ids keep advancing across elided spans.
        assert_eq!(kept.0, 50);
        let rec = obs.recorder().unwrap();
        let events = rec.events();
        assert!(events.iter().all(|e| e.kind.is_safety()), "{events:?}");
        assert_eq!(obs.sampled_out() + events.len() as u64, 51);
        assert!(obs.sampled_out() >= 49);
    }

    #[test]
    fn sampling_decision_is_deterministic() {
        let run = || {
            let obs = Obs::on(RecordConfig::default().sampled(4, 42));
            for i in 0..100 {
                obs.rec(i, 0, 0, attempt(i as u32));
            }
            (obs.recorder().unwrap().events(), obs.sampled_out())
        };
        let (a, dropped_a) = run();
        let (b, dropped_b) = run();
        assert_eq!(a, b);
        assert_eq!(dropped_a, dropped_b);
        assert!(dropped_a > 0 && !a.is_empty(), "rate 4 keeps some, elides some");
    }

    #[test]
    fn explicit_parent_overrides_cursor() {
        let obs = Obs::on(RecordConfig::default());
        let a = obs.rec(0, 0, 0, attempt(0)).unwrap();
        let b = obs.rec(0, 0, 0, attempt(1)).unwrap();
        obs.set_cursor(Some(a));
        let c = obs.rec_under(Some(b), 1, 0, 0, attempt(2)).unwrap();
        let d = obs.rec_under(None, 1, 0, 0, attempt(3)).unwrap();
        let events = obs.recorder().unwrap().events();
        assert_eq!(events.iter().find(|e| e.id == c).unwrap().parent, Some(b));
        assert_eq!(events.iter().find(|e| e.id == d).unwrap().parent, None);
    }
}
