//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The workspace carries no serialization dependency, so recordings are
//! written and read with this hand-rolled module. Numbers are stored as
//! `f64`; integer values round-trip exactly up to 2^53, far above any
//! virtual time or sequence number a simulated run produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integers exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted by `BTreeMap`, making output canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Wrap a `u64` (exact up to 2^53).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Wrap an `i64` (exact up to 2^53 in magnitude).
    pub fn i64(v: i64) -> Json {
        Json::Num(v as f64)
    }

    /// Wrap a string slice.
    pub fn str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Serialize to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset and message.
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::u64(1), Json::Null, Json::str("x\"y\n")])),
            ("b", Json::obj(vec![("inner", Json::Bool(true))])),
        ]);
        let text = v.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn large_integers_are_exact_to_2_53() {
        let v = Json::u64((1 << 53) - 1);
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_u64(), Some((1 << 53) - 1));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u00e9é\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[1].as_str(), Some("éé"));
    }
}
