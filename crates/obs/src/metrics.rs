//! A unified metrics registry: counters, gauges, and log2 histograms keyed
//! by name + labels, with one snapshotting API.
//!
//! This subsumes the ad-hoc `sim::NetStats` and `sim::FaultStats` counter
//! structs: after a run, the executor folds both (plus per-actor and
//! transport counters) into a [`MetricsRegistry`] and exposes the
//! [`MetricsSnapshot`] on the run report, serialized to JSON alongside the
//! recorded trace.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A metric identity: name plus sorted `(key, value)` label pairs
/// (site/actor/dependency labels by convention).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Dotted metric name, e.g. `net.sent_total`.
    pub name: String,
    /// Label pairs, kept sorted so equal label sets compare equal.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }

    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels =
            self.labels.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(",");
        format!("{}{{{labels}}}", self.name)
    }
}

/// A histogram over `[2^i, 2^(i+1))` buckets — cheap to update, good
/// enough for latency quantiles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Log2Histogram {
    /// `buckets[i]` counts observations `v` with `floor(log2(max(v,1))) == i`,
    /// clamped to the last bucket.
    pub buckets: [u64; 32],
    /// Total observation count.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Log2Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let bucket = (63 - v.max(1).leading_zeros() as usize).min(31);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// The quantile estimate for `q` in `[0, 1]`: the inclusive lower
    /// bound `2^i` of the bucket where the cumulative count crosses
    /// `ceil(q * count)`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }

    /// Mean of observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, i64>,
    histograms: BTreeMap<MetricKey, Log2Histogram>,
}

/// A shared registry of counters, gauges, and log2 histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `by` to a counter.
    pub fn add(&self, name: &str, labels: &[(&str, &str)], by: u64) {
        let key = MetricKey::new(name, labels);
        *self.inner.lock().expect("metrics lock").counters.entry(key).or_insert(0) += by;
    }

    /// Set a gauge to `v`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], v: i64) {
        let key = MetricKey::new(name, labels);
        self.inner.lock().expect("metrics lock").gauges.insert(key, v);
    }

    /// Record one histogram observation.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], v: u64) {
        let key = MetricKey::new(name, labels);
        self.inner.lock().expect("metrics lock").histograms.entry(key).or_default().observe(v);
    }

    /// Merge a pre-counted log2 bucket array (e.g. `NetStats`'s 16-bucket
    /// latency table, whose buckets use the same `[2^i, 2^(i+1))` layout).
    pub fn merge_buckets(&self, name: &str, labels: &[(&str, &str)], buckets: &[u64], sum: u64) {
        let key = MetricKey::new(name, labels);
        let mut inner = self.inner.lock().expect("metrics lock");
        let h = inner.histograms.entry(key).or_default();
        for (i, &c) in buckets.iter().enumerate() {
            let slot = i.min(31);
            h.buckets[slot] += c;
            h.count += c;
            if c > 0 {
                h.max = h.max.max(if slot == 0 { 1 } else { (1u64 << (slot + 1)) - 1 });
            }
        }
        h.sum += sum;
    }

    /// A point-in-time copy of every metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        }
    }
}

/// A point-in-time copy of a registry, attached to run reports and
/// serialized inside recordings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values sorted by key.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histograms sorted by key.
    pub histograms: Vec<(MetricKey, Log2Histogram)>,
}

impl MetricsSnapshot {
    /// Look up a counter by name + labels.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Look up a gauge by name + labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let key = MetricKey::new(name, labels);
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Look up a histogram by name + labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Log2Histogram> {
        let key = MetricKey::new(name, labels);
        self.histograms.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        let key_json = |k: &MetricKey| {
            Json::obj(vec![
                ("name", Json::str(&k.name)),
                (
                    "labels",
                    Json::Obj(k.labels.iter().map(|(k, v)| (k.clone(), Json::str(v))).collect()),
                ),
            ])
        };
        Json::obj(vec![
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(k, v)| {
                            let mut o = key_json(k);
                            if let Json::Obj(map) = &mut o {
                                map.insert("value".to_string(), Json::u64(*v));
                            }
                            o
                        })
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Arr(
                    self.gauges
                        .iter()
                        .map(|(k, v)| {
                            let mut o = key_json(k);
                            if let Json::Obj(map) = &mut o {
                                map.insert("value".to_string(), Json::i64(*v));
                            }
                            o
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            let mut o = key_json(k);
                            if let Json::Obj(map) = &mut o {
                                map.insert(
                                    "buckets".to_string(),
                                    Json::Arr(h.buckets.iter().map(|&c| Json::u64(c)).collect()),
                                );
                                map.insert("count".to_string(), Json::u64(h.count));
                                map.insert("sum".to_string(), Json::u64(h.sum));
                                map.insert("max".to_string(), Json::u64(h.max));
                            }
                            o
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`MetricsSnapshot::to_json`].
    pub fn from_json(v: &Json) -> Result<MetricsSnapshot, String> {
        let key_of = |o: &Json| -> Result<MetricKey, String> {
            let name =
                o.get("name").and_then(Json::as_str).ok_or("metric missing name")?.to_string();
            let labels = o
                .get("labels")
                .and_then(Json::as_obj)
                .map(|m| {
                    m.iter()
                        .map(|(k, v)| (k.clone(), v.as_str().unwrap_or_default().to_string()))
                        .collect()
                })
                .unwrap_or_default();
            Ok(MetricKey { name, labels })
        };
        let mut snap = MetricsSnapshot::default();
        for c in v.get("counters").and_then(Json::as_arr).unwrap_or(&[]) {
            let value = c.get("value").and_then(Json::as_u64).ok_or("counter value")?;
            snap.counters.push((key_of(c)?, value));
        }
        for g in v.get("gauges").and_then(Json::as_arr).unwrap_or(&[]) {
            let value = g.get("value").and_then(Json::as_i64).ok_or("gauge value")?;
            snap.gauges.push((key_of(g)?, value));
        }
        for h in v.get("histograms").and_then(Json::as_arr).unwrap_or(&[]) {
            let mut hist = Log2Histogram::default();
            let buckets = h.get("buckets").and_then(Json::as_arr).ok_or("histogram buckets")?;
            for (i, b) in buckets.iter().enumerate().take(32) {
                hist.buckets[i] = b.as_u64().ok_or("bucket count")?;
            }
            hist.count = h.get("count").and_then(Json::as_u64).ok_or("histogram count")?;
            hist.sum = h.get("sum").and_then(Json::as_u64).ok_or("histogram sum")?;
            hist.max = h.get("max").and_then(Json::as_u64).ok_or("histogram max")?;
            snap.histograms.push((key_of(h)?, hist));
        }
        Ok(snap)
    }

    /// Multi-line human rendering (used by `wftrace stats`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{:<48} {v}\n", k.render()));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{:<48} {v}\n", k.render()));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "{:<48} count={} mean={:.1} p50={} p99={} max={}\n",
                k.render(),
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let m = MetricsRegistry::new();
        m.add("net.sent", &[("site", "0")], 2);
        m.add("net.sent", &[("site", "0")], 3);
        m.add("net.sent", &[("site", "1")], 7);
        let snap = m.snapshot();
        assert_eq!(snap.counter("net.sent", &[("site", "0")]), Some(5));
        assert_eq!(snap.counter("net.sent", &[("site", "1")]), Some(7));
        assert_eq!(snap.counter("net.sent", &[]), None);
    }

    #[test]
    fn label_order_is_canonical() {
        let m = MetricsRegistry::new();
        m.add("x", &[("b", "2"), ("a", "1")], 1);
        m.add("x", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(m.snapshot().counters.len(), 1);
    }

    #[test]
    fn log2_histogram_buckets_and_quantiles() {
        let mut h = Log2Histogram::default();
        for v in [0, 1, 2, 3, 4, 8, 1000] {
            h.observe(v);
        }
        // 0 and 1 land in bucket 0; 2,3 in bucket 1; 4 in 2; 8 in 3; 1000 in 9.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.count, 7);
        assert_eq!(h.max, 1000);
        assert_eq!(h.quantile(0.5), 2); // 4th of 7 sorted obs sits in bucket 1
        assert_eq!(h.quantile(1.0), 512);
        assert_eq!(Log2Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_json_roundtrip() {
        let m = MetricsRegistry::new();
        m.add("a.count", &[("site", "0"), ("actor", "buy")], 41);
        m.set_gauge("b.level", &[], -3);
        m.observe("c.latency", &[("dep", "d1")], 17);
        m.observe("c.latency", &[("dep", "d1")], 900);
        let snap = m.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_buckets_matches_direct_observation() {
        let m = MetricsRegistry::new();
        let mut raw = [0u64; 16];
        // Mimic NetStats: latencies 1, 2, 5 → buckets 0, 1, 2.
        raw[0] = 1;
        raw[1] = 1;
        raw[2] = 1;
        m.merge_buckets("lat", &[], &raw, 8);
        let snap = m.snapshot();
        let h = snap.histogram("lat", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 8);
        assert_eq!(h.quantile(0.5), 2);
    }
}
