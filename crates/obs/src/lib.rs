//! Flight-recorder observability for the distributed workflow runtime.
//!
//! The paper's semantics evaluate every guard `G(D, e)` against a *trace
//! prefix*, so each firing has a finite justification: the `□`/`◇`
//! announcements it consumed, the residuation (FSM) steps they caused, and
//! the final guard flip. This crate captures that justification as data: a
//! ring-buffered [`FlightRecorder`] collects typed [`TraceEvent`]s — guard
//! evaluations, dependency-machine steps, transport envelope lifecycle,
//! promise-round phases, WAL appends/replays, and fault injections — each
//! stamped with sim time, node, site, and a **causal parent id**, so the
//! recorded run forms a happens-before DAG (parent edges plus per-node
//! program order).
//!
//! Everything is zero-cost when disabled: the runtime holds an [`Obs`]
//! handle whose `enabled()` check guards payload construction at every call
//! site, and the default recorder is [`NoopRecorder`].
//!
//! The companion [`MetricsRegistry`] subsumes the ad-hoc `NetStats` /
//! `FaultStats` counters behind one snapshotting API
//! ([`MetricsSnapshot`]), and [`Recording`] bundles events + metrics into a
//! JSON document the `wftrace` CLI inspects ([`inspect`]).

#![warn(missing_docs)]

pub mod inspect;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod recording;
pub mod sink;
pub mod span;

pub use inspect::{chrome_trace, explain, sampling_text, stats_text, Explanation};
pub use json::Json;
pub use metrics::{Log2Histogram, MetricsRegistry, MetricsSnapshot};
pub use recorder::{FlightRecorder, NodeObs, Obs, ParentRef, RecordConfig, Recorder};
pub use recording::{causal_audit, Dag, Recording};
pub use sink::{EventSink, NullSink};
pub use span::{Fact, ObsLit, SpanId, SpanKind, Time, TraceEvent, Verdict};
