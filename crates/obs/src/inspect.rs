//! Run inspection: justification chains (`wftrace explain`), aggregate
//! statistics (`wftrace stats`), and the Chrome-tracing export
//! (`wftrace export --chrome`).

use crate::json::Json;
use crate::recording::{Dag, Recording};
use crate::span::{SpanId, SpanKind, Time, TraceEvent};
use std::collections::{BTreeMap, HashSet};

/// A justification chain for one firing: the announcements, residuation
/// steps, and guard flip that caused it, in happens-before order.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The `Occurred` record being explained.
    pub firing: TraceEvent,
    /// `(depth, event)` pairs: the chain in discovery order, root causes
    /// deepest. Does not include the firing itself.
    pub chain: Vec<(usize, TraceEvent)>,
    /// `true` if every chain node strictly precedes the firing in the
    /// happens-before DAG (the acceptance invariant).
    pub verified: bool,
}

impl Explanation {
    /// Multi-line human rendering.
    pub fn render(&self, rec: &Recording) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "firing {} t={} node={} site={}: {}\n",
            self.firing.id,
            self.firing.at,
            self.firing.node,
            self.firing.site,
            self.firing.kind.describe(&rec.symbols)
        ));
        let mut sorted: Vec<&(usize, TraceEvent)> = self.chain.iter().collect();
        sorted.sort_by_key(|(_, e)| e.id);
        for (depth, e) in sorted {
            out.push_str(&format!(
                "{}{} t={} node={}: {}\n",
                "  ".repeat(depth + 1),
                e.id,
                e.at,
                e.node,
                e.kind.describe(&rec.symbols)
            ));
        }
        out.push_str(if self.verified {
            "chain verified: every node happens-before the firing\n"
        } else {
            "chain NOT verified: some node does not precede the firing\n"
        });
        out
    }
}

/// Explain why `event_name` fired: locate its `Occurred` record
/// (optionally at exact time `at`) and walk the justification backwards —
/// the guard flip, the facts it consumed, their announcement deliveries,
/// and the establishing occurrences, recursively.
pub fn explain(rec: &Recording, event_name: &str, at: Option<Time>) -> Result<Explanation, String> {
    let lit = rec
        .lit_by_name(event_name)
        .ok_or_else(|| format!("unknown event {event_name:?} (not in the symbol table)"))?;
    let mut firings = rec
        .events
        .iter()
        .filter(|e| matches!(&e.kind, SpanKind::Occurred { lit: l, .. } if *l == lit));
    let firing = match at {
        Some(t) => firings.find(|e| e.at == t).ok_or_else(|| {
            let times: Vec<String> = rec
                .events
                .iter()
                .filter(|e| matches!(&e.kind, SpanKind::Occurred { lit: l, .. } if *l == lit))
                .map(|e| e.at.to_string())
                .collect();
            format!(
                "{event_name} did not occur at t={t}; recorded occurrence times: [{}]",
                times.join(", ")
            )
        })?,
        None => firings.next().ok_or_else(|| format!("{event_name} never occurred"))?,
    }
    .clone();

    let mut chain: Vec<(usize, TraceEvent)> = Vec::new();
    let mut visited: HashSet<SpanId> = HashSet::new();
    visited.insert(firing.id);
    justify(rec, &firing, 0, &mut chain, &mut visited);

    let dag = Dag::new(rec);
    let verified = chain.iter().all(|(_, e)| dag.precedes(e.id, firing.id));
    Ok(Explanation { firing, chain, verified })
}

/// Walk one firing's causes; bounded by the visited set (the record is a
/// DAG) and a depth cap for safety.
fn justify(
    rec: &Recording,
    from: &TraceEvent,
    depth: usize,
    chain: &mut Vec<(usize, TraceEvent)>,
    visited: &mut HashSet<SpanId>,
) {
    if depth > 64 {
        return;
    }
    // Ancestor walk: delivery/send context, promise phases, the guard flip.
    let mut cursor = from.parent;
    while let Some(pid) = cursor {
        let Some(parent) = rec.event(pid) else { break };
        if !visited.insert(parent.id) {
            break;
        }
        chain.push((depth, parent.clone()));
        if let SpanKind::GuardEval { facts, .. } = &parent.kind {
            for f in facts {
                // The residuation step that folded this fact in, with its
                // own delivery ancestry.
                if let Some(fa) = rec.events.iter().find(|e| {
                    e.node == from.node
                        && matches!(&e.kind, SpanKind::FactApplied { lit, seq }
                            if *lit == f.lit && *seq == f.seq)
                }) {
                    if visited.insert(fa.id) {
                        chain.push((depth + 1, fa.clone()));
                        let mut up = fa.parent;
                        while let Some(uid) = up {
                            let Some(anc) = rec.event(uid) else { break };
                            if !visited.insert(anc.id) {
                                break;
                            }
                            chain.push((depth + 1, anc.clone()));
                            up = anc.parent;
                        }
                    }
                }
                // The establishing occurrence, recursively justified.
                if let Some(est) = rec.establisher(f.lit, f.seq) {
                    if visited.insert(est.id) {
                        chain.push((depth + 1, est.clone()));
                        justify(rec, &est.clone(), depth + 1, chain, visited);
                    }
                }
            }
        }
        cursor = parent.parent;
    }
}

/// Aggregate statistics: per-site load, transport retransmissions, and
/// promise-round latencies, followed by the metrics snapshot.
pub fn stats_text(rec: &Recording) -> String {
    let mut sends: BTreeMap<u32, u64> = BTreeMap::new();
    let mut delivers: BTreeMap<u32, u64> = BTreeMap::new();
    let mut rtx: BTreeMap<u32, u64> = BTreeMap::new();
    let mut dedup = 0u64;
    let mut giveups = 0u64;
    let mut occurrences = 0u64;
    let mut opens: Vec<&TraceEvent> = Vec::new();
    let mut round_latencies: Vec<u64> = Vec::new();
    for e in &rec.events {
        match &e.kind {
            SpanKind::MsgSend { .. } => *sends.entry(e.site).or_insert(0) += 1,
            SpanKind::MsgDeliver { .. } => *delivers.entry(e.site).or_insert(0) += 1,
            SpanKind::EnvRetransmit { .. } => *rtx.entry(e.node).or_insert(0) += 1,
            SpanKind::EnvDedupDrop { .. } => dedup += 1,
            SpanKind::EnvGiveUp { .. } => giveups += 1,
            SpanKind::Occurred { .. } => occurrences += 1,
            SpanKind::PromiseOpen { .. } => opens.push(e),
            SpanKind::PromiseCommit { lit } | SpanKind::PromiseAbort { lit } => {
                // Close the earliest still-open round for this literal.
                if let Some(i) = opens.iter().position(|o| {
                    matches!(&o.kind, SpanKind::PromiseOpen { lit: l, .. } if l == lit)
                        && o.node == e.node
                }) {
                    round_latencies.push(e.at.saturating_sub(opens[i].at));
                    opens.remove(i);
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "workflow {} — {} events recorded ({} dropped), {} occurrences\n\n",
        rec.workflow,
        rec.events.len(),
        rec.dropped,
        occurrences
    ));
    out.push_str("per-site load (recorded sends / deliveries):\n");
    let sites: HashSet<u32> = sends.keys().chain(delivers.keys()).copied().collect();
    let mut sites: Vec<u32> = sites.into_iter().collect();
    sites.sort_unstable();
    for s in sites {
        out.push_str(&format!(
            "  site {s}: {} sent, {} delivered\n",
            sends.get(&s).copied().unwrap_or(0),
            delivers.get(&s).copied().unwrap_or(0)
        ));
    }
    out.push_str(&format!(
        "\ntransport: {} retransmissions, {dedup} dedup drops, {giveups} give-ups\n",
        rtx.values().sum::<u64>()
    ));
    for (n, c) in &rtx {
        out.push_str(&format!("  node {n}: {c} retransmissions\n"));
    }
    if round_latencies.is_empty() {
        out.push_str("\npromise rounds: none recorded\n");
    } else {
        let mut sorted = round_latencies.clone();
        sorted.sort_unstable();
        out.push_str(&format!(
            "\npromise rounds: {} closed, latency min={} p50={} max={}\n",
            sorted.len(),
            sorted[0],
            sorted[sorted.len() / 2],
            sorted[sorted.len() - 1]
        ));
    }
    let metrics = rec.metrics.render();
    if !metrics.is_empty() {
        out.push_str("\nmetrics:\n");
        for line in metrics.lines() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out
}

/// Sampling report (`wftrace stats --sampled`): the observed keep rate
/// of non-safety spans and, per span kind, the extrapolated *true*
/// count of the unthinned run.
///
/// The recorder flips its deterministic coin per span but counts every
/// elision in `Recording::sampled_out`, so the aggregate keep rate is
/// known exactly: `kept / (kept + sampled_out)` over non-safety spans.
/// Per-kind true counts are estimated by scaling each kept count by the
/// inverse of that rate — the coin is kind-blind, so the estimate is
/// unbiased. Safety-class kinds are never sampled and print exact.
pub fn sampling_text(rec: &Recording) -> String {
    let mut kinds: BTreeMap<&'static str, (u64, bool)> = BTreeMap::new();
    let mut kept_nonsafety = 0u64;
    for e in &rec.events {
        let entry = kinds.entry(e.kind.tag()).or_insert((0, e.kind.is_safety()));
        entry.0 += 1;
        if !e.kind.is_safety() {
            kept_nonsafety += 1;
        }
    }
    let mut out = String::new();
    if rec.sampled_out == 0 {
        out.push_str("\nsampling: off — every span kept, all counts exact\n");
        return out;
    }
    let true_nonsafety = kept_nonsafety + rec.sampled_out;
    let rate = kept_nonsafety as f64 / true_nonsafety.max(1) as f64;
    out.push_str(&format!(
        "\nsampling: {kept_nonsafety} of {true_nonsafety} non-safety spans kept \
         (keep rate {rate:.3}, {} sampled out)\n",
        rec.sampled_out
    ));
    out.push_str("per-kind counts (safety kinds exact, others extrapolated):\n");
    for (tag, &(kept, safety)) in &kinds {
        if safety {
            out.push_str(&format!("  {tag:<16} {kept:>8} (exact)\n"));
        } else {
            let estimated = if rate > 0.0 { (kept as f64 / rate).round() as u64 } else { kept };
            out.push_str(&format!("  {tag:<16} {kept:>8} kept ~= {estimated} true\n"));
        }
    }
    out
}

/// Export the recording as Chrome `chrome://tracing` JSON (one complete
/// event per record; pid = site, tid = node, ts = virtual time).
pub fn chrome_trace(rec: &Recording) -> String {
    let events: Vec<Json> = rec
        .events
        .iter()
        .map(|e| {
            let mut args = vec![("id", Json::u64(e.id.0)), ("kind", Json::str(e.kind.tag()))];
            if let Some(p) = e.parent {
                args.push(("parent", Json::u64(p.0)));
            }
            Json::obj(vec![
                ("name", Json::str(&e.kind.describe(&rec.symbols))),
                ("cat", Json::str(e.kind.tag())),
                ("ph", Json::str("X")),
                ("ts", Json::u64(e.at)),
                ("dur", Json::u64(1)),
                ("pid", Json::u64(e.site as u64)),
                ("tid", Json::u64(e.node as u64)),
                ("args", Json::obj(args)),
            ])
        })
        .collect();
    let doc = Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
        ("otherData", Json::obj(vec![("workflow", Json::str(&rec.workflow))])),
    ]);
    let mut s = doc.to_string_compact();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsSnapshot;
    use crate::span::{Fact, ObsLit, Verdict};

    fn ev(id: u64, parent: Option<u64>, node: u32, kind: SpanKind) -> TraceEvent {
        TraceEvent { id: SpanId(id), parent: parent.map(SpanId), at: id, node, site: node, kind }
    }

    fn two_node_run() -> Recording {
        Recording {
            workflow: "travel".to_string(),
            symbols: vec!["buy.commit".to_string(), "book.commit".to_string()],
            dropped: 0,
            sampled_out: 0,
            events: vec![
                ev(0, None, 0, SpanKind::Attempt { lit: ObsLit::pos(0) }),
                ev(
                    1,
                    Some(0),
                    0,
                    SpanKind::GuardEval {
                        lit: ObsLit::pos(0),
                        verdict: Verdict::Enabled,
                        residual: 0,
                        facts: vec![],
                    },
                ),
                ev(
                    2,
                    Some(1),
                    0,
                    SpanKind::Occurred { lit: ObsLit::pos(0), seq: 3, by_acceptance: false },
                ),
                ev(3, Some(2), 0, SpanKind::MsgSend { from: 0, to: 1, label: "announce".into() }),
                ev(
                    4,
                    Some(3),
                    1,
                    SpanKind::MsgDeliver { from: 0, to: 1, label: "announce".into() },
                ),
                ev(5, Some(4), 1, SpanKind::FactApplied { lit: ObsLit::pos(0), seq: 3 }),
                ev(
                    6,
                    Some(4),
                    1,
                    SpanKind::GuardEval {
                        lit: ObsLit::pos(1),
                        verdict: Verdict::Enabled,
                        residual: 2,
                        facts: vec![Fact { seq: 3, lit: ObsLit::pos(0), at: 2 }],
                    },
                ),
                ev(
                    7,
                    Some(6),
                    1,
                    SpanKind::Occurred { lit: ObsLit::pos(1), seq: 8, by_acceptance: false },
                ),
            ],
            metrics: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn explain_builds_verified_chain_back_to_root_cause() {
        let rec = two_node_run();
        let ex = explain(&rec, "book.commit", None).unwrap();
        assert_eq!(ex.firing.id, SpanId(7));
        assert!(ex.verified, "chain must verify");
        let ids: HashSet<u64> = ex.chain.iter().map(|(_, e)| e.id.0).collect();
        // The guard flip, the fact application, its delivery/send context,
        // and the establishing occurrence with its own justification.
        for expected in [6, 5, 4, 3, 2, 1, 0] {
            assert!(ids.contains(&expected), "chain missing #{expected}: {ids:?}");
        }
        let text = ex.render(&rec);
        assert!(text.contains("chain verified"), "{text}");
    }

    #[test]
    fn explain_respects_at_and_reports_misses() {
        let rec = two_node_run();
        assert!(explain(&rec, "book.commit", Some(7)).is_ok());
        let err = explain(&rec, "book.commit", Some(99)).unwrap_err();
        assert!(err.contains("recorded occurrence times"), "{err}");
        assert!(explain(&rec, "missing.event", None).is_err());
        let never = explain(&rec, "~buy.commit", None).unwrap_err();
        assert!(never.contains("never occurred"), "{never}");
    }

    #[test]
    fn stats_counts_sites_and_transport() {
        let mut rec = two_node_run();
        rec.events.push(ev(8, None, 1, SpanKind::EnvRetransmit { to: 0, seq: 1, attempt: 1 }));
        rec.events.push(ev(9, None, 0, SpanKind::EnvDedupDrop { from: 1, seq: 1 }));
        let text = stats_text(&rec);
        assert!(text.contains("site 0: 1 sent"), "{text}");
        assert!(text.contains("site 1: 0 sent, 1 delivered"), "{text}");
        assert!(text.contains("1 retransmissions, 1 dedup drops"), "{text}");
        assert!(text.contains("2 occurrences"), "{text}");
    }

    #[test]
    fn promise_round_latency_pairs_open_with_close() {
        let mut rec = two_node_run();
        rec.events.push(ev(
            10,
            None,
            0,
            SpanKind::PromiseOpen { lit: ObsLit::pos(0), for_lit: ObsLit::pos(1) },
        ));
        rec.events.push(ev(11, None, 0, SpanKind::PromiseCommit { lit: ObsLit::pos(0) }));
        let text = stats_text(&rec);
        assert!(text.contains("promise rounds: 1 closed"), "{text}");
    }

    #[test]
    fn chrome_export_is_valid_json_with_one_event_per_record() {
        let rec = two_node_run();
        let text = chrome_trace(&rec);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), rec.events.len());
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
    }
}
