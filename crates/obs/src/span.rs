//! The typed span/event model: what one record in the flight recorder says.
//!
//! Every [`TraceEvent`] is stamped with the virtual sim time, the node
//! (actor) and site it happened on, and an optional **causal parent**: the
//! span that was in scope when the record was made (usually the message
//! delivery being handled). Parent edges plus per-node program order (span
//! ids are allocated from one global monotone counter, and a node's records
//! are appended in execution order) make the record a happens-before DAG.

use std::borrow::Cow;
use std::fmt;

/// Virtual simulation time, identical to `sim::Time`.
pub type Time = u64;

/// Identifier of one recorded span/event.
///
/// Ids are allocated from a single monotone counter, so `a.id < b.id`
/// whenever `a` was recorded before `b` — program order within a node is
/// recoverable by sorting its records by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A literal of the alphabet `Γ`, decoupled from `event_algebra::Literal`
/// so this crate stays dependency-free.
///
/// Encodes `symbol << 1 | negated` — the same dense index
/// `event_algebra::Literal::index()` uses, so conversion is a cast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ObsLit(pub u32);

impl ObsLit {
    /// The positive literal for symbol `sym`.
    pub fn pos(sym: u32) -> ObsLit {
        ObsLit(sym << 1)
    }

    /// The complement literal for symbol `sym`.
    pub fn neg(sym: u32) -> ObsLit {
        ObsLit(sym << 1 | 1)
    }

    /// The symbol index.
    pub fn sym(self) -> u32 {
        self.0 >> 1
    }

    /// `true` if this is a complement (`ē`) literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Render using a symbol-name table (`commit` / `~commit`); falls back
    /// to `e<id>` when the table is too short.
    pub fn name(self, symbols: &[String]) -> String {
        let base =
            symbols.get(self.sym() as usize).cloned().unwrap_or_else(|| format!("e{}", self.sym()));
        if self.is_neg() {
            format!("~{base}")
        } else {
            base
        }
    }
}

/// Outcome of one guard evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The guard is true on the current trace prefix — the event may fire.
    Enabled,
    /// Not yet true but still satisfiable — the attempt parks.
    Parked,
    /// No extension can satisfy a dependency — the attempt is rejected.
    Dead,
}

impl Verdict {
    /// Stable lower-case label used in JSON.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Enabled => "enabled",
            Verdict::Parked => "parked",
            Verdict::Dead => "dead",
        }
    }

    /// Inverse of [`Verdict::label`].
    pub fn from_label(s: &str) -> Option<Verdict> {
        match s {
            "enabled" => Some(Verdict::Enabled),
            "parked" => Some(Verdict::Parked),
            "dead" => Some(Verdict::Dead),
            _ => None,
        }
    }
}

/// One announced occurrence consumed by a guard evaluation: the literal
/// plus the global delivery sequence number and time of its establishment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fact {
    /// Global delivery sequence number of the establishing occurrence.
    pub seq: u64,
    /// The literal that occurred.
    pub lit: ObsLit,
    /// Virtual time of the establishing occurrence.
    pub at: Time,
}

/// What a recorded span says — the taxonomy covers the network, the
/// at-least-once transport, the per-symbol scheduler, promise rounds, and
/// the WAL (see DESIGN.md §6).
#[derive(Debug, Clone, PartialEq)]
pub enum SpanKind {
    // -- network (sim::net, sim::faults) --
    /// A message was accepted by the network for delivery.
    MsgSend {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Human-readable message discriminant (e.g. `announce`). Borrowed
        /// (`&'static`) on the runtime's recording path — send/deliver are
        /// the two highest-volume span kinds, and a per-span heap label
        /// shows up in the recorder-overhead benchmark; owned only when a
        /// recording is loaded back from JSON.
        label: Cow<'static, str>,
    },
    /// A message was delivered to its destination's handler.
    MsgDeliver {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Human-readable message discriminant.
        label: Cow<'static, str>,
    },
    /// The fault plan dropped a message on this link.
    FaultDrop {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
    },
    /// The fault plan duplicated a message on this link.
    FaultDuplicate {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
    },
    /// The fault plan delayed a message by `by` ticks.
    FaultDelay {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Extra latency injected, in virtual ticks.
        by: u64,
    },
    /// A site partition swallowed a message.
    PartitionDrop {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
    },
    /// A delivery was dropped because the destination node was crashed.
    CrashDrop {
        /// The crashed destination node.
        node: u32,
    },
    /// A crashed node restarted (WAL replay follows).
    Restart {
        /// The restarting node.
        node: u32,
    },

    // -- at-least-once transport (dist::reliable) --
    /// First transmission of a sequence-numbered envelope.
    EnvSend {
        /// Destination node.
        to: u32,
        /// Per-(sender, receiver) envelope sequence number.
        seq: u64,
    },
    /// A retransmission after an ack timeout.
    EnvRetransmit {
        /// Destination node.
        to: u32,
        /// Envelope sequence number.
        seq: u64,
        /// Attempt count so far (1 = first retransmission).
        attempt: u32,
    },
    /// An ack was sent or processed for an envelope.
    EnvAck {
        /// The peer the ack travels to/from.
        peer: u32,
        /// Envelope sequence number being acknowledged.
        seq: u64,
    },
    /// A duplicate envelope was suppressed by receiver-side dedup.
    EnvDedupDrop {
        /// Originating node of the duplicate.
        from: u32,
        /// Envelope sequence number.
        seq: u64,
    },
    /// The transport gave up retransmitting an envelope.
    EnvGiveUp {
        /// Destination node.
        to: u32,
        /// Envelope sequence number.
        seq: u64,
    },

    // -- per-symbol scheduler (dist::actor) --
    /// An agent attempted its literal.
    Attempt {
        /// The attempted literal.
        lit: ObsLit,
    },
    /// One guard evaluation: verdict plus the announced facts consumed.
    GuardEval {
        /// The literal whose guard was evaluated.
        lit: ObsLit,
        /// The verdict on the current trace prefix.
        verdict: Verdict,
        /// Residual id: compiled-FSM state or arena `ExprId` index
        /// (`u32::MAX` when the symbolic runtime carries a bare tree).
        residual: u32,
        /// The facts (announced occurrences) the evaluation consumed.
        facts: Vec<Fact>,
    },
    /// One residuation/FSM step of a single dependency tracker.
    DepStep {
        /// Index of the dependency within the workflow.
        dep: u32,
        /// The input literal folded into the residual.
        input: ObsLit,
        /// Post-step state id (compiled) or `u32::MAX` (symbolic).
        state: u32,
        /// Whether the dependency is still satisfiable after the step.
        live: bool,
    },
    /// An announced fact was folded into this node's trackers.
    FactApplied {
        /// The fact's literal.
        lit: ObsLit,
        /// The fact's global delivery sequence number.
        seq: u64,
    },
    /// The literal occurred on this node.
    Occurred {
        /// The occurring literal.
        lit: ObsLit,
        /// Global delivery sequence number stamped on the occurrence.
        seq: u64,
        /// `true` if fired by mutual-promise acceptance rather than a
        /// plain guard flip.
        by_acceptance: bool,
    },
    /// An attempt parked awaiting further announcements.
    Parked {
        /// The parked literal.
        lit: ObsLit,
    },
    /// An attempt was rejected (guard dead).
    Rejected {
        /// The rejected literal.
        lit: ObsLit,
    },
    /// A parked attempt was re-triggered by new knowledge.
    Triggered {
        /// The re-triggered literal.
        lit: ObsLit,
    },

    // -- promise rounds --
    /// A promise round opened: `lit` asks peers to promise `for_lit`.
    PromiseOpen {
        /// The literal opening the round.
        lit: ObsLit,
        /// The peer literal whose promise is requested.
        for_lit: ObsLit,
    },
    /// This node granted a promise (`◇`) to a peer.
    PromiseGrant {
        /// The promised literal.
        lit: ObsLit,
        /// The requesting node.
        to: u32,
    },
    /// This node denied a promise request.
    PromiseDeny {
        /// The denied literal.
        lit: ObsLit,
        /// The requesting node.
        to: u32,
    },
    /// A promise round aborted (timeout) and released its holds.
    PromiseAbort {
        /// The literal whose round aborted.
        lit: ObsLit,
    },
    /// A promise round committed: mutual `◇` closed into an occurrence.
    PromiseCommit {
        /// The literal whose round committed.
        lit: ObsLit,
    },

    // -- write-ahead log (dist::exec / dist::journal) --
    /// A post-dedup message was appended to the node's WAL.
    WalAppend {
        /// Global delivery sequence number of the logged message.
        seq: u64,
    },
    /// A restart replayed `entries` WAL entries under their original
    /// delivery contexts.
    WalReplay {
        /// Number of entries replayed.
        entries: u64,
    },
}

impl SpanKind {
    /// Stable snake-case tag used in JSON and the Chrome export.
    pub fn tag(&self) -> &'static str {
        match self {
            SpanKind::MsgSend { .. } => "msg_send",
            SpanKind::MsgDeliver { .. } => "msg_deliver",
            SpanKind::FaultDrop { .. } => "fault_drop",
            SpanKind::FaultDuplicate { .. } => "fault_dup",
            SpanKind::FaultDelay { .. } => "fault_delay",
            SpanKind::PartitionDrop { .. } => "partition_drop",
            SpanKind::CrashDrop { .. } => "crash_drop",
            SpanKind::Restart { .. } => "restart",
            SpanKind::EnvSend { .. } => "env_send",
            SpanKind::EnvRetransmit { .. } => "env_rtx",
            SpanKind::EnvAck { .. } => "env_ack",
            SpanKind::EnvDedupDrop { .. } => "env_dedup",
            SpanKind::EnvGiveUp { .. } => "env_giveup",
            SpanKind::Attempt { .. } => "attempt",
            SpanKind::GuardEval { .. } => "guard_eval",
            SpanKind::DepStep { .. } => "dep_step",
            SpanKind::FactApplied { .. } => "fact_applied",
            SpanKind::Occurred { .. } => "occurred",
            SpanKind::Parked { .. } => "parked",
            SpanKind::Rejected { .. } => "rejected",
            SpanKind::Triggered { .. } => "triggered",
            SpanKind::PromiseOpen { .. } => "promise_open",
            SpanKind::PromiseGrant { .. } => "promise_grant",
            SpanKind::PromiseDeny { .. } => "promise_deny",
            SpanKind::PromiseAbort { .. } => "promise_abort",
            SpanKind::PromiseCommit { .. } => "promise_commit",
            SpanKind::WalAppend { .. } => "wal_append",
            SpanKind::WalReplay { .. } => "wal_replay",
        }
    }

    /// `true` for span kinds the safety monitors and the causal audit's
    /// establisher check depend on: occurrences, fact applications, guard
    /// evaluations, promise-round phases, and the WAL. These are always
    /// recorded exactly; only the remaining kinds (transport envelope
    /// lifecycle, message traffic, scheduler bookkeeping, fault
    /// injections) are eligible for [`RecordConfig`] sampling.
    ///
    /// [`RecordConfig`]: crate::RecordConfig
    pub fn is_safety(&self) -> bool {
        matches!(
            self,
            SpanKind::Occurred { .. }
                | SpanKind::FactApplied { .. }
                | SpanKind::GuardEval { .. }
                | SpanKind::PromiseOpen { .. }
                | SpanKind::PromiseGrant { .. }
                | SpanKind::PromiseDeny { .. }
                | SpanKind::PromiseAbort { .. }
                | SpanKind::PromiseCommit { .. }
                | SpanKind::WalAppend { .. }
                | SpanKind::WalReplay { .. }
        )
    }

    /// One-line human rendering using a symbol-name table.
    pub fn describe(&self, symbols: &[String]) -> String {
        match self {
            SpanKind::MsgSend { from, to, label } => format!("send {label} n{from}->n{to}"),
            SpanKind::MsgDeliver { from, to, label } => format!("deliver {label} n{from}->n{to}"),
            SpanKind::FaultDrop { from, to } => format!("fault: drop n{from}->n{to}"),
            SpanKind::FaultDuplicate { from, to } => format!("fault: duplicate n{from}->n{to}"),
            SpanKind::FaultDelay { from, to, by } => format!("fault: delay n{from}->n{to} +{by}"),
            SpanKind::PartitionDrop { from, to } => format!("partition drop n{from}->n{to}"),
            SpanKind::CrashDrop { node } => format!("crash drop at n{node}"),
            SpanKind::Restart { node } => format!("restart n{node}"),
            SpanKind::EnvSend { to, seq } => format!("env send seq={seq} ->n{to}"),
            SpanKind::EnvRetransmit { to, seq, attempt } => {
                format!("env retransmit seq={seq} ->n{to} attempt={attempt}")
            }
            SpanKind::EnvAck { peer, seq } => format!("env ack seq={seq} peer=n{peer}"),
            SpanKind::EnvDedupDrop { from, seq } => format!("env dedup seq={seq} from=n{from}"),
            SpanKind::EnvGiveUp { to, seq } => format!("env give-up seq={seq} ->n{to}"),
            SpanKind::Attempt { lit } => format!("attempt {}", lit.name(symbols)),
            SpanKind::GuardEval { lit, verdict, facts, .. } => {
                let facts = facts
                    .iter()
                    .map(|f| format!("{}@{}", f.lit.name(symbols), f.seq))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("guard({}) = {} [{facts}]", lit.name(symbols), verdict.label())
            }
            SpanKind::DepStep { dep, input, live, .. } => {
                let status = if *live { "live" } else { "dead" };
                format!("dep d{dep} / {} ({status})", input.name(symbols))
            }
            SpanKind::FactApplied { lit, seq } => {
                format!("apply fact {}@{seq}", lit.name(symbols))
            }
            SpanKind::Occurred { lit, seq, by_acceptance } => {
                let how = if *by_acceptance { " (by acceptance)" } else { "" };
                format!("occurred {}@{seq}{how}", lit.name(symbols))
            }
            SpanKind::Parked { lit } => format!("parked {}", lit.name(symbols)),
            SpanKind::Rejected { lit } => format!("rejected {}", lit.name(symbols)),
            SpanKind::Triggered { lit } => format!("triggered {}", lit.name(symbols)),
            SpanKind::PromiseOpen { lit, for_lit } => {
                format!("promise open {} for {}", lit.name(symbols), for_lit.name(symbols))
            }
            SpanKind::PromiseGrant { lit, to } => {
                format!("promise grant {} ->n{to}", lit.name(symbols))
            }
            SpanKind::PromiseDeny { lit, to } => {
                format!("promise deny {} ->n{to}", lit.name(symbols))
            }
            SpanKind::PromiseAbort { lit } => format!("promise abort {}", lit.name(symbols)),
            SpanKind::PromiseCommit { lit } => format!("promise commit {}", lit.name(symbols)),
            SpanKind::WalAppend { seq } => format!("wal append seq={seq}"),
            SpanKind::WalReplay { entries } => format!("wal replay {entries} entries"),
        }
    }
}

/// One record in the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Globally monotone span id.
    pub id: SpanId,
    /// Causal parent: the span in scope when this record was made
    /// (typically the delivery being handled), or `None` for roots.
    pub parent: Option<SpanId>,
    /// Virtual sim time of the record.
    pub at: Time,
    /// Node (actor) the record belongs to.
    pub node: u32,
    /// Site the node lives on.
    pub site: u32,
    /// The typed payload.
    pub kind: SpanKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obslit_matches_literal_index_encoding() {
        assert_eq!(ObsLit::pos(3).0, 6);
        assert_eq!(ObsLit::neg(3).0, 7);
        assert!(ObsLit::neg(3).is_neg());
        assert!(!ObsLit::pos(3).is_neg());
        assert_eq!(ObsLit::neg(3).sym(), 3);
    }

    #[test]
    fn obslit_names_use_table() {
        let syms = vec!["buy.start".to_string(), "buy.commit".to_string()];
        assert_eq!(ObsLit::pos(1).name(&syms), "buy.commit");
        assert_eq!(ObsLit::neg(0).name(&syms), "~buy.start");
        assert_eq!(ObsLit::pos(9).name(&syms), "e9");
    }

    #[test]
    fn verdict_labels_roundtrip() {
        for v in [Verdict::Enabled, Verdict::Parked, Verdict::Dead] {
            assert_eq!(Verdict::from_label(v.label()), Some(v));
        }
        assert_eq!(Verdict::from_label("bogus"), None);
    }
}
