//! Online runtime verification for the distributed workflow executor.
//!
//! Each property the paper proves about a conformant execution becomes
//! a monitor here, derived from machinery the repo already has:
//!
//! - **Dependency monitors (Theorem 2).** Every dependency `D` compiles
//!   to a residuation FSM ([`DependencyMachine`]); the monitor steps that
//!   FSM on each globally-ordered occurrence and classifies `D` after
//!   every transition as *satisfied* (residual `⊤`), *live* (an accepting
//!   state is still reachable), *at-risk* (no accepting state reachable —
//!   the run is doomed but the residual is not yet `0`), or *violated*
//!   (residual `0`). A scheduler honoring the synthesized guards
//!   `G(D, e)` can never drive a machine into `violated`, so any
//!   `violated` transition is a hard alert, raised within one transition
//!   of the offending firing.
//! - **Guard faithfulness (Theorem 2 / Definition 4).** Whenever a
//!   guard-gated event fires, the monitor re-evaluates the *faithful*
//!   (unweakened) synthesized guard against its own globally-ordered
//!   view. `◇`-atoms may be justified by facts that arrive later, so a
//!   false evaluation is held pending and re-checked as facts stream in;
//!   the moment every symbol the guard mentions is resolved the verdict
//!   is decided and a discrepancy is alerted immediately, not post-hoc.
//! - **`□`-view divergence (Lemma 5).** Announcement traffic must give
//!   every actor the same `(seq → literal)` mapping; the monitor watches
//!   `Occurred`/`FactApplied` records and alerts on the first conflict.
//! - **Stall watchdog (promise-round liveness, Example 11).** Open
//!   promise rounds and enabled-but-unfired events are expected to close
//!   quickly; exceeding a configurable sim-time budget raises an
//!   advisory alert (partitions and crashes legitimately delay rounds,
//!   so stalls are warnings, not conformance failures).
//!
//! Monitors can watch the run two ways:
//!
//! - **Fused (default).** The scheduler calls the `on_*` entry points
//!   ([`WorkflowMonitor::on_occurrence`] and friends) directly at the
//!   points where it would otherwise *record* the corresponding span,
//!   and the network ticks the stall watchdog once per delivery round
//!   ([`WorkflowMonitor::tick`]). No span is constructed, no recorder
//!   ring is touched: each globally-ordered occurrence is stepped once
//!   and the verdict read in O(1) from the compiled machine tables.
//! - **Sink-driven (oracle).** The monitor subscribes to the live
//!   [`TraceEvent`] stream through [`obs::EventSink`] and re-derives
//!   everything from the spans alone. This is the original path; the
//!   conformance suite keeps it as a cross-validation oracle and asserts
//!   the two modes agree (`testkit::conformance::audit_monitor_equivalence`).
//!
//! Both paths share the same internal `MonitorState`, so "agreement" is not a
//! coincidence of parallel implementations: the only difference is who
//! delivers the observations. The one observable divergence is the
//! *timestamp* of advisory stall alerts under crash plans — the legacy
//! path sweeps on `CrashDrop` spans, which have no fused counterpart
//! because no handler runs for a crashed delivery; the flagged set is
//! identical because state cannot change between the two sweep points.

use event_algebra::{
    DependencyMachine, Expr, Literal, ShardPlan, StateId, SymbolId, SymbolTable, Trace,
};
use guard::{CompiledWorkflow, GuardScope};
use obs::{ObsLit, SpanKind, TraceEvent, Verdict};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Configuration for the armed monitors. `Copy` so it can ride inside
/// the executor's `ExecConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Sim-time budget for the stall watchdog: an open promise round or
    /// an enabled-but-unfired event older than this is flagged. The
    /// default comfortably exceeds the reliable transport's promise
    /// timeout (512 ticks) plus one retry, so healthy runs — including
    /// healed partitions — stay quiet.
    pub stall_budget: u64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig { stall_budget: 2048 }
    }
}

/// The state of one dependency after the facts observed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepVerdict {
    /// Residual `⊤`: every extension of the observed trace satisfies it.
    Satisfied,
    /// Not yet discharged, but an accepting state is still reachable.
    Live,
    /// No accepting state is reachable — every completion violates the
    /// dependency — but the residual has not yet collapsed to `0`.
    AtRisk,
    /// Residual `0`: the observed trace already violates the dependency.
    Violated,
}

impl DepVerdict {
    /// Stable lowercase label (metrics, CLI output).
    pub fn label(self) -> &'static str {
        match self {
            DepVerdict::Satisfied => "satisfied",
            DepVerdict::Live => "live",
            DepVerdict::AtRisk => "at-risk",
            DepVerdict::Violated => "violated",
        }
    }
}

/// What a monitor alert is about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertKind {
    /// A dependency machine entered the violated (`0`) state.
    DepViolated {
        /// Index of the dependency in the workflow's dependency list.
        dep: u32,
    },
    /// A dependency machine entered a trap state: not yet `0`, but no
    /// accepting state is reachable any more.
    DepAtRisk {
        /// Index of the dependency in the workflow's dependency list.
        dep: u32,
    },
    /// A guard-gated event fired although its faithful synthesized guard
    /// is false on the monitor's globally-ordered view.
    GuardUnfaithful {
        /// The literal that fired.
        lit: ObsLit,
    },
    /// Two announcements claimed the same global sequence number for
    /// different literals — the `□`-views have diverged.
    ViewDivergence {
        /// The contested sequence number.
        seq: u64,
    },
    /// A promise round stayed open past the stall budget.
    PromiseStall {
        /// The literal whose round stalled.
        lit: ObsLit,
    },
    /// An event evaluated `Enabled` but did not fire within the budget.
    EnabledStall {
        /// The enabled-but-unfired literal.
        lit: ObsLit,
    },
}

impl AlertKind {
    /// Stable snake-case tag (metrics label, CLI output).
    pub fn tag(&self) -> &'static str {
        match self {
            AlertKind::DepViolated { .. } => "dep_violated",
            AlertKind::DepAtRisk { .. } => "dep_at_risk",
            AlertKind::GuardUnfaithful { .. } => "guard_unfaithful",
            AlertKind::ViewDivergence { .. } => "view_divergence",
            AlertKind::PromiseStall { .. } => "promise_stall",
            AlertKind::EnabledStall { .. } => "enabled_stall",
        }
    }

    /// `true` for alerts that contradict a proved safety property — a
    /// conformant run must never produce one. Stall alerts are advisory
    /// (faults legitimately delay rounds) and return `false`.
    pub fn is_violation(&self) -> bool {
        matches!(
            self,
            AlertKind::DepViolated { .. }
                | AlertKind::DepAtRisk { .. }
                | AlertKind::GuardUnfaithful { .. }
                | AlertKind::ViewDivergence { .. }
        )
    }
}

/// One structured monitor alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Sim time of the observation that triggered the alert.
    pub at: u64,
    /// Node the triggering observation came from.
    pub node: u32,
    /// What happened.
    pub kind: AlertKind,
    /// Human-readable one-liner.
    pub detail: String,
}

/// The monitors' summary of a finished (or replayed) run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MonitorReport {
    /// Final per-dependency verdicts, after extending the observed trace
    /// with the complements of unresolved symbols (the same maximal-trace
    /// convention the executor's satisfaction check uses).
    pub verdicts: Vec<DepVerdict>,
    /// Every alert raised, in observation order.
    pub alerts: Vec<Alert>,
    /// Global occurrences observed.
    pub facts: u64,
    /// Guard-faithfulness evaluations performed.
    pub guard_checks: u64,
    /// Divergence alerts whose two claimed literals live in *different*
    /// shard colocation classes — only counted when a [`ShardPlan`] was
    /// installed. A cross-shard divergence means the class boundaries the
    /// analyzer certified as independent disagreed about global order,
    /// which a sharded runtime must treat as fatal; intra-shard
    /// divergence would be an ordinary protocol bug.
    pub cross_shard_divergence: u64,
}

impl MonitorReport {
    /// `true` if any dependency ended violated or any violation-class
    /// alert fired.
    pub fn has_violation(&self) -> bool {
        self.verdicts.contains(&DepVerdict::Violated)
            || self.alerts.iter().any(|a| a.kind.is_violation())
    }
}

/// Classify a machine state. O(1): acceptance, violation, and liveness
/// were all computed at machine-compile time.
fn classify(machine: &DependencyMachine, sid: StateId) -> DepVerdict {
    if machine.is_accepting(sid) {
        DepVerdict::Satisfied
    } else if machine.is_violated(sid) {
        DepVerdict::Violated
    } else if !machine.is_live(sid) {
        DepVerdict::AtRisk
    } else {
        DepVerdict::Live
    }
}

fn lit_of(o: ObsLit) -> Literal {
    let sym = SymbolId(o.sym());
    if o.is_neg() {
        Literal::neg(sym)
    } else {
        Literal::pos(sym)
    }
}

fn olit(l: Literal) -> ObsLit {
    ObsLit(l.index() as u32)
}

/// Membership test on the resolved-symbols bitset (out-of-range ids —
/// a span naming a symbol the table never interned — read as
/// unresolved).
fn resolved_bit(set: &[u64], sym: SymbolId) -> bool {
    set.get((sym.0 / 64) as usize).is_some_and(|w| w & (1 << (sym.0 % 64)) != 0)
}

/// Set `sym` in the resolved-symbols bitset, growing it if a span names
/// a symbol past the table's length.
fn resolve_bit(set: &mut Vec<u64>, sym: SymbolId) {
    let w = (sym.0 / 64) as usize;
    if w >= set.len() {
        set.resize(w + 1, 0);
    }
    set[w] |= 1 << (sym.0 % 64);
}

/// A guard-gated firing whose faithful guard was false when it fired;
/// kept pending until later facts justify it or decide it false.
#[derive(Debug)]
struct PendingGuard {
    lit: Literal,
    seq: u64,
    node: u32,
    at: u64,
}

/// An open stall-watchdog entry (promise round or enabled eval).
#[derive(Debug, Clone, Copy)]
struct OpenSince {
    at: u64,
    flagged: bool,
}

struct MonitorState {
    table: SymbolTable,
    config: MonitorConfig,
    dep_states: Vec<StateId>,
    verdicts: Vec<DepVerdict>,
    /// Per-dependency: a violated/at-risk alert was already raised (the
    /// out-of-order replay path must not alert twice).
    dep_alerted: Vec<bool>,
    /// The faithful guards and dependency machines, shared (never
    /// cloned) with whoever compiled them: monitor construction must be
    /// cheap enough to arm on every run of every fleet instance.
    guards: Arc<CompiledWorkflow>,
    gated: BTreeSet<Literal>,
    /// Globally-ordered occurrences: delivery seq → literal.
    facts: BTreeMap<u64, Literal>,
    /// Symbols resolved by an observed occurrence (either polarity), as
    /// a bitset over `SymbolId` indices. The guard-decidability pre-pass
    /// probes membership once per guard symbol per gated firing — and
    /// chained workflows carry guards whose symbol counts grow with
    /// chain position, so membership must be a bit test, not a tree
    /// descent.
    resolved: Vec<u64>,
    /// seq → literal as claimed by *any* record (`Occurred` or
    /// `FactApplied`); the divergence monitor's canonical view.
    canon: BTreeMap<u64, Literal>,
    /// Divergent seqs already alerted.
    diverged: BTreeSet<u64>,
    /// Shard colocation classes, when the run was placed by a certified
    /// plan: lets the divergence checker label cross-shard conflicts.
    shard: Option<Arc<ShardPlan>>,
    cross_shard_divergence: u64,
    pending_guards: Vec<PendingGuard>,
    /// Open promise rounds keyed by (requesting node, round literal).
    open_rounds: BTreeMap<(u32, u32), OpenSince>,
    /// Enabled-but-unfired evaluations keyed by (node, literal).
    open_evals: BTreeMap<(u32, u32), OpenSince>,
    alerts: Vec<Alert>,
    guard_checks: u64,
    last_stall_check: u64,
    /// Lower bound on the earliest *unflagged* open timestamp across
    /// `open_rounds` and `open_evals` (`u64::MAX` when none): the stall
    /// sweep runs at every new sim timestamp, and this bound lets a
    /// healthy run — every round inside its budget — decide "nothing to
    /// flag" in O(1) instead of walking both watch maps. Inserts
    /// min-update it; removals and flaggings may leave it stale-low,
    /// which costs at most a spurious full scan (that recomputes it).
    stall_bound: u64,
}

/// The armed monitor set for one workflow: an [`obs::EventSink`] that
/// watches the live trace stream and accumulates verdicts and alerts.
///
/// Construct with the workflow's symbol table, dependencies, and the set
/// of guard-gated (controllable) literals; attach to the run via
/// `Obs::with_sinks`; call [`WorkflowMonitor::finish`] once the run
/// quiesces.
pub struct WorkflowMonitor {
    state: Mutex<MonitorState>,
    /// Lock-free mirror of `stall_bound + stall_budget`: the earliest sim
    /// time at which *any* open watch could exceed its budget. The
    /// network ticks the watchdog once per delivery — by far the
    /// highest-frequency monitor entry point — and on a healthy run every
    /// tick is answered by this one relaxed load, no lock taken. Updated
    /// (under the state lock) wherever `stall_bound` changes; `u64::MAX`
    /// while no watch is armed.
    stall_deadline: std::sync::atomic::AtomicU64,
}

// Actors carry an `Option<Arc<WorkflowMonitor>>` in fused mode and
// derive `Debug`; the monitor's interior state is large and mutex-held,
// so the handle prints opaquely.
impl std::fmt::Debug for WorkflowMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowMonitor").finish_non_exhaustive()
    }
}

impl WorkflowMonitor {
    /// Derive monitors for `dependencies`. Compiles its own faithful
    /// guards and dependency machines, so it is independent of whatever
    /// (possibly weakened or broken) guards the runtime enforces.
    pub fn new(
        table: &SymbolTable,
        dependencies: &[Expr],
        gated: impl IntoIterator<Item = Literal>,
        config: MonitorConfig,
    ) -> WorkflowMonitor {
        let guards = Arc::new(CompiledWorkflow::compile(dependencies, GuardScope::Mentioning));
        Self::from_compiled(table, guards, gated, config)
    }

    /// Like [`WorkflowMonitor::new`], but reusing an already-compiled
    /// workflow instead of recompiling the guards and machines. Guard
    /// compilation costs a sizable fraction of a whole small run, so the
    /// executors hand the monitor the `Arc` they compiled for the
    /// scheduler — arming monitors must stay cheap enough to be the
    /// always-on default, per instance, at fleet scale. The compiled
    /// guards are faithful (unweakened) by construction of
    /// `GuardScope::Mentioning`; callers must not pass a weakened set.
    pub fn from_compiled(
        table: &SymbolTable,
        guards: Arc<CompiledWorkflow>,
        gated: impl IntoIterator<Item = Literal>,
        config: MonitorConfig,
    ) -> WorkflowMonitor {
        let dep_states: Vec<StateId> = guards.machines.iter().map(|m| m.initial).collect();
        let verdicts: Vec<DepVerdict> =
            guards.machines.iter().zip(&dep_states).map(|(m, &s)| classify(m, s)).collect();
        let dep_alerted = vec![false; dep_states.len()];
        WorkflowMonitor {
            stall_deadline: std::sync::atomic::AtomicU64::new(u64::MAX),
            state: Mutex::new(MonitorState {
                table: table.clone(),
                config,
                dep_states,
                verdicts,
                dep_alerted,
                guards,
                gated: gated.into_iter().collect(),
                facts: BTreeMap::new(),
                resolved: vec![0; (table.len()).div_ceil(64)],
                canon: BTreeMap::new(),
                diverged: BTreeSet::new(),
                shard: None,
                cross_shard_divergence: 0,
                pending_guards: Vec::new(),
                open_rounds: BTreeMap::new(),
                open_evals: BTreeMap::new(),
                alerts: Vec::new(),
                guard_checks: 0,
                last_stall_check: 0,
                stall_bound: u64::MAX,
            }),
        }
    }

    /// Refresh the lock-free deadline mirror from the state's stall
    /// bound; called (with the lock held) at the end of every entry
    /// point that may arm a watch or recompute the bound.
    fn sync_deadline(&self, st: &MonitorState) {
        self.stall_deadline.store(
            st.stall_bound.saturating_add(st.config.stall_budget),
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    /// Observe one trace event (the [`obs::EventSink`] entry point).
    pub fn observe(&self, event: &TraceEvent) {
        let mut st = self.state.lock().expect("monitor lock");
        st.observe(event);
        self.sync_deadline(&st);
    }

    /// Teach the divergence checker the shard boundaries of a certified
    /// [`ShardPlan`]: subsequent view-divergence alerts distinguish
    /// cross-shard conflicts (class boundaries disagreed about global
    /// order — fatal for a sharded runtime) from intra-shard ones, and
    /// [`MonitorReport::cross_shard_divergence`] counts the former.
    pub fn set_shard_plan(&self, plan: Arc<ShardPlan>) {
        self.state.lock().expect("monitor lock").shard = Some(plan);
    }

    /// Current per-dependency verdicts (mid-run snapshot).
    pub fn verdicts(&self) -> Vec<DepVerdict> {
        self.state.lock().expect("monitor lock").verdicts.clone()
    }

    /// Alerts raised so far (mid-run snapshot).
    pub fn alerts(&self) -> Vec<Alert> {
        self.state.lock().expect("monitor lock").alerts.clone()
    }

    /// Close the run at sim time `final_at`: run the last stall sweep,
    /// decide still-pending guard checks against the maximal trace
    /// (observed occurrences plus complements of unresolved symbols),
    /// and report final verdicts.
    pub fn finish(&self, final_at: u64) -> MonitorReport {
        self.state.lock().expect("monitor lock").finish(final_at)
    }

    // --- Fused entry points -------------------------------------------
    //
    // The scheduler calls these directly at the program points where it
    // would otherwise *record* the corresponding span; each takes the
    // same (at, node, …) tuple the span would have carried and runs the
    // same dispatch `observe` runs for that span kind, then the same
    // trailing stall sweep. Fused mode therefore needs no span
    // construction and no recorder at all.

    /// Fused counterpart of an `Occurred` span: a globally-ordered
    /// occurrence of `lit` under delivery sequence `seq`, observed at
    /// the owning `node` at sim time `at`.
    pub fn on_occurrence(&self, at: u64, node: u32, lit: ObsLit, seq: u64) {
        let mut st = self.state.lock().expect("monitor lock");
        st.on_occurrence(at, node, lit, seq);
        st.sweep(at);
        self.sync_deadline(&st);
    }

    /// Fused counterpart of a `FactApplied` span: `node` applied
    /// `(seq → lit)` to its `□`-view (feeds the divergence checker).
    pub fn on_fact_applied(&self, at: u64, node: u32, lit: ObsLit, seq: u64) {
        let mut st = self.state.lock().expect("monitor lock");
        st.check_divergence(at, node, lit, seq);
        st.sweep(at);
        self.sync_deadline(&st);
    }

    /// Fused counterpart of a `GuardEval` span with an `Enabled`
    /// verdict: arms the enabled-but-unfired stall watch for
    /// `(node, lit)`.
    pub fn on_guard_enabled(&self, at: u64, node: u32, lit: ObsLit) {
        let mut st = self.state.lock().expect("monitor lock");
        st.open_evals.entry((node, lit.0)).or_insert(OpenSince { at, flagged: false });
        st.stall_bound = st.stall_bound.min(at);
        st.sweep(at);
        self.sync_deadline(&st);
    }

    /// Fused counterpart of a `PromiseOpen` span: `node` opened a
    /// promise round for `lit`.
    pub fn on_promise_open(&self, at: u64, node: u32, lit: ObsLit) {
        let mut st = self.state.lock().expect("monitor lock");
        st.open_rounds.entry((node, lit.0)).or_insert(OpenSince { at, flagged: false });
        st.stall_bound = st.stall_bound.min(at);
        st.sweep(at);
        self.sync_deadline(&st);
    }

    /// Fused counterpart of a `PromiseCommit` span: the round `node`
    /// opened for `lit` closed with a commit.
    pub fn on_promise_commit(&self, at: u64, node: u32, lit: ObsLit) {
        let mut st = self.state.lock().expect("monitor lock");
        st.open_rounds.remove(&(node, lit.0));
        st.sweep(at);
        self.sync_deadline(&st);
    }

    /// Fused counterpart of a `PromiseAbort` span: the round `node`
    /// opened for `lit` closed with an abort.
    pub fn on_promise_abort(&self, at: u64, node: u32, lit: ObsLit) {
        let mut st = self.state.lock().expect("monitor lock");
        st.open_rounds.remove(&(node, lit.0));
        st.sweep(at);
        self.sync_deadline(&st);
    }

    /// Fused counterpart of a `PromiseDeny` span recorded on the
    /// *granter*: closes the round the requesting node `to` had open
    /// for `lit`.
    pub fn on_promise_deny(&self, at: u64, to: u32, lit: ObsLit) {
        let mut st = self.state.lock().expect("monitor lock");
        st.open_rounds.remove(&(to, lit.0));
        st.sweep(at);
        self.sync_deadline(&st);
    }

    /// Advance the stall watchdog to sim time `at`. The network calls
    /// this once per delivery (and per restart) *before* the handler
    /// runs — the same point the sink-driven monitor sweeps, because the
    /// `MsgDeliver`/`Restart` span is recorded ahead of the handler and
    /// its `observe` ends with the sweep.
    pub fn tick(&self, at: u64) {
        // One relaxed load on the healthy path: no open watch can be
        // past its budget before the mirrored deadline, so there is
        // nothing to sweep and no reason to take the lock.
        if at <= self.stall_deadline.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        let mut st = self.state.lock().expect("monitor lock");
        st.sweep(at);
        self.sync_deadline(&st);
    }
}

impl obs::EventSink for WorkflowMonitor {
    fn on_event(&self, event: &TraceEvent) {
        self.observe(event);
    }
}

impl MonitorState {
    fn alert(&mut self, at: u64, node: u32, kind: AlertKind, detail: String) {
        self.alerts.push(Alert { at, node, kind, detail });
    }

    fn observe(&mut self, event: &TraceEvent) {
        match &event.kind {
            SpanKind::Occurred { lit, seq, .. } => {
                self.on_occurrence(event.at, event.node, *lit, *seq);
            }
            SpanKind::FactApplied { lit, seq } => {
                self.check_divergence(event.at, event.node, *lit, *seq);
            }
            SpanKind::GuardEval { lit, verdict, .. } if *verdict == Verdict::Enabled => {
                self.open_evals
                    .entry((event.node, lit.0))
                    .or_insert(OpenSince { at: event.at, flagged: false });
                self.stall_bound = self.stall_bound.min(event.at);
            }
            SpanKind::PromiseOpen { lit, .. } => {
                self.open_rounds
                    .entry((event.node, lit.0))
                    .or_insert(OpenSince { at: event.at, flagged: false });
                self.stall_bound = self.stall_bound.min(event.at);
            }
            SpanKind::PromiseCommit { lit } | SpanKind::PromiseAbort { lit } => {
                self.open_rounds.remove(&(event.node, lit.0));
            }
            // A deny is recorded on the *granter*; `to` names the
            // requester whose round it closes.
            SpanKind::PromiseDeny { lit, to } => {
                self.open_rounds.remove(&(*to, lit.0));
            }
            _ => {}
        }
        self.sweep(event.at);
    }

    /// Trailing stall sweep shared by the sink-driven and fused paths:
    /// the first observation at a new sim timestamp checks the watchdog
    /// budgets once.
    fn sweep(&mut self, at: u64) {
        if at != self.last_stall_check {
            self.last_stall_check = at;
            self.check_stalls(at);
        }
    }

    /// The divergence monitor: every record claiming `(seq → lit)` must
    /// agree with every earlier claim for the same seq (Lemma 5: the
    /// `□`-views of all sites stay consistent).
    fn check_divergence(&mut self, at: u64, node: u32, lit: ObsLit, seq: u64) {
        let lit = lit_of(lit);
        match self.canon.get(&seq) {
            None => {
                self.canon.insert(seq, lit);
            }
            Some(&prev) if prev == lit => {}
            Some(&prev) => {
                if self.diverged.insert(seq) {
                    let mut detail = format!(
                        "seq {seq} announced as {} but node {node} applied {}",
                        self.table.literal_name(prev),
                        self.table.literal_name(lit),
                    );
                    if let Some(plan) = &self.shard {
                        match (plan.class_of(prev.symbol()), plan.class_of(lit.symbol())) {
                            (Some(a), Some(b)) if a != b => {
                                self.cross_shard_divergence += 1;
                                detail.push_str(&format!(" (cross-shard: classes {a} vs {b})"));
                            }
                            _ => detail.push_str(" (intra-shard)"),
                        }
                    }
                    self.alert(at, node, AlertKind::ViewDivergence { seq }, detail);
                }
            }
        }
    }

    fn on_occurrence(&mut self, at: u64, node: u32, lit: ObsLit, seq: u64) {
        self.check_divergence(at, node, lit, seq);
        let lit = lit_of(lit);
        // An occurrence discharges any pending enabled-eval watch for its
        // node (either polarity: a rejection force-fires the complement).
        self.open_evals.remove(&(node, olit(lit).0));
        self.open_evals.remove(&(node, olit(lit.complement()).0));
        match self.facts.get(&seq) {
            Some(&prev) if prev == lit => return, // duplicate record
            Some(_) => return,                    // divergence, already alerted
            None => {}
        }
        let in_order = self.facts.last_key_value().is_none_or(|(&max, _)| seq > max);
        self.facts.insert(seq, lit);
        resolve_bit(&mut self.resolved, lit.symbol());
        if in_order {
            self.step_machines(at, node, lit);
        } else {
            // A fact slotted into the past: replay the whole ordered log
            // so machine states reflect the true global order.
            self.replay_machines(at, node);
        }
        if self.gated.contains(&lit) {
            self.check_guard(at, node, lit, seq);
        }
        self.recheck_pending(at);
    }

    fn step_machines(&mut self, at: u64, node: u32, lit: Literal) {
        let mut transitions = Vec::new();
        for (ix, (machine, state)) in
            self.guards.machines.iter().zip(self.dep_states.iter_mut()).enumerate()
        {
            *state = machine.step(*state, lit);
            let verdict = classify(machine, *state);
            if verdict != self.verdicts[ix] {
                self.verdicts[ix] = verdict;
                transitions.push((ix, verdict));
            }
        }
        for (ix, verdict) in transitions {
            self.alert_dep_transition(at, node, ix, verdict);
        }
    }

    fn replay_machines(&mut self, at: u64, node: u32) {
        let mut transitions = Vec::new();
        for (ix, (machine, state)) in
            self.guards.machines.iter().zip(self.dep_states.iter_mut()).enumerate()
        {
            *state = machine.initial;
            for &lit in self.facts.values() {
                *state = machine.step(*state, lit);
            }
            let verdict = classify(machine, *state);
            if verdict != self.verdicts[ix] {
                self.verdicts[ix] = verdict;
                transitions.push((ix, verdict));
            }
        }
        for (ix, verdict) in transitions {
            self.alert_dep_transition(at, node, ix, verdict);
        }
    }

    fn alert_dep_transition(&mut self, at: u64, node: u32, ix: usize, verdict: DepVerdict) {
        if self.dep_alerted[ix] {
            return;
        }
        let kind = match verdict {
            DepVerdict::Violated => AlertKind::DepViolated { dep: ix as u32 },
            DepVerdict::AtRisk => AlertKind::DepAtRisk { dep: ix as u32 },
            _ => return,
        };
        self.dep_alerted[ix] = true;
        let detail = format!(
            "dependency {ix} ({}) entered the {} state",
            self.guards.machines[ix].dependency.display(&self.table),
            verdict.label(),
        );
        self.alert(at, node, kind, detail);
    }

    /// The observed occurrences completed with the complements of every
    /// unresolved symbol — "the maximal trace if the run quiesced now".
    /// `Guard::eval` demands a maximal trace, so every evaluation goes
    /// through this. Positions of real facts are unchanged (complements
    /// append after them). `None` on a duplicated symbol, which the
    /// divergence monitor has already alerted.
    fn completed_trace(&self) -> Option<Trace> {
        Trace::new(
            self.facts.values().copied().chain(
                (0..self.table.len() as u32)
                    .map(SymbolId)
                    .filter(|&s| !resolved_bit(&self.resolved, s))
                    .map(Literal::neg),
            ),
        )
    }

    /// Faithful-guard check for a gated firing. The guard's truth at the
    /// fire position can swing both ways while its symbols are
    /// unresolved (`◇e` flips true when `e` lands; `◇ē` flips false), so
    /// the check is queued and *decided* — alerting on a discrepancy —
    /// the moment every symbol the guard mentions is resolved; usually
    /// that is immediately, at fire time.
    fn check_guard(&mut self, at: u64, node: u32, lit: Literal, seq: u64) {
        self.guard_checks += 1;
        self.pending_guards.push(PendingGuard { lit, seq, node, at });
        self.recheck_pending(at);
    }

    /// Decide every pending guard check whose mentioned symbols are all
    /// resolved: from that point no future fact can change the
    /// evaluation, so a false guard is alerted now — within one
    /// transition of whatever firing decided it.
    fn recheck_pending(&mut self, now: u64) {
        if self.pending_guards.is_empty() {
            return;
        }
        // Decidability pre-pass: this runs after every gated firing, and
        // only when some pending check actually became decidable is the
        // completed trace worth materialising. `symbols_all` walks the
        // guard's conjuncts without allocating; a gated literal outside
        // the compiled alphabet has the trivial guard `⊤` — decidable at
        // once.
        let resolved = &self.resolved;
        let guards = &self.guards;
        let decidable = |p: &PendingGuard| {
            guards.guard_ref(p.lit).is_none_or(|g| g.symbols_all(|s| resolved_bit(resolved, s)))
        };
        if !self.pending_guards.iter().any(decidable) {
            return;
        }
        let Some(trace) = self.completed_trace() else {
            return;
        };
        let mut failed = Vec::new();
        let facts = &self.facts;
        self.pending_guards.retain(|p| {
            match guards.guard_ref(p.lit) {
                None => {} // guard ⊤: trivially faithful, decided now
                Some(g) => {
                    if !g.symbols_all(|s| resolved_bit(resolved, s)) {
                        return true; // still swingable by future facts
                    }
                    let pos = facts.range(..p.seq).count();
                    if !g.eval(&trace, pos) {
                        failed.push((p.lit, p.seq, p.node, p.at));
                    }
                }
            }
            false
        });
        for (lit, seq, node, at) in failed {
            self.alert_unfaithful(now.max(at), node, lit, seq);
        }
    }

    fn alert_unfaithful(&mut self, at: u64, node: u32, lit: Literal, seq: u64) {
        let detail = format!(
            "{} fired at seq {seq} with its faithful guard false on the global view",
            self.table.literal_name(lit),
        );
        self.alert(at, node, AlertKind::GuardUnfaithful { lit: olit(lit) }, detail);
    }

    fn check_stalls(&mut self, now: u64) {
        let budget = self.config.stall_budget;
        // O(1) fast path on the cached lower bound: nothing unflagged can
        // be past its budget unless the bound is. A flagging in the scan
        // below only removes entries from the unflagged set, so the
        // recomputed bound stays exact until the next insert.
        if now.saturating_sub(self.stall_bound) <= budget {
            return;
        }
        let mut bound = u64::MAX;
        let mut stalls: Vec<(u64, u32, AlertKind, String)> = Vec::new();
        for (&(node, lit), open) in self.open_rounds.iter_mut() {
            if open.flagged {
                continue;
            }
            if now.saturating_sub(open.at) > budget {
                open.flagged = true;
                let lit = ObsLit(lit);
                stalls.push((
                    now,
                    node,
                    AlertKind::PromiseStall { lit },
                    format!(
                        "promise round for {} on node {node} open since t={} (budget {budget})",
                        self.table.literal_name(lit_of(lit)),
                        open.at,
                    ),
                ));
            } else {
                bound = bound.min(open.at);
            }
        }
        for (&(node, lit), open) in self.open_evals.iter_mut() {
            if open.flagged {
                continue;
            }
            if now.saturating_sub(open.at) > budget {
                open.flagged = true;
                let lit = ObsLit(lit);
                stalls.push((
                    now,
                    node,
                    AlertKind::EnabledStall { lit },
                    format!(
                        "{} enabled on node {node} since t={} but never fired (budget {budget})",
                        self.table.literal_name(lit_of(lit)),
                        open.at,
                    ),
                ));
            } else {
                bound = bound.min(open.at);
            }
        }
        self.stall_bound = bound;
        for (at, node, kind, detail) in stalls {
            self.alert(at, node, kind, detail);
        }
    }

    fn finish(&mut self, final_at: u64) -> MonitorReport {
        self.check_stalls(final_at.max(self.last_stall_check));
        // Extend the observed trace with the complements of unresolved
        // symbols — the maximal-trace convention of the executor's own
        // satisfaction check — and let the machines and the pending
        // guard checks see the completed run.
        let complements: Vec<Literal> = (0..self.table.len() as u32)
            .map(SymbolId)
            .filter(|&s| !resolved_bit(&self.resolved, s))
            .map(Literal::neg)
            .collect();
        let mut transitions = Vec::new();
        for (ix, (machine, state)) in
            self.guards.machines.iter().zip(self.dep_states.iter_mut()).enumerate()
        {
            // `⊤` and `0` are absorbing (every literal residuates them to
            // themselves), so complements cannot move a machine that has
            // already reached a terminal — which on a clean run is all of
            // them.
            if machine.is_accepting(*state) || machine.is_violated(*state) {
                continue;
            }
            for &lit in &complements {
                *state = machine.step(*state, lit);
            }
            let verdict = classify(machine, *state);
            if verdict != self.verdicts[ix] {
                self.verdicts[ix] = verdict;
                transitions.push((ix, verdict));
            }
        }
        for (ix, verdict) in transitions {
            self.alert_dep_transition(final_at, u32::MAX, ix, verdict);
        }
        let pending = std::mem::take(&mut self.pending_guards);
        if !pending.is_empty() {
            let maximal =
                Trace::new(self.facts.values().copied().chain(complements.iter().copied()));
            if let Some(maximal) = maximal {
                for p in pending {
                    let pos = self.facts.range(..p.seq).count();
                    if !self.guards.guard_ref(p.lit).is_none_or(|g| g.eval(&maximal, pos)) {
                        self.alert_unfaithful(final_at, p.node, p.lit, p.seq);
                    }
                }
            }
        }
        MonitorReport {
            verdicts: self.verdicts.clone(),
            alerts: self.alerts.clone(),
            facts: self.facts.len() as u64,
            guard_checks: self.guard_checks,
            cross_shard_divergence: self.cross_shard_divergence,
        }
    }
}

/// Replay a recorded event stream through freshly derived monitors —
/// the offline entry point (`wftrace monitor`, mutation tests). The
/// `table`/`dependencies`/`gated` triple must describe the same workflow
/// the recording came from (same symbol interning order).
pub fn replay(
    events: &[TraceEvent],
    table: &SymbolTable,
    dependencies: &[Expr],
    gated: impl IntoIterator<Item = Literal>,
    config: MonitorConfig,
) -> MonitorReport {
    let mon = WorkflowMonitor::new(table, dependencies, gated, config);
    for e in events {
        mon.observe(e);
    }
    let final_at = events.iter().map(|e| e.at).max().unwrap_or(0);
    mon.finish(final_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::parse_expr;

    /// `D< = ~e + ~f + e·f` over fresh symbols; returns (table, dep, e, f).
    fn d_before() -> (SymbolTable, Expr, Literal, Literal) {
        let mut table = SymbolTable::default();
        let e = Literal::pos(table.intern("e"));
        let f = Literal::pos(table.intern("f"));
        let dep = parse_expr("~e + ~f + e.f", &mut table).expect("parses");
        (table, dep, e, f)
    }

    fn occurred(id: u64, at: u64, node: u32, lit: Literal, seq: u64) -> TraceEvent {
        TraceEvent {
            id: obs::SpanId(id),
            parent: None,
            at,
            node,
            site: node,
            kind: SpanKind::Occurred { lit: olit(lit), seq, by_acceptance: true },
        }
    }

    #[test]
    fn ordered_firing_stays_live_then_satisfied() {
        let (table, dep, e, f) = d_before();
        let mon = WorkflowMonitor::new(&table, &[dep], [e, f], MonitorConfig::default());
        mon.observe(&occurred(0, 1, 0, e, 1));
        assert_eq!(mon.verdicts(), vec![DepVerdict::Live]);
        mon.observe(&occurred(1, 2, 1, f, 2));
        assert_eq!(mon.verdicts(), vec![DepVerdict::Satisfied]);
        let report = mon.finish(3);
        assert!(!report.has_violation(), "{:?}", report.alerts);
        assert!(report.alerts.is_empty(), "{:?}", report.alerts);
        assert_eq!(report.facts, 2);
    }

    #[test]
    fn broken_order_is_flagged_violated_within_one_transition() {
        let (table, dep, e, f) = d_before();
        let mon = WorkflowMonitor::new(&table, &[dep], [e, f], MonitorConfig::default());
        // f before e: after f the machine demands ē; the e firing is the
        // offending transition and must flip the verdict immediately.
        mon.observe(&occurred(0, 1, 1, f, 1));
        assert_eq!(mon.verdicts(), vec![DepVerdict::Live]);
        mon.observe(&occurred(1, 2, 0, e, 2));
        assert_eq!(mon.verdicts(), vec![DepVerdict::Violated]);
        let alerts = mon.alerts();
        let dep_alert = alerts
            .iter()
            .find(|a| matches!(a.kind, AlertKind::DepViolated { dep: 0 }))
            .expect("violated alert");
        // Raised at the offending firing's timestamp — one transition,
        // not at end of run.
        assert_eq!(dep_alert.at, 2);
        // The faithful guard on f (□e ∨ ◇ē) was false and became decided
        // the moment e resolved — an immediate faithfulness alert too.
        let report = mon.finish(3);
        assert!(report.has_violation());
        assert!(
            report.alerts.iter().any(|a| matches!(a.kind, AlertKind::GuardUnfaithful { .. })),
            "{:?}",
            report.alerts
        );
    }

    #[test]
    fn eventually_justified_guard_stays_quiet() {
        // D→ = e + f·e: f may fire first only if e is promised; on the
        // global view the ◇-atom is justified by e's later occurrence,
        // so the pending check discharges without an alert.
        let mut table = SymbolTable::default();
        let e = Literal::pos(table.intern("e"));
        let f = Literal::pos(table.intern("f"));
        let dep = parse_expr("e + f.e", &mut table).expect("parses");
        let mon = WorkflowMonitor::new(&table, &[dep], [e, f], MonitorConfig::default());
        mon.observe(&occurred(0, 1, 1, f, 1));
        mon.observe(&occurred(1, 5, 0, e, 2));
        let report = mon.finish(6);
        assert!(
            !report.alerts.iter().any(|a| matches!(a.kind, AlertKind::GuardUnfaithful { .. })),
            "{:?}",
            report.alerts
        );
        assert_eq!(report.verdicts, vec![DepVerdict::Satisfied]);
    }

    #[test]
    fn view_divergence_is_alerted_on_first_conflict() {
        let (table, dep, e, f) = d_before();
        let mon = WorkflowMonitor::new(&table, &[dep], [e, f], MonitorConfig::default());
        mon.observe(&occurred(0, 1, 0, e, 7));
        // Another node applies a *different* literal under the same seq.
        mon.observe(&TraceEvent {
            id: obs::SpanId(1),
            parent: None,
            at: 2,
            node: 1,
            site: 1,
            kind: SpanKind::FactApplied { lit: olit(f), seq: 7 },
        });
        let alerts = mon.alerts();
        assert!(
            alerts.iter().any(|a| matches!(a.kind, AlertKind::ViewDivergence { seq: 7 })),
            "{alerts:?}"
        );
    }

    #[test]
    fn stall_watchdog_flags_an_open_promise_round_once() {
        let (table, dep, e, f) = d_before();
        let mon = WorkflowMonitor::new(&table, &[dep], [e, f], MonitorConfig { stall_budget: 10 });
        mon.observe(&TraceEvent {
            id: obs::SpanId(0),
            parent: None,
            at: 1,
            node: 0,
            site: 0,
            kind: SpanKind::PromiseOpen { lit: olit(f), for_lit: olit(e) },
        });
        // Time passes without a grant/deny/commit...
        mon.observe(&occurred(1, 50, 1, e, 1));
        let stalls = |alerts: &[Alert]| {
            alerts.iter().filter(|a| matches!(a.kind, AlertKind::PromiseStall { .. })).count()
        };
        assert_eq!(stalls(&mon.alerts()), 1);
        // ...and the watchdog does not re-alert on later sweeps.
        let report = mon.finish(100);
        assert_eq!(stalls(&report.alerts), 1);
        assert!(report.alerts.iter().all(|a| !a.kind.is_violation()), "{:?}", report.alerts);
    }

    #[test]
    fn enabled_but_unfired_event_stalls() {
        let (table, dep, e, f) = d_before();
        let mon = WorkflowMonitor::new(
            &table,
            std::slice::from_ref(&dep),
            [e, f],
            MonitorConfig { stall_budget: 10 },
        );
        mon.observe(&TraceEvent {
            id: obs::SpanId(0),
            parent: None,
            at: 1,
            node: 0,
            site: 0,
            kind: SpanKind::GuardEval {
                lit: olit(e),
                verdict: Verdict::Enabled,
                residual: 0,
                facts: Vec::new(),
            },
        });
        let report = mon.finish(100);
        assert!(
            report.alerts.iter().any(|a| matches!(a.kind, AlertKind::EnabledStall { .. })),
            "{:?}",
            report.alerts
        );
        // Firing before the budget clears the watch.
        let mon = WorkflowMonitor::new(&table, &[dep], [e, f], MonitorConfig { stall_budget: 10 });
        mon.observe(&TraceEvent {
            id: obs::SpanId(0),
            parent: None,
            at: 1,
            node: 0,
            site: 0,
            kind: SpanKind::GuardEval {
                lit: olit(e),
                verdict: Verdict::Enabled,
                residual: 0,
                facts: Vec::new(),
            },
        });
        mon.observe(&occurred(1, 2, 0, e, 1));
        let report = mon.finish(100);
        assert!(
            !report.alerts.iter().any(|a| matches!(a.kind, AlertKind::EnabledStall { .. })),
            "{:?}",
            report.alerts
        );
    }

    #[test]
    fn unsatisfiable_dependency_is_flagged_from_the_initial_state() {
        // e·ē admits no satisfying trace at all; the residual algebra
        // normalises it to the violated terminal 0, so the monitor
        // reports violated from the initial state — before any event
        // fires.
        let mut table = SymbolTable::default();
        let e = Literal::pos(table.intern("e"));
        let dep = Expr::seq([Expr::lit(e), Expr::lit(e.complement())]);
        let mon = WorkflowMonitor::new(&table, &[dep], [e], MonitorConfig::default());
        assert_eq!(mon.verdicts(), vec![DepVerdict::Violated]);
    }

    #[test]
    fn out_of_order_facts_are_replayed_into_global_order() {
        let (table, dep, e, f) = d_before();
        let mon = WorkflowMonitor::new(&table, &[dep], [e, f], MonitorConfig::default());
        // Records arrive f-then-e, but the global seqs say e came first:
        // the replay path must land on Satisfied, not Violated.
        mon.observe(&occurred(0, 1, 1, f, 5));
        mon.observe(&occurred(1, 2, 0, e, 3));
        assert_eq!(mon.verdicts(), vec![DepVerdict::Satisfied]);
        let report = mon.finish(3);
        assert!(!report.has_violation(), "{:?}", report.alerts);
    }

    #[test]
    fn unresolved_symbols_complete_as_complements_at_finish() {
        let (table, dep, e, _f) = d_before();
        let mon = WorkflowMonitor::new(&table, &[dep], [e], MonitorConfig::default());
        // Only e fires; ~f completes the trace, and ~e + ~f + e·f is
        // satisfied by [e, ~f].
        mon.observe(&occurred(0, 1, 0, e, 1));
        let report = mon.finish(2);
        assert_eq!(report.verdicts, vec![DepVerdict::Satisfied]);
    }
}
