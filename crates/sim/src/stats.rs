//! Traffic statistics collected by the simulated network — the raw
//! measurements behind the locality/scalability experiments (C1, C3, C4).

/// Counters describing one run's traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Deliveries handled per site — the per-site load whose maximum is
    /// the system's bottleneck (experiment C1/C4).
    pub per_site_deliveries: std::collections::BTreeMap<u32, u64>,
    /// Messages sent, total.
    pub sent_total: u64,
    /// Messages that crossed a site boundary.
    pub sent_remote: u64,
    /// Messages delivered.
    pub delivered_total: u64,
    /// Sum of sampled latencies (for mean latency).
    pub latency_sum: u64,
    /// Histogram of latencies in power-of-two buckets
    /// (`bucket[i]` counts latencies in `[2^i, 2^(i+1))`).
    pub latency_buckets: [u64; 16],
}

impl NetStats {
    pub(crate) fn record_send(&mut self, remote: bool, latency: u64) {
        self.sent_total += 1;
        if remote {
            self.sent_remote += 1;
        }
        self.latency_sum += latency;
        let bucket = (63 - latency.max(1).leading_zeros() as usize).min(15);
        self.latency_buckets[bucket] += 1;
    }

    /// Fold another stats block into this one (used by the threaded
    /// executor, where each node thread accumulates locally).
    pub(crate) fn absorb(&mut self, other: &NetStats) {
        for (site, count) in &other.per_site_deliveries {
            *self.per_site_deliveries.entry(*site).or_insert(0) += count;
        }
        self.sent_total += other.sent_total;
        self.sent_remote += other.sent_remote;
        self.delivered_total += other.delivered_total;
        self.latency_sum += other.latency_sum;
        for (b, o) in self.latency_buckets.iter_mut().zip(other.latency_buckets.iter()) {
            *b += o;
        }
    }

    pub(crate) fn record_delivery(&mut self, site: u32) {
        self.delivered_total += 1;
        *self.per_site_deliveries.entry(site).or_insert(0) += 1;
    }

    /// The busiest site's delivery count.
    pub fn max_site_load(&self) -> u64 {
        self.per_site_deliveries.values().copied().max().unwrap_or(0)
    }

    /// Fraction of traffic that crossed sites (0.0 when nothing was sent).
    pub fn remote_fraction(&self) -> f64 {
        if self.sent_total == 0 {
            0.0
        } else {
            self.sent_remote as f64 / self.sent_total as f64
        }
    }

    /// Mean sampled latency (0.0 when nothing was sent).
    pub fn mean_latency(&self) -> f64 {
        if self.sent_total == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.sent_total as f64
        }
    }

    /// Latency quantile estimated from `latency_buckets`.
    ///
    /// Bucket `i` counts latencies in `[2^i, 2^(i+1))` (latency 0 is
    /// clamped into bucket 0), so the estimator can only answer with a
    /// bucket boundary: it returns the **inclusive lower bound** `2^i` of
    /// the bucket where the cumulative count reaches `ceil(q * total)` —
    /// i.e. quantiles round *down* to the nearest power of two. Returns 0
    /// when nothing was sampled.
    pub fn latency_quantile(&self, q: f64) -> u64 {
        let total: u64 = self.latency_buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.latency_buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        unreachable!("cumulative bucket count reaches total")
    }

    /// Median latency estimate (lower bucket bound; see
    /// [`NetStats::latency_quantile`]).
    pub fn p50(&self) -> u64 {
        self.latency_quantile(0.50)
    }

    /// 99th-percentile latency estimate (lower bucket bound; see
    /// [`NetStats::latency_quantile`]).
    pub fn p99(&self) -> u64 {
        self.latency_quantile(0.99)
    }

    /// Fold these counters into a [`obs::MetricsRegistry`] under the
    /// `net.*` namespace — the snapshotting API that subsumes this
    /// struct on run reports.
    pub fn record_into(&self, metrics: &obs::MetricsRegistry) {
        metrics.add("net.sent_total", &[], self.sent_total);
        metrics.add("net.sent_remote", &[], self.sent_remote);
        metrics.add("net.delivered_total", &[], self.delivered_total);
        for (site, count) in &self.per_site_deliveries {
            metrics.add("net.deliveries", &[("site", &site.to_string())], *count);
        }
        metrics.merge_buckets("net.latency", &[], &self.latency_buckets, self.latency_sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut s = NetStats::default();
        s.record_send(false, 1);
        s.record_send(true, 16);
        s.record_delivery(0);
        assert_eq!(s.sent_total, 2);
        assert_eq!(s.sent_remote, 1);
        assert_eq!(s.delivered_total, 1);
        assert!((s.remote_fraction() - 0.5).abs() < 1e-9);
        assert!((s.mean_latency() - 8.5).abs() < 1e-9);
        assert_eq!(s.latency_buckets[0], 1);
        assert_eq!(s.latency_buckets[4], 1);
        assert_eq!(s.max_site_load(), 1);
    }

    #[test]
    fn empty_stats_divide_safely() {
        let s = NetStats::default();
        assert_eq!(s.remote_fraction(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn huge_latency_clamps_to_last_bucket() {
        let mut s = NetStats::default();
        s.record_send(false, u64::MAX);
        assert_eq!(s.latency_buckets[15], 1);
    }

    #[test]
    fn quantiles_round_down_to_bucket_lower_bounds() {
        let mut s = NetStats::default();
        // Latencies 2..=3 share bucket 1 ([2, 4)): any quantile landing
        // there answers the inclusive lower bound 2, never 3 or 4.
        s.record_send(false, 2);
        s.record_send(false, 3);
        assert_eq!(s.p50(), 2);
        assert_eq!(s.p99(), 2);
        // A boundary value opens the next bucket: 4 lands in [4, 8).
        s.record_send(false, 4);
        assert_eq!(s.p99(), 4);
    }

    #[test]
    fn p50_p99_split_across_buckets() {
        let mut s = NetStats::default();
        // 98 fast sends at latency 1, two stragglers at 1000 ([512, 1024)).
        for _ in 0..98 {
            s.record_send(false, 1);
        }
        s.record_send(false, 1000);
        s.record_send(false, 1000);
        assert_eq!(s.p50(), 1);
        assert_eq!(s.p99(), 512, "rank 99 of 100 falls on the straggler bucket");
    }

    #[test]
    fn quantiles_handle_edge_ranks() {
        let mut s = NetStats::default();
        assert_eq!(s.p50(), 0, "empty histogram answers 0");
        // Latency 0 is clamped into bucket 0, whose reported bound is 1
        // (the clamp target `latency.max(1)`).
        s.record_send(false, 0);
        assert_eq!(s.p50(), 1);
        assert_eq!(s.latency_quantile(0.0), 1, "rank clamps to the first sample");
        assert_eq!(s.latency_quantile(1.0), 1);
        // u64::MAX clamps into the last bucket, reported as 2^15.
        s.record_send(false, u64::MAX);
        assert_eq!(s.latency_quantile(1.0), 1 << 15);
    }

    #[test]
    fn record_into_registry_preserves_counts_and_quantiles() {
        let mut s = NetStats::default();
        s.record_send(true, 5);
        s.record_send(false, 900);
        s.record_delivery(3);
        s.record_delivery(3);
        let reg = obs::MetricsRegistry::new();
        s.record_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("net.sent_total", &[]), Some(2));
        assert_eq!(snap.counter("net.deliveries", &[("site", "3")]), Some(2));
        let h = snap.histogram("net.latency", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 905);
        assert_eq!(h.quantile(0.5), s.p50());
    }
}
