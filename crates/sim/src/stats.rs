//! Traffic statistics collected by the simulated network — the raw
//! measurements behind the locality/scalability experiments (C1, C3, C4).

/// Counters describing one run's traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Deliveries handled per site — the per-site load whose maximum is
    /// the system's bottleneck (experiment C1/C4).
    pub per_site_deliveries: std::collections::BTreeMap<u32, u64>,
    /// Messages sent, total.
    pub sent_total: u64,
    /// Messages that crossed a site boundary.
    pub sent_remote: u64,
    /// Messages delivered.
    pub delivered_total: u64,
    /// Sum of sampled latencies (for mean latency).
    pub latency_sum: u64,
    /// Histogram of latencies in power-of-two buckets
    /// (`bucket[i]` counts latencies in `[2^i, 2^(i+1))`).
    pub latency_buckets: [u64; 16],
}

impl NetStats {
    pub(crate) fn record_send(&mut self, remote: bool, latency: u64) {
        self.sent_total += 1;
        if remote {
            self.sent_remote += 1;
        }
        self.latency_sum += latency;
        let bucket = (63 - latency.max(1).leading_zeros() as usize).min(15);
        self.latency_buckets[bucket] += 1;
    }

    pub(crate) fn record_delivery(&mut self, site: u32) {
        self.delivered_total += 1;
        *self.per_site_deliveries.entry(site).or_insert(0) += 1;
    }

    /// The busiest site's delivery count.
    pub fn max_site_load(&self) -> u64 {
        self.per_site_deliveries.values().copied().max().unwrap_or(0)
    }

    /// Fraction of traffic that crossed sites (0.0 when nothing was sent).
    pub fn remote_fraction(&self) -> f64 {
        if self.sent_total == 0 {
            0.0
        } else {
            self.sent_remote as f64 / self.sent_total as f64
        }
    }

    /// Mean sampled latency (0.0 when nothing was sent).
    pub fn mean_latency(&self) -> f64 {
        if self.sent_total == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.sent_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut s = NetStats::default();
        s.record_send(false, 1);
        s.record_send(true, 16);
        s.record_delivery(0);
        assert_eq!(s.sent_total, 2);
        assert_eq!(s.sent_remote, 1);
        assert_eq!(s.delivered_total, 1);
        assert!((s.remote_fraction() - 0.5).abs() < 1e-9);
        assert!((s.mean_latency() - 8.5).abs() < 1e-9);
        assert_eq!(s.latency_buckets[0], 1);
        assert_eq!(s.latency_buckets[4], 1);
        assert_eq!(s.max_site_load(), 1);
    }

    #[test]
    fn empty_stats_divide_safely() {
        let s = NetStats::default();
        assert_eq!(s.remote_fraction(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
    }

    #[test]
    fn huge_latency_clamps_to_last_bucket() {
        let mut s = NetStats::default();
        s.record_send(false, u64::MAX);
        assert_eq!(s.latency_buckets[15], 1);
    }
}
