//! A deterministic *parallel* sharded executor — the work-stealing
//! runtime of ROADMAP item 2.
//!
//! Nodes are grouped into shards by the caller (keyed by certified
//! `ShardPlan` colocation classes, falling back to Lemma 5 site-coupling
//! classes — see `dist::parallel`). Execution proceeds in conservative
//! barrier rounds at the global minimum pending virtual time `T`: every
//! shard with a message due at `T` becomes one batch task, tasks are
//! published on a shared channel acting as a work-stealing injector
//! (workers claim competitively; claiming a task whose nominal home is
//! another worker counts as a *steal*), each worker applies its shard's
//! whole `T`-batch of facts against the shard-local mailbox heap, and the
//! coordinator then merges the round. Because the minimum message
//! latency is 1, every send produced at `T` lands strictly after `T` —
//! the round barrier is therefore also the proof that virtual time
//! advances every round. Round planning is O(width log shards): a lazy
//! due index (a min-heap of `(head time, shard)` entries, validated
//! against the live mailbox heads on pop) replaces scanning every
//! shard, so fleets of thousands of mostly-idle shards pay only for the
//! shards that actually wake.
//!
//! # Determinism
//!
//! Workers route their own outbound traffic: latency is sampled
//! *statelessly* per send, by hashing `(seed, T, from, to, batch
//! nonce)` — all worker-count-invariant quantities — so the sampled
//! stream is a pure function of the run's inputs and no serial RNG
//! bottlenecks the merge. The per-link FIFO clamps of [`Network`] are
//! *source-shard-local*: a link's sends all originate from one shard,
//! whose batches run serially in round order, so workers apply the
//! clamp themselves with results identical to a global admission-order
//! clamp. The coordinator then admits routed sends in shard order (not
//! completion order), assigning only the global send-sequence
//! tiebreaker, and allocates disjoint, time-monotone
//! delivery-sequence ranges per round. Final node states, occurrence
//! timestamps, traffic statistics, round counts and virtual durations
//! are therefore identical for every worker count; only wall-clock
//! timings and the per-worker load split vary. The single-queue
//! [`Network`] remains the conformance oracle: `testkit::conformance`
//! audit 10 replays each parallel run against it and diffs occurrence
//! sets and final □-views (under `Fixed` latency no sampling happens at
//! all and the parallel run reproduces the oracle bitwise).
//!
//! # Quiescence and budget
//!
//! In-flight work is tracked with the same atomic counter pattern as
//! [`run_threaded`]: the coordinator increments it when merging sends,
//! workers decrement it per delivery, and the coordinator reads it only
//! at round barriers, where it is exact. A run that exhausts its step
//! budget with messages still pending reports
//! [`Termination::BudgetExhausted`] honestly; budget checks happen at
//! round granularity, so a run may overshoot `max_steps` by at most one
//! round's width (the same honesty contract as the tenant quantum).
//!
//! [`Network`]: crate::Network
//! [`run_threaded`]: crate::run_threaded

use crate::net::{
    Ctx, LatencyModel, NodeId, Process, RunOutcome, SimConfig, SiteId, Termination, Time,
};
use crate::stats::NetStats;
use crossbeam::channel::unbounded;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Configuration of the parallel sharded executor.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// OS worker threads. `0` or `1` runs every batch inline on the
    /// coordinator (no pool, no channel overhead — the cleanest mode for
    /// measuring per-shard batch costs).
    pub workers: usize,
    /// Virtual worker counts to model: for each `k`, the engine
    /// accumulates the *scheduled makespan* — per round, the measured
    /// per-shard batch costs are greedily (LPT) assigned to `k` virtual
    /// workers and the maximum load plus the serial merge cost is added.
    /// This equals wall-clock when each virtual worker maps to a real
    /// core, and is how core scaling is reported on hosts with fewer
    /// cores than `k`.
    pub model_workers: Vec<usize>,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig { workers: 1, model_workers: Vec::new() }
    }
}

impl ParallelConfig {
    /// A pool of `workers` threads with no virtual-worker modeling.
    pub fn new(workers: usize) -> ParallelConfig {
        ParallelConfig { workers, model_workers: Vec::new() }
    }
}

/// What one worker thread did over a whole run. Wall-clock and load
/// split are scheduler-dependent: they are *excluded* from the
/// determinism guarantee (everything in [`ParallelStats`] outside
/// `per_worker`, `busy_ns`, `merge_ns`, `wall_ns` and `modeled_ns` is
/// worker-count invariant).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerLoad {
    /// Messages this worker delivered.
    pub delivered: u64,
    /// Nanoseconds spent executing batches.
    pub busy_ns: u64,
    /// Tasks claimed whose nominal home was another worker.
    pub steals: u64,
    /// Maximum injector depth observed at claim time (claimed task
    /// included).
    pub max_queue_depth: usize,
}

/// Aggregate statistics of one [`run_sharded`] call.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Worker threads used (1 means inline).
    pub workers: usize,
    /// Number of shards.
    pub shards: usize,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Total steals across workers.
    pub steals: u64,
    /// Widest round (most shards due at one virtual time) — the
    /// available parallelism ceiling of the run.
    pub max_round_width: usize,
    /// Total nanoseconds of batch execution across workers.
    pub busy_ns: u64,
    /// Total nanoseconds the coordinator spent merging rounds.
    pub merge_ns: u64,
    /// Wall-clock nanoseconds of the whole run.
    pub wall_ns: u64,
    /// Virtual time of the last delivery (the run's virtual duration).
    pub duration: Time,
    /// Scheduled makespan per modeled worker count (see
    /// [`ParallelConfig::model_workers`]), in the order requested.
    pub modeled_ns: Vec<(usize, u64)>,
    /// Per-worker load breakdown.
    pub per_worker: Vec<WorkerLoad>,
    /// Deliveries per shard.
    pub per_shard_delivered: Vec<u64>,
    /// Virtual time of each shard's last delivery (0 when idle).
    pub per_shard_last_time: Vec<Time>,
}

/// Result of [`run_sharded`]: nodes in their original order, the honest
/// [`RunOutcome`], traffic statistics comparable to [`Network`]'s, and
/// the parallel-runtime breakdown.
///
/// [`Network`]: crate::Network
pub struct ShardedRun<P> {
    /// The processes, indexed by their original [`NodeId`].
    pub nodes: Vec<P>,
    /// Steps delivered and honest termination.
    pub outcome: RunOutcome,
    /// Traffic statistics (sends, deliveries, latencies, per-site load).
    pub net: NetStats,
    /// Parallel-runtime statistics.
    pub stats: ParallelStats,
}

/// A message sitting in a shard's mailbox heap, ordered by
/// `(at, send_seq)` exactly like the oracle's in-flight queue.
struct Pending<M> {
    at: Time,
    send_seq: u64,
    from: NodeId,
    slot: usize,
    msg: M,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.send_seq == other.send_seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.send_seq).cmp(&(other.at, other.send_seq))
    }
}

/// One shard: its nodes, their global ids, its mailbox heap, and the
/// FIFO clocks of every link *sourced* here. A link `(from, to)` only
/// ever carries sends produced by `from`'s shard, and that shard's
/// batches run serially in round order — so the per-link clamp is
/// shard-local state the workers apply themselves, off the
/// coordinator's critical path, with results identical to a global
/// admission-order clamp.
struct Shard<M, P> {
    node_ids: Vec<NodeId>,
    nodes: Vec<P>,
    heap: BinaryHeap<Reverse<Pending<M>>>,
    link_clock: HashMap<u64, Time, BuildLinkHasher>,
    delivered: u64,
    last_time: Time,
}

impl<M, P> Shard<M, P> {
    fn new() -> Shard<M, P> {
        Shard {
            node_ids: Vec::new(),
            nodes: Vec::new(),
            heap: BinaryHeap::new(),
            link_clock: HashMap::default(),
            delivered: 0,
            last_time: 0,
        }
    }

    /// Apply the per-link FIFO clamp to one send sourced from this
    /// shard: it may not overtake the link's previous send.
    fn fifo_clamp<M2>(&mut self, r: &mut Routed<M2>) {
        let key = (u64::from(r.pending.from.0) << 32) | u64::from(r.to.0);
        let clock = self.link_clock.entry(key).or_insert(0);
        r.pending.at = r.pending.at.max(*clock + 1);
        *clock = r.pending.at;
    }
}

/// A round task: one due shard, moved to a worker by value.
struct Task<M, P> {
    due_ix: usize,
    shard_ix: usize,
    shard: Shard<M, P>,
    t: Time,
    seq_base: u64,
    home: usize,
}

/// A completed round task, moved back to the coordinator.
struct Done<M, P> {
    due_ix: usize,
    shard_ix: usize,
    shard: Shard<M, P>,
    outbox: Vec<Routed<M>>,
    delivered: u64,
    busy_ns: u64,
}

/// SplitMix64's finalizer — the stateless per-send latency hash and the
/// link-clock key mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A single-`u64` multiplicative hasher for the link-clock map. Link
/// keys are packed id pairs mixed through [`splitmix64`]; SipHash would
/// be pure overhead on this per-send hot path.
#[derive(Default)]
struct LinkHasher(u64);

impl std::hash::Hasher for LinkHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("link keys hash as u64")
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = splitmix64(n);
    }
}

type BuildLinkHasher = std::hash::BuildHasherDefault<LinkHasher>;

/// A fully routed send produced by a worker: destination placement and
/// pre-clamp arrival time computed in parallel, with only the global
/// send-sequence tiebreaker and the FIFO clamp left for the
/// coordinator's [`Router::admit`].
struct Routed<M> {
    shard: usize,
    to: NodeId,
    pending: Pending<M>,
}

/// Shared read-only routing table handed to every worker: the site map,
/// each node's `(shard, slot)` placement, and the latency model.
struct RouteTable {
    config: SimConfig,
    sites: Vec<SiteId>,
    slot_of: Vec<(usize, usize)>,
}

impl RouteTable {
    /// Route one send produced at time `t`: sample latency statelessly
    /// by hashing `(seed, t, from, to, nonce)` — every input is a pure
    /// function of the run's inputs, so the stream is identical for
    /// every worker count and merge order — record the send into the
    /// caller's local statistics, and compute destination placement.
    /// `nonce` is the sender batch's send counter.
    #[allow(clippy::too_many_arguments)]
    fn route<M>(
        &self,
        t: Time,
        from: NodeId,
        to: NodeId,
        msg: M,
        extra: Time,
        nonce: u64,
        net: &mut NetStats,
    ) -> Routed<M> {
        let (sf, st) = (self.sites[from.0 as usize], self.sites[to.0 as usize]);
        let draw = |min: Time, max: Time| {
            let key = t ^ (u64::from(from.0) << 40) ^ (u64::from(to.0) << 20) ^ nonce;
            min + splitmix64(self.config.seed ^ splitmix64(key)) % (max - min + 1)
        };
        let lat = match self.config.latency {
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform { min, max } => draw(min, max),
            LatencyModel::PerHop { local, remote_min, remote_max } => {
                if sf == st {
                    local
                } else {
                    draw(remote_min, remote_max)
                }
            }
        }
        .max(1);
        let latency = lat + extra;
        net.record_send(sf != st, latency);
        let (shard, slot) = self.slot_of[to.0 as usize];
        Routed { shard, to, pending: Pending { at: t + latency, send_seq: 0, from, slot, msg } }
    }
}

/// Coordinator-only merge state: the global send-sequence tiebreaker
/// and the folded traffic statistics. Admission runs in shard order, so
/// the sequence stream is worker-count invariant; everything else about
/// a send (latency, placement, FIFO clamp) was already computed on the
/// worker that produced it.
struct Router {
    net: NetStats,
    send_seq: u64,
}

impl Router {
    /// Admit one routed send: assign the global tiebreaker and hand
    /// back the destination.
    fn admit<M>(&mut self, mut r: Routed<M>) -> (usize, Pending<M>) {
        self.send_seq += 1;
        r.pending.send_seq = self.send_seq;
        (r.shard, r.pending)
    }
}

/// Deliver every message due at `t` in `shard`, in `(at, send_seq)`
/// order, routing every produced send (latency draw, destination
/// placement) right here on the worker; the coordinator's merge only
/// admits them. Delivery sequences are `seq_base + 1 ..`, 1-based
/// within the shard's disjoint range like the oracle's post-increment
/// counter.
fn run_batch<M, P: Process<M>>(
    shard: &mut Shard<M, P>,
    t: Time,
    seq_base: u64,
    route: &RouteTable,
    net: &mut NetStats,
) -> (Vec<Routed<M>>, u64) {
    let mut batched: Vec<Routed<M>> = Vec::new();
    let mut delivered = 0u64;
    let mut nonce = 0u64;
    while shard.heap.peek().is_some_and(|Reverse(p)| p.at == t) {
        let Reverse(p) = shard.heap.pop().expect("peeked entry");
        let to_id = shard.node_ids[p.slot];
        net.record_delivery(route.sites[to_id.0 as usize].0);
        delivered += 1;
        let mut outbox: Vec<(NodeId, M, Time)> = Vec::new();
        {
            let mut ctx = Ctx::manual(to_id, t, seq_base + delivered, &mut outbox);
            shard.nodes[p.slot].on_message(&mut ctx, p.from, p.msg);
        }
        for (dest, msg, extra) in outbox {
            let mut routed = route.route(t, to_id, dest, msg, extra, nonce, net);
            if route.config.fifo_links {
                shard.fifo_clamp(&mut routed);
            }
            batched.push(routed);
            nonce += 1;
        }
    }
    shard.delivered += delivered;
    if delivered > 0 {
        shard.last_time = t;
    }
    (batched, delivered)
}

/// Pop the lazy due index down to the global minimum pending time and
/// collect the shards due at it. Entries are validated against the
/// live mailbox heads: a stale entry (its shard's head moved later)
/// re-arms with the true head, duplicates collapse. Each round costs
/// O(width log |index|) instead of a scan of every shard.
fn plan_round<M, P>(
    slots: &[Option<Shard<M, P>>],
    due: &mut BinaryHeap<Reverse<(Time, usize)>>,
) -> Option<(Time, Vec<usize>)> {
    let head_of = |ix: usize| -> Option<Time> {
        slots[ix].as_ref().and_then(|s| s.heap.peek().map(|Reverse(p)| p.at))
    };
    let t = loop {
        let &Reverse((t, ix)) = due.peek()?;
        match head_of(ix) {
            Some(h) if h == t => break t,
            Some(h) => {
                // Stale: the head moved. It can only have moved later —
                // merges that lower a head arm a fresh entry for it.
                debug_assert!(h > t, "mailbox head moved earlier without arming the due index");
                due.pop();
                due.push(Reverse((h, ix)));
            }
            None => {
                due.pop();
            }
        }
    };
    let mut shards = Vec::new();
    while let Some(&Reverse((ti, ix))) = due.peek() {
        if ti != t {
            break;
        }
        due.pop();
        match head_of(ix) {
            Some(h) if h == t && !shards.contains(&ix) => shards.push(ix),
            Some(h) if h > t => due.push(Reverse((h, ix))),
            _ => {}
        }
    }
    Some((t, shards))
}

/// Greedy LPT makespan of `costs` over `k` bins: each cost, largest
/// first, goes to the least-loaded bin; the result is the maximum load.
fn lpt_makespan(costs: &[u64], k: usize) -> u64 {
    let mut sorted = costs.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut bins = vec![0u64; k.max(1)];
    for c in sorted {
        let min_ix = (0..bins.len()).min_by_key(|&i| bins[i]).expect("at least one bin");
        bins[min_ix] += c;
    }
    bins.into_iter().max().unwrap_or(0)
}

/// The shared coordinator loop: plan rounds, hand due shards to `exec`,
/// merge results in shard order. `exec` is either the inline runner or
/// the channel dispatcher of the worker pool.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn drive<M, P: Process<M>>(
    slots: &mut [Option<Shard<M, P>>],
    due: &mut BinaryHeap<Reverse<(Time, usize)>>,
    router: &mut Router,
    in_flight: &AtomicU64,
    max_steps: u64,
    model: &mut [(usize, u64)],
    stats: &mut ParallelStats,
    exec: &mut dyn FnMut(Vec<Task<M, P>>) -> Vec<Done<M, P>>,
) -> (u64, Termination) {
    let mut steps = 0u64;
    let mut next_seq = 0u64;
    loop {
        // Quiescence first, budget second: delivering exactly the budget
        // and then going silent is convergence, not exhaustion.
        if in_flight.load(Ordering::SeqCst) == 0 {
            return (steps, Termination::Quiescent);
        }
        if steps >= max_steps {
            return (steps, Termination::BudgetExhausted);
        }
        let (t, round) = plan_round(slots, due).expect("in-flight messages imply a due round");
        let mut tasks = Vec::with_capacity(round.len());
        for (due_ix, &shard_ix) in round.iter().enumerate() {
            let shard = slots[shard_ix].take().expect("due shard present");
            // Disjoint per-shard delivery-seq ranges: heap length bounds
            // the batch, gaps are fine, and ranges grow with rounds so
            // sequences stay monotone with virtual time.
            let seq_base = next_seq;
            next_seq += shard.heap.len() as u64;
            tasks.push(Task { due_ix, shard_ix, shard, t, seq_base, home: shard_ix });
        }
        let mut dones = exec(tasks);
        dones.sort_unstable_by_key(|d| d.due_ix);

        let merge_start = Instant::now();
        let mut busy = Vec::with_capacity(dones.len());
        let mut round_outs = Vec::with_capacity(dones.len());
        for d in dones {
            slots[d.shard_ix] = Some(d.shard);
            steps += d.delivered;
            busy.push(d.busy_ns);
            round_outs.push(d.outbox);
        }
        // Re-arm the index for every shard that ran: its old head was
        // consumed, whatever remains is its new head.
        for &shard_ix in &round {
            let slot = slots[shard_ix].as_ref().expect("all shards restored");
            if let Some(Reverse(p)) = slot.heap.peek() {
                due.push(Reverse((p.at, shard_ix)));
            }
        }
        let mut sent = 0u64;
        for outbox in round_outs {
            for routed in outbox {
                let (shard_ix, pending) = router.admit(routed);
                let heap = &mut slots[shard_ix].as_mut().expect("all shards restored").heap;
                let lowered = match heap.peek() {
                    Some(Reverse(h)) => pending.at < h.at,
                    None => true,
                };
                if lowered {
                    due.push(Reverse((pending.at, shard_ix)));
                }
                heap.push(Reverse(pending));
                sent += 1;
            }
        }
        in_flight.fetch_add(sent, Ordering::SeqCst);
        let merge_ns = merge_start.elapsed().as_nanos() as u64;

        stats.rounds += 1;
        stats.max_round_width = stats.max_round_width.max(busy.len());
        stats.busy_ns += busy.iter().sum::<u64>();
        stats.merge_ns += merge_ns;
        for (k, acc) in model.iter_mut() {
            *acc += lpt_makespan(&busy, *k) + merge_ns;
        }
    }
}

/// Run `nodes` partitioned into shards by `shard_of` (one shard index
/// per node) until quiescence or `max_steps` deliveries, on
/// `par.workers` threads. `injections` seed the run at virtual time 0
/// with an extra delay each, exactly like [`Network::inject_after`].
///
/// Results — node states, occurrence timestamps, [`NetStats`], virtual
/// duration — are a pure function of `(config.seed, inputs)` and are
/// identical for every worker count; see the module docs for the
/// argument and for what the worker pool does.
///
/// [`Network::inject_after`]: crate::Network::inject_after
pub fn run_sharded<M, P>(
    nodes: Vec<(SiteId, P)>,
    shard_of: &[usize],
    injections: Vec<(NodeId, NodeId, M, Time)>,
    config: SimConfig,
    par: &ParallelConfig,
    max_steps: u64,
) -> ShardedRun<P>
where
    M: Send,
    P: Process<M> + Send,
{
    let wall_start = Instant::now();
    let n = nodes.len();
    assert_eq!(shard_of.len(), n, "one shard index per node");
    let shard_count = shard_of.iter().copied().max().map_or(0, |m| m + 1);
    let sites: Vec<SiteId> = nodes.iter().map(|&(s, _)| s).collect();
    let mut slot_of = vec![(0usize, 0usize); n];
    let mut slots: Vec<Option<Shard<M, P>>> =
        (0..shard_count).map(|_| Some(Shard::new())).collect();
    for (ix, (_site, p)) in nodes.into_iter().enumerate() {
        let s = shard_of[ix];
        let shard = slots[s].as_mut().expect("shard present before run");
        slot_of[ix] = (s, shard.nodes.len());
        shard.node_ids.push(NodeId(ix as u32));
        shard.nodes.push(p);
    }

    let route = RouteTable { config, sites, slot_of };
    let mut router = Router { net: NetStats::default(), send_seq: 0 };
    let in_flight = AtomicU64::new(0);
    for (nonce, (from, to, msg, extra)) in injections.into_iter().enumerate() {
        let mut routed = route.route(0, from, to, msg, extra, nonce as u64, &mut router.net);
        if config.fifo_links {
            // The clamp lives in the *source* shard, like batch sends.
            let (src, _) = route.slot_of[from.0 as usize];
            slots[src].as_mut().expect("shard present").fifo_clamp(&mut routed);
        }
        let (shard_ix, pending) = router.admit(routed);
        slots[shard_ix].as_mut().expect("shard present").heap.push(Reverse(pending));
        in_flight.fetch_add(1, Ordering::SeqCst);
    }
    // Arm the due index with every seeded mailbox.
    let mut due: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    for (ix, s) in slots.iter().enumerate() {
        if let Some(Reverse(p)) = s.as_ref().and_then(|s| s.heap.peek()) {
            due.push(Reverse((p.at, ix)));
        }
    }

    let workers = par.workers.max(1);
    let mut model: Vec<(usize, u64)> = par.model_workers.iter().map(|&k| (k, 0u64)).collect();
    let mut stats = ParallelStats { workers, shards: shard_count, ..ParallelStats::default() };

    let (steps, termination, per_worker, worker_nets) = if workers == 1 {
        let mut load = WorkerLoad::default();
        let mut net = NetStats::default();
        let mut exec = |tasks: Vec<Task<M, P>>| -> Vec<Done<M, P>> {
            let width = tasks.len();
            load.max_queue_depth = load.max_queue_depth.max(width);
            tasks
                .into_iter()
                .map(|mut task| {
                    let start = Instant::now();
                    let (outbox, delivered) =
                        run_batch(&mut task.shard, task.t, task.seq_base, &route, &mut net);
                    let busy_ns = start.elapsed().as_nanos() as u64;
                    load.busy_ns += busy_ns;
                    load.delivered += delivered;
                    in_flight.fetch_sub(delivered, Ordering::SeqCst);
                    Done {
                        due_ix: task.due_ix,
                        shard_ix: task.shard_ix,
                        shard: task.shard,
                        outbox,
                        delivered,
                        busy_ns,
                    }
                })
                .collect()
        };
        let (steps, termination) = drive(
            &mut slots,
            &mut due,
            &mut router,
            &in_flight,
            max_steps,
            &mut model,
            &mut stats,
            &mut exec,
        );
        (steps, termination, vec![load], vec![net])
    } else {
        let (task_tx, task_rx) = unbounded::<Task<M, P>>();
        let (done_tx, done_rx) = unbounded::<Done<M, P>>();
        let in_flight_ref = &in_flight;
        let route_ref = &route;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let rx = task_rx.clone();
                let tx = done_tx.clone();
                handles.push(scope.spawn(move || {
                    let mut load = WorkerLoad::default();
                    let mut net = NetStats::default();
                    for mut task in rx.iter() {
                        load.max_queue_depth = load.max_queue_depth.max(rx.len() + 1);
                        if task.home % workers != w {
                            load.steals += 1;
                        }
                        let start = Instant::now();
                        let (outbox, delivered) =
                            run_batch(&mut task.shard, task.t, task.seq_base, route_ref, &mut net);
                        let busy_ns = start.elapsed().as_nanos() as u64;
                        load.busy_ns += busy_ns;
                        load.delivered += delivered;
                        in_flight_ref.fetch_sub(delivered, Ordering::SeqCst);
                        let done = Done {
                            due_ix: task.due_ix,
                            shard_ix: task.shard_ix,
                            shard: task.shard,
                            outbox,
                            delivered,
                            busy_ns,
                        };
                        if tx.send(done).is_err() {
                            break;
                        }
                    }
                    (load, net)
                }));
            }
            drop(done_tx);
            let mut exec = |tasks: Vec<Task<M, P>>| -> Vec<Done<M, P>> {
                let width = tasks.len();
                for task in tasks {
                    task_tx.send(task).expect("workers alive");
                }
                (0..width).map(|_| done_rx.recv().expect("worker completed task")).collect()
            };
            let (steps, termination) = drive(
                &mut slots,
                &mut due,
                &mut router,
                &in_flight,
                max_steps,
                &mut model,
                &mut stats,
                &mut exec,
            );
            drop(task_tx);
            let (loads, nets): (Vec<WorkerLoad>, Vec<NetStats>) =
                handles.into_iter().map(|h| h.join().expect("worker panicked")).unzip();
            (steps, termination, loads, nets)
        })
    };

    // Fold the worker-local traffic statistics once, off the per-round
    // critical path. `absorb` is commutative addition, so the total is
    // independent of how deliveries were split across workers.
    for net in &worker_nets {
        router.net.absorb(net);
    }

    debug_assert_eq!(
        in_flight.load(Ordering::SeqCst),
        slots.iter().flatten().map(|s| s.heap.len() as u64).sum::<u64>(),
        "in-flight counter agrees with mailbox depth at the barrier"
    );

    stats.steals = per_worker.iter().map(|l| l.steals).sum();
    stats.per_worker = per_worker;
    stats.per_shard_delivered =
        slots.iter().map(|s| s.as_ref().map_or(0, |s| s.delivered)).collect();
    stats.per_shard_last_time =
        slots.iter().map(|s| s.as_ref().map_or(0, |s| s.last_time)).collect();
    stats.duration = stats.per_shard_last_time.iter().copied().max().unwrap_or(0);
    stats.modeled_ns = model;
    stats.wall_ns = wall_start.elapsed().as_nanos() as u64;

    let mut out: Vec<Option<P>> = (0..n).map(|_| None).collect();
    for shard in slots.into_iter().flatten() {
        for (id, p) in shard.node_ids.into_iter().zip(shard.nodes) {
            out[id.0 as usize] = Some(p);
        }
    }
    let nodes: Vec<P> = out.into_iter().map(|p| p.expect("every node returned")).collect();

    ShardedRun { nodes, outcome: RunOutcome { steps, termination }, net: router.net, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Network;

    /// Echoes every `u64` message back, decremented, until zero.
    struct Countdown {
        received: Vec<(Time, u64)>,
    }

    impl Process<u64> for Countdown {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.received.push((ctx.now(), msg));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    /// Records `(now, delivery_seq, msg)` without replying.
    struct SeqSink {
        received: Vec<(Time, u64, u64)>,
    }

    impl Process<u64> for SeqSink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
            self.received.push((ctx.now(), ctx.delivery_seq(), msg));
        }
    }

    fn fixed(seed: u64) -> SimConfig {
        SimConfig { seed, latency: LatencyModel::Fixed(1), fifo_links: true }
    }

    #[test]
    fn sharded_matches_network_under_fixed_latency() {
        // With Fixed latency no RNG is consumed, so the parallel merge
        // and the oracle's global queue produce bitwise-equal timings.
        let mk = || {
            vec![
                (SiteId(0), Countdown { received: vec![] }),
                (SiteId(1), Countdown { received: vec![] }),
            ]
        };
        let mut net = Network::new(fixed(7), mk());
        net.inject(NodeId(0), NodeId(1), 5);
        let out = net.run_to_quiescence(1_000);
        let oracle: Vec<_> = net.into_nodes().into_iter().map(|c| c.received).collect();

        let run = run_sharded(
            mk(),
            &[0, 1],
            vec![(NodeId(0), NodeId(1), 5, 0)],
            fixed(7),
            &ParallelConfig::new(1),
            1_000,
        );
        assert_eq!(run.outcome.steps, out.steps);
        assert!(run.outcome.is_quiescent());
        let got: Vec<_> = run.nodes.into_iter().map(|c| c.received).collect();
        assert_eq!(got, oracle, "fixed-latency timings match the oracle exactly");
        assert_eq!(run.net.sent_total, 6);
        assert_eq!(run.net.delivered_total, 6);
    }

    #[test]
    fn results_are_worker_count_invariant() {
        let run = |workers: usize| {
            let nodes: Vec<(SiteId, Countdown)> =
                (0..8).map(|i| (SiteId(i % 4), Countdown { received: vec![] })).collect();
            let shard_of: Vec<usize> = (0..8).map(|i| i % 4).collect();
            let injections: Vec<(NodeId, NodeId, u64, Time)> =
                (0..8).map(|i| (NodeId(i), NodeId((i + 1) % 8), 6, 0)).collect();
            let config = SimConfig {
                seed: 42,
                latency: LatencyModel::Uniform { min: 1, max: 9 },
                fifo_links: true,
            };
            let r = run_sharded(
                nodes,
                &shard_of,
                injections,
                config,
                &ParallelConfig::new(workers),
                100_000,
            );
            let received: Vec<_> = r.nodes.into_iter().map(|c| c.received).collect();
            (
                received,
                r.outcome,
                r.stats.rounds,
                r.stats.duration,
                r.stats.per_shard_delivered.clone(),
                r.stats.per_shard_last_time.clone(),
                r.net.delivered_total,
                r.net.latency_sum,
            )
        };
        let base = run(1);
        assert_eq!(run(2), base, "2 workers change nothing observable");
        assert_eq!(run(4), base, "4 workers change nothing observable");
        assert!(base.1.is_quiescent());
    }

    #[test]
    fn delivery_seqs_are_unique_and_time_monotone() {
        let nodes: Vec<(SiteId, SeqSink)> =
            (0..4).map(|i| (SiteId(i), SeqSink { received: vec![] })).collect();
        let injections: Vec<(NodeId, NodeId, u64, Time)> =
            (0..16u64).map(|i| (NodeId(0), NodeId((i % 4) as u32), i, i % 5)).collect();
        let config = SimConfig {
            seed: 3,
            latency: LatencyModel::Uniform { min: 1, max: 6 },
            fifo_links: true,
        };
        let run =
            run_sharded(nodes, &[0, 1, 2, 3], injections, config, &ParallelConfig::new(2), 1_000);
        let mut all: Vec<(Time, u64)> =
            run.nodes.iter().flat_map(|s| s.received.iter().map(|&(t, q, _)| (t, q))).collect();
        assert_eq!(all.len(), 16);
        all.sort_unstable_by_key(|&(_, q)| q);
        let seqs: Vec<u64> = all.iter().map(|&(_, q)| q).collect();
        let mut uniq = seqs.clone();
        uniq.dedup();
        assert_eq!(seqs, uniq, "delivery sequences are unique");
        let times: Vec<Time> = all.iter().map(|&(t, _)| t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "seq order refines time order");
    }

    #[test]
    fn budget_exhaustion_is_honest_and_quiescence_wins_ties() {
        /// Endless echo: only a budget can stop it.
        struct Echo;
        impl Process<u64> for Echo {
            fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
                ctx.send(from, msg);
            }
        }
        let nodes = vec![(SiteId(0), Echo), (SiteId(1), Echo)];
        let run = run_sharded(
            nodes,
            &[0, 1],
            vec![(NodeId(0), NodeId(1), 1, 0)],
            fixed(1),
            &ParallelConfig::new(2),
            50,
        );
        assert_eq!(run.outcome.termination, Termination::BudgetExhausted);
        assert!(run.outcome.steps >= 50);

        // A countdown that delivers exactly the budget and then goes
        // silent is Quiescent, not exhausted.
        let nodes = vec![
            (SiteId(0), Countdown { received: vec![] }),
            (SiteId(1), Countdown { received: vec![] }),
        ];
        let run = run_sharded(
            nodes,
            &[0, 1],
            vec![(NodeId(0), NodeId(1), 2, 0)],
            fixed(1),
            &ParallelConfig::new(1),
            3,
        );
        assert_eq!(run.outcome.steps, 3);
        assert_eq!(run.outcome.termination, Termination::Quiescent);
    }

    #[test]
    fn modeled_makespans_shrink_with_virtual_workers() {
        let nodes: Vec<(SiteId, Countdown)> =
            (0..8).map(|i| (SiteId(i), Countdown { received: vec![] })).collect();
        let shard_of: Vec<usize> = (0..8).collect();
        let injections: Vec<(NodeId, NodeId, u64, Time)> =
            (0..8).map(|i| (NodeId(i), NodeId((i + 4) % 8), 10, 0)).collect();
        let par = ParallelConfig { workers: 1, model_workers: vec![1, 2, 4, 8] };
        let run = run_sharded(nodes, &shard_of, injections, fixed(2), &par, 100_000);
        assert!(run.outcome.is_quiescent());
        assert_eq!(run.stats.modeled_ns.len(), 4);
        let ns: Vec<u64> = run.stats.modeled_ns.iter().map(|&(_, v)| v).collect();
        assert!(
            ns.windows(2).all(|w| w[0] >= w[1]),
            "LPT makespan never grows with more bins: {ns:?}"
        );
        assert!(run.stats.max_round_width >= 2, "the ring round-trips overlap");
        assert_eq!(run.stats.per_worker.len(), 1);
    }

    #[test]
    fn pool_reports_worker_loads() {
        let nodes: Vec<(SiteId, Countdown)> =
            (0..6).map(|i| (SiteId(i % 3), Countdown { received: vec![] })).collect();
        let shard_of: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let injections: Vec<(NodeId, NodeId, u64, Time)> =
            (0..6).map(|i| (NodeId(i), NodeId((i + 1) % 6), 8, 0)).collect();
        let run =
            run_sharded(nodes, &shard_of, injections, fixed(5), &ParallelConfig::new(2), 100_000);
        assert!(run.outcome.is_quiescent());
        assert_eq!(run.stats.workers, 2);
        assert_eq!(run.stats.per_worker.len(), 2);
        let delivered: u64 = run.stats.per_worker.iter().map(|l| l.delivered).sum();
        assert_eq!(delivered, run.outcome.steps);
        assert_eq!(run.stats.per_shard_delivered.iter().sum::<u64>(), run.outcome.steps);
    }

    #[test]
    fn empty_run_is_quiescent() {
        let run = run_sharded::<u64, Countdown>(
            vec![],
            &[],
            vec![],
            fixed(0),
            &ParallelConfig::default(),
            10,
        );
        assert_eq!(run.outcome, RunOutcome { steps: 0, termination: Termination::Quiescent });
        assert_eq!(run.stats.shards, 0);
    }
}
