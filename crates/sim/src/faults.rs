//! Seeded fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes, per link and per site pair, how the network
//! misbehaves: message drops, duplication, bounded extra delay (which
//! reorders messages even on FIFO links, since a fault-delayed copy is
//! released behind later traffic), site partitions with heal times, and
//! crash–restart windows for individual nodes. The plan carries its own
//! RNG seed, so fault decisions are reproducible and independent of the
//! latency sampling stream: two runs with equal `(SimConfig, FaultPlan)`
//! are identical.
//!
//! Faults apply to traffic between *distinct* nodes only. Self-sends
//! (timers, think-time wake-ups) model node-local work and are never
//! dropped, duplicated or delayed by the link layer — though a crashed
//! node does lose timers that come due while it is down. Externally
//! injected messages ([`Network::inject`]) are exempt as well: they model
//! the workload arriving, not the protocol under test.
//!
//! [`Network::inject`]: crate::Network::inject

use crate::net::{NodeId, SiteId, Time};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Per-link misbehavior probabilities and delay bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently lost.
    pub drop: f64,
    /// Probability a second copy of the message is delivered.
    pub duplicate: f64,
    /// Extra delay sampled uniformly from `[min, max]` and added on top
    /// of the regular latency. A fault-delayed copy bypasses the per-link
    /// FIFO clamp, so nonzero bounds produce reordering even when
    /// `SimConfig::fifo_links` is on.
    pub extra_delay: (Time, Time),
}

impl Default for LinkFaults {
    fn default() -> LinkFaults {
        LinkFaults { drop: 0.0, duplicate: 0.0, extra_delay: (0, 0) }
    }
}

impl LinkFaults {
    /// `true` when this configuration never perturbs anything.
    pub fn is_benign(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.extra_delay.1 == 0
    }
}

/// A connectivity cut between two sites over `[from, until)`; messages
/// crossing the cut during the window are dropped. The partition heals at
/// `until` — retransmissions sent afterwards go through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub a: SiteId,
    /// The other side.
    pub b: SiteId,
    /// Virtual time the cut appears.
    pub from: Time,
    /// Virtual time the cut heals (exclusive).
    pub until: Time,
}

impl Partition {
    /// `true` when a message between `x` and `y` sent at `now` is cut.
    pub fn severs(&self, x: SiteId, y: SiteId, now: Time) -> bool {
        let pair = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        pair && now >= self.from && now < self.until
    }
}

/// A crash window for one node: every message that comes due while the
/// node is down is lost, and the node's volatile state is gone — on the
/// first activity at or after `restart_at` the network calls
/// [`Process::on_restart`] so the node can rebuild from durable state.
///
/// [`Process::on_restart`]: crate::Process::on_restart
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// The crashing node.
    pub node: NodeId,
    /// Virtual time of the crash.
    pub at: Time,
    /// Virtual time of the restart; `None` crashes forever.
    pub restart_at: Option<Time>,
}

/// A complete, seeded fault scenario. Build with the fluent methods:
///
/// ```
/// use sim::{FaultPlan, NodeId, SiteId};
/// let plan = FaultPlan::new(0xFA57)
///     .drop_rate(0.2)
///     .duplicate_rate(0.1)
///     .jitter(0, 25)
///     .partition(SiteId(0), SiteId(1), 100, 400)
///     .crash(NodeId(3), 50, Some(300));
/// assert_eq!(plan.crashes().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the fault-decision RNG (independent of latency sampling).
    pub seed: u64,
    default_link: LinkFaults,
    links: HashMap<(NodeId, NodeId), LinkFaults>,
    partitions: Vec<Partition>,
    crashes: Vec<Crash>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given RNG seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Set the default drop probability for every link.
    #[must_use]
    pub fn drop_rate(mut self, p: f64) -> FaultPlan {
        self.default_link.drop = p;
        self
    }

    /// Set the default duplication probability for every link.
    #[must_use]
    pub fn duplicate_rate(mut self, p: f64) -> FaultPlan {
        self.default_link.duplicate = p;
        self
    }

    /// Set the default extra-delay bounds for every link (enables
    /// reordering; see [`LinkFaults::extra_delay`]).
    #[must_use]
    pub fn jitter(mut self, min: Time, max: Time) -> FaultPlan {
        self.default_link.extra_delay = (min, max);
        self
    }

    /// Override the fault profile of one directed link.
    #[must_use]
    pub fn link(mut self, from: NodeId, to: NodeId, faults: LinkFaults) -> FaultPlan {
        self.links.insert((from, to), faults);
        self
    }

    /// Sever sites `a` and `b` over `[from, until)`.
    #[must_use]
    pub fn partition(mut self, a: SiteId, b: SiteId, from: Time, until: Time) -> FaultPlan {
        self.partitions.push(Partition { a, b, from, until });
        self
    }

    /// Crash `node` at `at`; restart (rebuilding from durable state) at
    /// `restart_at`, or never when `None`.
    #[must_use]
    pub fn crash(mut self, node: NodeId, at: Time, restart_at: Option<Time>) -> FaultPlan {
        self.crashes.push(Crash { node, at, restart_at });
        self
    }

    /// The configured crash windows.
    pub fn crashes(&self) -> &[Crash] {
        &self.crashes
    }

    /// The configured partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The fault profile of a directed link.
    pub fn link_faults(&self, from: NodeId, to: NodeId) -> &LinkFaults {
        self.links.get(&(from, to)).unwrap_or(&self.default_link)
    }

    /// `true` when the plan perturbs nothing at all.
    pub fn is_benign(&self) -> bool {
        self.default_link.is_benign()
            && self.links.values().all(LinkFaults::is_benign)
            && self.partitions.is_empty()
            && self.crashes.is_empty()
    }
}

/// Counters describing what the fault layer actually did in one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by link faults.
    pub dropped: u64,
    /// Extra copies delivered by duplication faults.
    pub duplicated: u64,
    /// Messages given nonzero extra fault delay.
    pub delayed: u64,
    /// Messages dropped because the endpoints were partitioned.
    pub partition_dropped: u64,
    /// Messages dropped because the destination node was down.
    pub crash_dropped: u64,
    /// Restarts performed.
    pub restarts: u64,
}

impl FaultStats {
    /// Fold these counters into a [`obs::MetricsRegistry`] under the
    /// `faults.*` namespace — the snapshotting API that subsumes this
    /// struct on run reports.
    pub fn record_into(&self, metrics: &obs::MetricsRegistry) {
        metrics.add("faults.dropped", &[], self.dropped);
        metrics.add("faults.duplicated", &[], self.duplicated);
        metrics.add("faults.delayed", &[], self.delayed);
        metrics.add("faults.partition_dropped", &[], self.partition_dropped);
        metrics.add("faults.crash_dropped", &[], self.crash_dropped);
        metrics.add("faults.restarts", &[], self.restarts);
    }
}

/// How the link layer treats one send: up to two copies, each with an
/// extra fault delay (`None` means the copy is dropped entirely).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LinkDecision {
    /// Extra delay of the primary copy, if it survives.
    pub primary: Option<Time>,
    /// Extra delay of a duplicate copy, if one is made.
    pub duplicate: Option<Time>,
}

/// Runtime state of the fault layer inside a [`Network`](crate::Network).
#[derive(Debug)]
pub(crate) struct FaultState {
    pub plan: FaultPlan,
    pub stats: FaultStats,
    rng: SmallRng,
    /// `restarted[i]` is set once crash `i`'s restart has been performed.
    restarted: Vec<bool>,
}

impl FaultState {
    pub fn new(plan: FaultPlan) -> FaultState {
        let restarted = vec![false; plan.crashes.len()];
        let rng = SmallRng::seed_from_u64(plan.seed);
        FaultState { plan, stats: FaultStats::default(), rng, restarted }
    }

    /// `true` when the two sites are currently cut from each other.
    pub fn partitioned(&self, x: SiteId, y: SiteId, now: Time) -> bool {
        x != y && self.plan.partitions.iter().any(|p| p.severs(x, y, now))
    }

    /// `true` when `node` is down at `now`.
    pub fn down(&self, node: NodeId, now: Time) -> bool {
        self.plan
            .crashes
            .iter()
            .any(|c| c.node == node && now >= c.at && c.restart_at.is_none_or(|r| now < r))
    }

    /// Sample the link-layer treatment of one message on `(from, to)`.
    pub fn decide(&mut self, from: NodeId, to: NodeId) -> LinkDecision {
        let lf = *self.plan.links.get(&(from, to)).unwrap_or(&self.plan.default_link);
        if lf.drop > 0.0 && self.rng.random_bool(lf.drop) {
            self.stats.dropped += 1;
            return LinkDecision { primary: None, duplicate: None };
        }
        fn sample_delay(rng: &mut SmallRng, stats: &mut FaultStats, bounds: (Time, Time)) -> Time {
            if bounds.1 == 0 {
                return 0;
            }
            let d = rng.random_range(bounds.0..=bounds.1);
            if d > 0 {
                stats.delayed += 1;
            }
            d
        }
        let primary = Some(sample_delay(&mut self.rng, &mut self.stats, lf.extra_delay));
        let duplicate = if lf.duplicate > 0.0 && self.rng.random_bool(lf.duplicate) {
            self.stats.duplicated += 1;
            Some(sample_delay(&mut self.rng, &mut self.stats, lf.extra_delay))
        } else {
            None
        };
        LinkDecision { primary, duplicate }
    }

    /// The earliest unprocessed restart due at or before `horizon`
    /// (`None` horizon = any remaining restart). Returns the crash index.
    pub fn due_restart(&self, horizon: Option<Time>) -> Option<(usize, NodeId, Time)> {
        self.plan
            .crashes
            .iter()
            .enumerate()
            .filter(|&(i, c)| !self.restarted[i] && c.restart_at.is_some())
            .map(|(i, c)| (i, c.node, c.restart_at.expect("filtered")))
            .filter(|&(_, _, r)| horizon.is_none_or(|h| r <= h))
            .min_by_key(|&(i, _, r)| (r, i))
    }

    /// Mark crash `ix` restarted.
    pub fn mark_restarted(&mut self, ix: usize) {
        self.restarted[ix] = true;
        self.stats.restarts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let plan = FaultPlan::new(7)
            .drop_rate(0.5)
            .duplicate_rate(0.25)
            .jitter(1, 9)
            .partition(SiteId(0), SiteId(1), 10, 20)
            .crash(NodeId(2), 5, Some(15))
            .link(NodeId(0), NodeId(1), LinkFaults { drop: 1.0, ..LinkFaults::default() });
        assert_eq!(plan.link_faults(NodeId(0), NodeId(1)).drop, 1.0);
        assert_eq!(plan.link_faults(NodeId(1), NodeId(0)).drop, 0.5);
        assert_eq!(plan.partitions().len(), 1);
        assert_eq!(plan.crashes().len(), 1);
        assert!(!plan.is_benign());
        assert!(FaultPlan::new(3).is_benign());
    }

    #[test]
    fn partition_severs_symmetrically_and_heals() {
        let p = Partition { a: SiteId(0), b: SiteId(1), from: 10, until: 20 };
        assert!(p.severs(SiteId(0), SiteId(1), 10));
        assert!(p.severs(SiteId(1), SiteId(0), 19));
        assert!(!p.severs(SiteId(0), SiteId(1), 9));
        assert!(!p.severs(SiteId(0), SiteId(1), 20), "healed");
        assert!(!p.severs(SiteId(0), SiteId(2), 15), "unrelated site");
    }

    #[test]
    fn crash_window_downtime() {
        let fs = FaultState::new(FaultPlan::new(0).crash(NodeId(1), 10, Some(20)));
        assert!(!fs.down(NodeId(1), 9));
        assert!(fs.down(NodeId(1), 10));
        assert!(fs.down(NodeId(1), 19));
        assert!(!fs.down(NodeId(1), 20));
        assert!(!fs.down(NodeId(0), 15));
        let forever = FaultState::new(FaultPlan::new(0).crash(NodeId(1), 10, None));
        assert!(forever.down(NodeId(1), u64::MAX));
    }

    #[test]
    fn certain_drop_and_certain_duplicate() {
        let mut fs = FaultState::new(FaultPlan::new(1).drop_rate(1.0));
        let d = fs.decide(NodeId(0), NodeId(1));
        assert!(d.primary.is_none() && d.duplicate.is_none());
        assert_eq!(fs.stats.dropped, 1);

        let mut fs = FaultState::new(FaultPlan::new(1).duplicate_rate(1.0));
        let d = fs.decide(NodeId(0), NodeId(1));
        assert!(d.primary.is_some() && d.duplicate.is_some());
        assert_eq!(fs.stats.duplicated, 1);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed| {
            let mut fs = FaultState::new(FaultPlan::new(seed).drop_rate(0.3).duplicate_rate(0.3));
            (0..64)
                .map(|_| {
                    let d = fs.decide(NodeId(0), NodeId(1));
                    (d.primary.is_some(), d.duplicate.is_some())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn due_restart_orders_by_time() {
        let mut fs = FaultState::new(
            FaultPlan::new(0).crash(NodeId(0), 5, Some(50)).crash(NodeId(1), 5, Some(30)).crash(
                NodeId(2),
                5,
                None,
            ),
        );
        let (ix, node, at) = fs.due_restart(None).unwrap();
        assert_eq!((node, at), (NodeId(1), 30));
        assert!(fs.due_restart(Some(10)).is_none());
        fs.mark_restarted(ix);
        let (_, node, at) = fs.due_restart(None).unwrap();
        assert_eq!((node, at), (NodeId(0), 50));
        assert_eq!(fs.stats.restarts, 1);
    }
}
