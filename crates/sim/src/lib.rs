//! A deterministic discrete-event distributed-system simulator.
//!
//! This crate is the execution substrate substituting for the paper's
//! distributed actor prototype (see DESIGN.md §5, "Substitutions"): it
//! provides sites, nodes, latency models, per-link FIFO or reordering
//! delivery, a virtual clock, and traffic statistics — everything the
//! event-centric scheduler of the `dist` crate needs to run *distributed*
//! executions reproducibly on one machine.

#![warn(missing_docs)]

mod faults;
mod net;
mod parallel;
mod stats;
mod threaded;

pub use faults::{Crash, FaultPlan, FaultStats, LinkFaults, Partition};
pub use net::{
    Ctx, LatencyModel, Network, NodeId, Process, RunOutcome, SimConfig, SiteId, Termination, Time,
};
pub use parallel::{run_sharded, ParallelConfig, ParallelStats, ShardedRun, WorkerLoad};
pub use stats::NetStats;
pub use threaded::run_threaded;
