//! A deterministic discrete-event message-passing network.
//!
//! This is the execution substrate standing in for the paper's distributed
//! actor prototype [15]: nodes (actors/agents) are placed on sites, and
//! messages between them experience configurable latencies — small within
//! a site, larger and jittered across sites. Delivery is driven by a
//! single virtual-time event queue with deterministic tie-breaking, so
//! every run is exactly reproducible from its seed while still exhibiting
//! genuine asynchrony (messages reorder across links).

use crate::stats::NetStats;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Address of a node (an actor or task agent) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A physical site; message latency depends on whether the endpoints
/// share a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// Virtual time, in abstract ticks.
pub type Time = u64;

/// How message latencies are sampled.
#[derive(Debug, Clone, Copy)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(Time),
    /// Uniform in `[min, max]` regardless of placement.
    Uniform {
        /// Minimum latency.
        min: Time,
        /// Maximum latency (inclusive).
        max: Time,
    },
    /// Intra-site messages take `local`; inter-site messages are uniform
    /// in `[remote_min, remote_max]` — the model used by the scalability
    /// experiments.
    PerHop {
        /// Latency within a site.
        local: Time,
        /// Minimum cross-site latency.
        remote_min: Time,
        /// Maximum cross-site latency (inclusive).
        remote_max: Time,
    },
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::PerHop { local: 1, remote_min: 10, remote_max: 20 }
    }
}

/// Network configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed; two runs with equal seeds and inputs are identical.
    pub seed: u64,
    /// Latency sampling model.
    pub latency: LatencyModel,
    /// When `true`, messages on the same (src, dst) link never overtake
    /// each other (per-link FIFO), as most transports guarantee.
    pub fifo_links: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig { seed: 0xC0FFEE, latency: LatencyModel::default(), fifo_links: true }
    }
}

/// Context handed to a process while it handles a message: lets it send
/// messages and read the clock.
pub struct Ctx<'a, M> {
    /// The node currently executing.
    pub self_id: NodeId,
    now: Time,
    delivery_seq: u64,
    outbox: &'a mut Vec<(NodeId, M, Time)>,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Global delivery sequence number of the message being handled —
    /// a total order consistent with virtual time, used to timestamp
    /// event occurrences unambiguously.
    pub fn delivery_seq(&self) -> u64 {
        self.delivery_seq
    }

    /// Send `msg` to `to` (delivery latency is sampled by the network).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg, 0));
    }

    /// Send `msg` to `to` after an extra delay on top of the sampled
    /// network latency — used for timers and agent think time.
    pub fn send_after(&mut self, to: NodeId, msg: M, extra_delay: Time) {
        self.outbox.push((to, msg, extra_delay));
    }

    /// Construct a context manually — for test harnesses and exhaustive
    /// interleaving exploration that drive [`Process`] nodes without a
    /// [`Network`].
    pub fn manual(
        self_id: NodeId,
        now: Time,
        delivery_seq: u64,
        outbox: &mut Vec<(NodeId, M, Time)>,
    ) -> Ctx<'_, M> {
        Ctx { self_id, now, delivery_seq, outbox }
    }

    /// Construct a context for the threaded executor, where virtual time
    /// is the global delivery counter.
    pub(crate) fn for_threaded(
        self_id: NodeId,
        seq: u64,
        outbox: &mut Vec<(NodeId, M, Time)>,
    ) -> Ctx<'_, M> {
        Ctx { self_id, now: seq, delivery_seq: seq, outbox }
    }
}

/// A message-driven process living on a node.
pub trait Process<M> {
    /// Handle one delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);
}

#[derive(Debug)]
struct InFlight<M> {
    at: Time,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
}

// Order by (at, seq) — seq breaks ties deterministically.
impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulated network: owns the nodes, the event queue and the clock.
pub struct Network<M, P: Process<M>> {
    nodes: Vec<P>,
    sites: Vec<SiteId>,
    queue: BinaryHeap<Reverse<InFlight<M>>>,
    time: Time,
    seq: u64,
    rng: SmallRng,
    config: SimConfig,
    link_clock: HashMap<(NodeId, NodeId), Time>,
    stats: NetStats,
}

impl<M, P: Process<M>> Network<M, P> {
    /// Build a network from `(site, process)` pairs; node ids are assigned
    /// in order.
    pub fn new(config: SimConfig, nodes: impl IntoIterator<Item = (SiteId, P)>) -> Network<M, P> {
        let (sites, nodes): (Vec<SiteId>, Vec<P>) = nodes.into_iter().unzip();
        Network {
            nodes,
            sites,
            queue: BinaryHeap::new(),
            time: 0,
            seq: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            link_clock: HashMap::new(),
            stats: NetStats::default(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The site of `node`.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.sites[node.0 as usize]
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Immutable access to a node's process (for post-run inspection).
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node's process.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.0 as usize]
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn sample_latency(&mut self, from: NodeId, to: NodeId) -> Time {
        let lat = match self.config.latency {
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform { min, max } => self.rng.random_range(min..=max),
            LatencyModel::PerHop { local, remote_min, remote_max } => {
                if self.site_of(from) == self.site_of(to) {
                    local
                } else {
                    self.rng.random_range(remote_min..=remote_max)
                }
            }
        };
        lat.max(1)
    }

    /// Inject a message from the outside world (e.g. a task agent's user
    /// request), delivered after sampled latency.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.enqueue(from, to, msg, 0);
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, msg: M, extra: Time) {
        let latency = self.sample_latency(from, to) + extra;
        let mut at = self.time + latency;
        if self.config.fifo_links {
            let clock = self.link_clock.entry((from, to)).or_insert(0);
            at = at.max(*clock + 1);
            *clock = at;
        }
        let remote = self.site_of(from) != self.site_of(to);
        self.stats.record_send(remote, latency);
        self.seq += 1;
        self.queue.push(Reverse(InFlight { at, seq: self.seq, from, to, msg }));
    }

    /// Deliver the next message, if any. Returns `false` when quiescent.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(m)) = self.queue.pop() else {
            return false;
        };
        self.time = self.time.max(m.at);
        let to_site = self.site_of(m.to).0;
        self.stats.record_delivery(to_site);
        let mut outbox: Vec<(NodeId, M, Time)> = Vec::new();
        {
            let node = &mut self.nodes[m.to.0 as usize];
            let mut ctx = Ctx {
                self_id: m.to,
                now: self.time,
                delivery_seq: self.stats.delivered_total,
                outbox: &mut outbox,
            };
            node.on_message(&mut ctx, m.from, m.msg);
        }
        for (to, msg, extra) in outbox {
            self.enqueue(m.to, to, msg, extra);
        }
        true
    }

    /// Run until no messages remain or `max_steps` deliveries happened.
    /// Returns the number of deliveries performed.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0;
        while steps < max_steps && self.step() {
            steps += 1;
        }
        steps
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Consume the network, returning its nodes for post-run inspection.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every `u64` message back, decremented, until zero.
    struct Countdown {
        received: Vec<(Time, u64)>,
    }

    impl Process<u64> for Countdown {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.received.push((ctx.now(), msg));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn two_nodes(config: SimConfig) -> Network<u64, Countdown> {
        Network::new(
            config,
            [
                (SiteId(0), Countdown { received: vec![] }),
                (SiteId(1), Countdown { received: vec![] }),
            ],
        )
    }

    #[test]
    fn ping_pong_terminates_and_counts() {
        let mut net = two_nodes(SimConfig::default());
        net.inject(NodeId(0), NodeId(1), 5);
        let steps = net.run_to_quiescence(1_000);
        assert_eq!(steps, 6); // 5,4,3,2,1,0
        assert_eq!(net.stats().sent_total, 6);
        assert_eq!(net.stats().delivered_total, 6);
        assert_eq!(net.node(NodeId(1)).received.len(), 3);
        assert_eq!(net.node(NodeId(0)).received.len(), 3);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut net = two_nodes(SimConfig {
                seed,
                latency: LatencyModel::Uniform { min: 1, max: 50 },
                fifo_links: false,
            });
            net.inject(NodeId(0), NodeId(1), 8);
            net.run_to_quiescence(1_000);
            (net.now(), net.node(NodeId(1)).received.clone())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds give different timings");
    }

    #[test]
    fn time_is_monotone_and_advances() {
        let mut net = two_nodes(SimConfig::default());
        net.inject(NodeId(0), NodeId(1), 3);
        let mut last = 0;
        while net.step() {
            assert!(net.now() >= last);
            last = net.now();
        }
        assert!(last > 0);
    }

    /// Records deliveries without replying.
    struct Sink {
        received: Vec<(Time, u64)>,
    }

    impl Process<u64> for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
            self.received.push((ctx.now(), msg));
        }
    }

    fn two_sinks(config: SimConfig) -> Network<u64, Sink> {
        Network::new(
            config,
            [(SiteId(0), Sink { received: vec![] }), (SiteId(1), Sink { received: vec![] })],
        )
    }

    #[test]
    fn fifo_links_preserve_order() {
        let mut net = two_sinks(SimConfig {
            seed: 7,
            latency: LatencyModel::Uniform { min: 1, max: 100 },
            fifo_links: true,
        });
        // All messages flow node0 → node1 on one link: with FIFO on, they
        // must arrive in injection order despite jittered latencies.
        for i in 0..20u64 {
            net.inject(NodeId(0), NodeId(1), 100 + i);
        }
        net.run_to_quiescence(10_000);
        let seen: Vec<u64> = net.node(NodeId(1)).received.iter().map(|&(_, m)| m).collect();
        assert_eq!(seen, (100..120).collect::<Vec<_>>());
    }

    #[test]
    fn non_fifo_links_can_reorder() {
        // With wide jitter and FIFO off, some pair must reorder.
        let mut net = two_sinks(SimConfig {
            seed: 1,
            latency: LatencyModel::Uniform { min: 1, max: 1000 },
            fifo_links: false,
        });
        for i in 0..50u64 {
            net.inject(NodeId(0), NodeId(1), 100 + i);
        }
        net.run_to_quiescence(10_000);
        let seen: Vec<u64> = net.node(NodeId(1)).received.iter().map(|&(_, m)| m).collect();
        let sorted = {
            let mut s = seen.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(seen, sorted, "expected at least one reordering");
    }

    #[test]
    fn per_hop_latency_distinguishes_sites() {
        let config = SimConfig {
            seed: 3,
            latency: LatencyModel::PerHop { local: 1, remote_min: 50, remote_max: 60 },
            fifo_links: false,
        };
        let mut net = Network::new(
            config,
            [
                (SiteId(0), Countdown { received: vec![] }),
                (SiteId(0), Countdown { received: vec![] }),
                (SiteId(1), Countdown { received: vec![] }),
            ],
        );
        net.inject(NodeId(0), NodeId(1), 0); // local
        net.inject(NodeId(0), NodeId(2), 0); // remote
        net.run_to_quiescence(10);
        let local_t = net.node(NodeId(1)).received[0].0;
        let remote_t = net.node(NodeId(2)).received[0].0;
        assert!(local_t <= 2, "local {local_t}");
        assert!(remote_t >= 50, "remote {remote_t}");
        assert_eq!(net.stats().sent_remote, 1);
        assert_eq!(net.stats().sent_total, 2);
    }

    #[test]
    fn quiescence_on_empty_queue() {
        let mut net = two_nodes(SimConfig::default());
        assert_eq!(net.run_to_quiescence(10), 0);
        assert!(!net.step());
        assert_eq!(net.in_flight(), 0);
    }
}
