//! A deterministic discrete-event message-passing network.
//!
//! This is the execution substrate standing in for the paper's distributed
//! actor prototype [15]: nodes (actors/agents) are placed on sites, and
//! messages between them experience configurable latencies — small within
//! a site, larger and jittered across sites. Delivery is driven by a
//! single virtual-time event queue with deterministic tie-breaking, so
//! every run is exactly reproducible from its seed while still exhibiting
//! genuine asynchrony (messages reorder across links).

use crate::faults::{FaultPlan, FaultState, FaultStats, LinkDecision};
use crate::stats::NetStats;
use obs::{Obs, SpanId, SpanKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Address of a node (an actor or task agent) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// A physical site; message latency depends on whether the endpoints
/// share a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// Virtual time, in abstract ticks.
pub type Time = u64;

/// How message latencies are sampled.
#[derive(Debug, Clone, Copy)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(Time),
    /// Uniform in `[min, max]` regardless of placement.
    Uniform {
        /// Minimum latency.
        min: Time,
        /// Maximum latency (inclusive).
        max: Time,
    },
    /// Intra-site messages take `local`; inter-site messages are uniform
    /// in `[remote_min, remote_max]` — the model used by the scalability
    /// experiments.
    PerHop {
        /// Latency within a site.
        local: Time,
        /// Minimum cross-site latency.
        remote_min: Time,
        /// Maximum cross-site latency (inclusive).
        remote_max: Time,
    },
}

impl Default for LatencyModel {
    fn default() -> LatencyModel {
        LatencyModel::PerHop { local: 1, remote_min: 10, remote_max: 20 }
    }
}

/// Network configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// RNG seed; two runs with equal seeds and inputs are identical.
    pub seed: u64,
    /// Latency sampling model.
    pub latency: LatencyModel,
    /// When `true`, messages on the same (src, dst) link never overtake
    /// each other (per-link FIFO), as most transports guarantee.
    pub fifo_links: bool,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig { seed: 0xC0FFEE, latency: LatencyModel::default(), fifo_links: true }
    }
}

/// Context handed to a process while it handles a message: lets it send
/// messages and read the clock.
pub struct Ctx<'a, M> {
    /// The node currently executing.
    pub self_id: NodeId,
    now: Time,
    delivery_seq: u64,
    outbox: &'a mut Vec<(NodeId, M, Time)>,
}

impl<M> Ctx<'_, M> {
    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Global delivery sequence number of the message being handled —
    /// a total order consistent with virtual time, used to timestamp
    /// event occurrences unambiguously.
    pub fn delivery_seq(&self) -> u64 {
        self.delivery_seq
    }

    /// Send `msg` to `to` (delivery latency is sampled by the network).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg, 0));
    }

    /// Send `msg` to `to` after an extra delay on top of the sampled
    /// network latency — used for timers and agent think time.
    pub fn send_after(&mut self, to: NodeId, msg: M, extra_delay: Time) {
        self.outbox.push((to, msg, extra_delay));
    }

    /// Construct a context manually — for test harnesses and exhaustive
    /// interleaving exploration that drive [`Process`] nodes without a
    /// [`Network`].
    pub fn manual(
        self_id: NodeId,
        now: Time,
        delivery_seq: u64,
        outbox: &mut Vec<(NodeId, M, Time)>,
    ) -> Ctx<'_, M> {
        Ctx { self_id, now, delivery_seq, outbox }
    }

    /// Construct a context for the threaded executor, where virtual time
    /// is the global delivery counter.
    pub(crate) fn for_threaded(
        self_id: NodeId,
        seq: u64,
        outbox: &mut Vec<(NodeId, M, Time)>,
    ) -> Ctx<'_, M> {
        Ctx { self_id, now: seq, delivery_seq: seq, outbox }
    }
}

/// A message-driven process living on a node.
pub trait Process<M> {
    /// Handle one delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// Called when the node comes back from a crash (see
    /// [`FaultPlan::crash`]): volatile state is presumed lost, and the
    /// process should rebuild itself from durable storage and re-kick any
    /// in-flight work. The default is a no-op, which models a stateless
    /// node.
    fn on_restart(&mut self, _ctx: &mut Ctx<'_, M>) {}
}

#[derive(Debug)]
struct InFlight<M> {
    at: Time,
    seq: u64,
    from: NodeId,
    to: NodeId,
    msg: M,
    /// The `MsgSend` span of this message, when recording: the delivery
    /// record is parented under it, giving the happens-before DAG its
    /// cross-node edges.
    span: Option<SpanId>,
}

// Order by (at, seq) — seq breaks ties deterministically.
impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// How a [`Network::run_to_quiescence`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// No messages (or pending restarts) remained: the run converged.
    Quiescent,
    /// The step budget ran out with work still in flight — the run may or
    /// may not have converged, and downstream state is suspect.
    BudgetExhausted,
}

/// Result of [`Network::run_to_quiescence`]: how many deliveries happened
/// and whether the run actually converged or merely ran out of budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Deliveries (plus restarts) performed.
    pub steps: u64,
    /// Why the loop stopped.
    pub termination: Termination,
}

impl RunOutcome {
    /// `true` when the run converged rather than exhausting its budget.
    pub fn is_quiescent(&self) -> bool {
        self.termination == Termination::Quiescent
    }
}

/// The simulated network: owns the nodes, the event queue and the clock.
pub struct Network<M, P: Process<M>> {
    nodes: Vec<P>,
    sites: Vec<SiteId>,
    queue: BinaryHeap<Reverse<InFlight<M>>>,
    time: Time,
    seq: u64,
    rng: SmallRng,
    config: SimConfig,
    link_clock: HashMap<(NodeId, NodeId), Time>,
    stats: NetStats,
    faults: Option<FaultState>,
    obs: Obs,
    label_fn: Option<fn(&M) -> &'static str>,
}

impl<M: Clone, P: Process<M>> Network<M, P> {
    /// Build a network from `(site, process)` pairs; node ids are assigned
    /// in order.
    pub fn new(config: SimConfig, nodes: impl IntoIterator<Item = (SiteId, P)>) -> Network<M, P> {
        let (sites, nodes): (Vec<SiteId>, Vec<P>) = nodes.into_iter().unzip();
        Network {
            nodes,
            sites,
            queue: BinaryHeap::new(),
            time: 0,
            seq: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            link_clock: HashMap::new(),
            stats: NetStats::default(),
            faults: None,
            obs: Obs::off(),
            label_fn: None,
        }
    }

    /// Attach a flight recorder. Every send, delivery, fault injection and
    /// restart is recorded from here on; `label` renders a message to a
    /// short discriminant for the `MsgSend`/`MsgDeliver` spans. The
    /// recorder's cursor is set to the delivery span while a handler runs,
    /// so process-level records are parented under the delivery that
    /// caused them.
    pub fn set_recorder(&mut self, obs: Obs, label: fn(&M) -> &'static str) {
        self.obs = obs;
        self.label_fn = Some(label);
    }

    /// The attached recorder handle (disabled by default).
    pub fn recorder(&self) -> &Obs {
        &self.obs
    }

    fn msg_label(&self, msg: &M) -> std::borrow::Cow<'static, str> {
        std::borrow::Cow::Borrowed(self.label_fn.map_or("msg", |f| f(msg)))
    }

    /// Install a fault plan; decisions are driven by the plan's own seed,
    /// so the latency stream is unaffected by whether faults are on.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    /// Counters of what the fault layer did so far, if a plan is
    /// installed.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.faults.as_ref().map(|fs| &fs.stats)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The site of `node`.
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.sites[node.0 as usize]
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Immutable access to a node's process (for post-run inspection).
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a node's process.
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.0 as usize]
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn sample_latency(&mut self, from: NodeId, to: NodeId) -> Time {
        let lat = match self.config.latency {
            LatencyModel::Fixed(t) => t,
            LatencyModel::Uniform { min, max } => self.rng.random_range(min..=max),
            LatencyModel::PerHop { local, remote_min, remote_max } => {
                if self.site_of(from) == self.site_of(to) {
                    local
                } else {
                    self.rng.random_range(remote_min..=remote_max)
                }
            }
        };
        lat.max(1)
    }

    /// Inject a message from the outside world (e.g. a task agent's user
    /// request), delivered after sampled latency. Injected messages model
    /// the workload arriving, so the link-fault layer leaves them alone.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: M) {
        self.enqueue(from, to, msg, 0, true);
    }

    /// Inject a message with an extra delay on top of sampled latency:
    /// workload think-time arriving from the outside world. Fault-exempt
    /// like [`Network::inject`] (with `extra == 0` it is identical).
    pub fn inject_after(&mut self, from: NodeId, to: NodeId, msg: M, extra: Time) {
        self.enqueue(from, to, msg, extra, true);
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, msg: M, extra: Time, exempt: bool) {
        // Self-sends are node-local timers, not network traffic: exempt
        // from link faults and partitions (a crashed node still loses
        // them, because delivery-time crash checks apply to everything).
        let bypass = exempt || from == to;
        let now = self.time;
        let (sf, st) = (self.site_of(from), self.site_of(to));
        let decision = match self.faults.as_mut() {
            Some(fs) if !bypass => {
                if fs.partitioned(sf, st, now) {
                    fs.stats.partition_dropped += 1;
                    if self.obs.enabled() {
                        let kind = SpanKind::PartitionDrop { from: from.0, to: to.0 };
                        self.obs.rec(now, from.0, sf.0, kind);
                    }
                    return;
                }
                fs.decide(from, to)
            }
            _ => LinkDecision { primary: Some(0), duplicate: None },
        };
        if self.obs.enabled() && !bypass && self.faults.is_some() {
            match decision.primary {
                None => {
                    let kind = SpanKind::FaultDrop { from: from.0, to: to.0 };
                    self.obs.rec(now, from.0, sf.0, kind);
                }
                Some(delay) if delay > 0 => {
                    let kind = SpanKind::FaultDelay { from: from.0, to: to.0, by: delay };
                    self.obs.rec(now, from.0, sf.0, kind);
                }
                Some(_) => {}
            }
            if decision.duplicate.is_some() {
                let kind = SpanKind::FaultDuplicate { from: from.0, to: to.0 };
                self.obs.rec(now, from.0, sf.0, kind);
            }
        }
        let Some(primary_delay) = decision.primary else {
            return;
        };
        self.schedule(from, to, msg.clone(), extra, primary_delay);
        if let Some(dup_delay) = decision.duplicate {
            self.schedule(from, to, msg, extra, dup_delay);
        }
    }

    fn schedule(&mut self, from: NodeId, to: NodeId, msg: M, extra: Time, fault_delay: Time) {
        let latency = self.sample_latency(from, to) + extra;
        let mut at = self.time + latency + fault_delay;
        // A fault-delayed copy is held "in the network" and released
        // late: it bypasses the FIFO clamp, which is exactly what makes
        // nonzero jitter produce reordering on FIFO links.
        if self.config.fifo_links && fault_delay == 0 {
            let clock = self.link_clock.entry((from, to)).or_insert(0);
            at = at.max(*clock + 1);
            *clock = at;
        }
        let remote = self.site_of(from) != self.site_of(to);
        self.stats.record_send(remote, latency);
        self.seq += 1;
        let span = if self.obs.enabled() {
            let kind = SpanKind::MsgSend { from: from.0, to: to.0, label: self.msg_label(&msg) };
            self.obs.rec(self.time, from.0, self.site_of(from).0, kind)
        } else {
            None
        };
        self.queue.push(Reverse(InFlight { at, seq: self.seq, from, to, msg, span }));
    }

    /// Deliver the next message, if any. Returns `false` when quiescent.
    /// Crash–restart windows from the fault plan are honoured here:
    /// messages due while their destination is down are dropped, and a
    /// pending restart fires (invoking [`Process::on_restart`]) before
    /// any delivery scheduled after it.
    pub fn step(&mut self) -> bool {
        loop {
            let horizon = self.queue.peek().map(|Reverse(m)| m.at);
            let due = self.faults.as_ref().and_then(|fs| fs.due_restart(horizon));
            if let Some((ix, node, at)) = due {
                self.perform_restart(ix, node, at);
                return true;
            }
            let Some(Reverse(m)) = self.queue.pop() else {
                return false;
            };
            self.time = self.time.max(m.at);
            let to_site = self.site_of(m.to).0;
            if let Some(fs) = &mut self.faults {
                if fs.down(m.to, self.time) {
                    fs.stats.crash_dropped += 1;
                    if self.obs.enabled() {
                        let kind = SpanKind::CrashDrop { node: m.to.0 };
                        self.obs.rec_under(m.span, self.time, m.to.0, to_site, kind);
                    }
                    continue;
                }
            }
            self.stats.record_delivery(to_site);
            let recording = self.obs.enabled();
            // Everything one delivery emits — the MsgDeliver span, the
            // handler's spans, the outbox's MsgSend spans — is buffered
            // in a per-round segment and flushed once at the end of the
            // round. Span ids, parents and order are identical to
            // unbatched emission; only the lock/fan-out cadence changes.
            self.obs.begin_round();
            if recording {
                let kind = SpanKind::MsgDeliver {
                    from: m.from.0,
                    to: m.to.0,
                    label: self.msg_label(&m.msg),
                };
                let span = self.obs.rec_under(m.span, self.time, m.to.0, to_site, kind);
                self.obs.set_cursor(span);
            }
            let mut outbox: Vec<(NodeId, M, Time)> = Vec::new();
            {
                let node = &mut self.nodes[m.to.0 as usize];
                let mut ctx = Ctx {
                    self_id: m.to,
                    now: self.time,
                    delivery_seq: self.stats.delivered_total,
                    outbox: &mut outbox,
                };
                node.on_message(&mut ctx, m.from, m.msg);
            }
            for (to, msg, extra) in outbox {
                self.enqueue(m.to, to, msg, extra, false);
            }
            if recording {
                self.obs.set_cursor(None);
            }
            self.obs.end_round();
            return true;
        }
    }

    fn perform_restart(&mut self, ix: usize, node: NodeId, at: Time) {
        self.time = self.time.max(at);
        if let Some(fs) = &mut self.faults {
            fs.mark_restarted(ix);
        }
        let recording = self.obs.enabled();
        // Restart rounds batch like delivery rounds: one flush per
        // Restart span plus everything the rebuild emits.
        self.obs.begin_round();
        if recording {
            let kind = SpanKind::Restart { node: node.0 };
            let span = self.obs.rec_under(None, self.time, node.0, self.site_of(node).0, kind);
            self.obs.set_cursor(span);
        }
        let mut outbox: Vec<(NodeId, M, Time)> = Vec::new();
        {
            let n = &mut self.nodes[node.0 as usize];
            let mut ctx = Ctx {
                self_id: node,
                now: self.time,
                delivery_seq: self.stats.delivered_total,
                outbox: &mut outbox,
            };
            n.on_restart(&mut ctx);
        }
        for (to, msg, extra) in outbox {
            self.enqueue(node, to, msg, extra, false);
        }
        if recording {
            self.obs.set_cursor(None);
        }
        self.obs.end_round();
    }

    /// Run until no work remains or `max_steps` deliveries happened.
    /// The returned [`RunOutcome`] says which: a budget-exhausted run is
    /// *not* evidence of convergence, and callers must check.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> RunOutcome {
        let mut steps = 0;
        while steps < max_steps {
            if !self.step() {
                return RunOutcome { steps, termination: Termination::Quiescent };
            }
            steps += 1;
        }
        let termination =
            if self.idle() { Termination::Quiescent } else { Termination::BudgetExhausted };
        RunOutcome { steps, termination }
    }

    /// `true` when nothing remains to do: no queued messages and no
    /// pending restarts. This is the convergence test
    /// [`Network::run_to_quiescence`] applies when its budget runs out;
    /// external steppers (the multi-tenant multiplexer) use it to report
    /// termination with exactly the same honesty.
    pub fn idle(&self) -> bool {
        self.queue.is_empty()
            && self.faults.as_ref().is_none_or(|fs| fs.due_restart(None).is_none())
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Consume the network, returning its nodes for post-run inspection.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every `u64` message back, decremented, until zero.
    struct Countdown {
        received: Vec<(Time, u64)>,
    }

    impl Process<u64> for Countdown {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.received.push((ctx.now(), msg));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn two_nodes(config: SimConfig) -> Network<u64, Countdown> {
        Network::new(
            config,
            [
                (SiteId(0), Countdown { received: vec![] }),
                (SiteId(1), Countdown { received: vec![] }),
            ],
        )
    }

    #[test]
    fn ping_pong_terminates_and_counts() {
        let mut net = two_nodes(SimConfig::default());
        net.inject(NodeId(0), NodeId(1), 5);
        let out = net.run_to_quiescence(1_000);
        assert_eq!(out.steps, 6); // 5,4,3,2,1,0
        assert!(out.is_quiescent());
        assert_eq!(net.stats().sent_total, 6);
        assert_eq!(net.stats().delivered_total, 6);
        assert_eq!(net.node(NodeId(1)).received.len(), 3);
        assert_eq!(net.node(NodeId(0)).received.len(), 3);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut net = two_nodes(SimConfig {
                seed,
                latency: LatencyModel::Uniform { min: 1, max: 50 },
                fifo_links: false,
            });
            net.inject(NodeId(0), NodeId(1), 8);
            net.run_to_quiescence(1_000);
            (net.now(), net.node(NodeId(1)).received.clone())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds give different timings");
    }

    #[test]
    fn time_is_monotone_and_advances() {
        let mut net = two_nodes(SimConfig::default());
        net.inject(NodeId(0), NodeId(1), 3);
        let mut last = 0;
        while net.step() {
            assert!(net.now() >= last);
            last = net.now();
        }
        assert!(last > 0);
    }

    /// Records deliveries without replying.
    struct Sink {
        received: Vec<(Time, u64)>,
    }

    impl Process<u64> for Sink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
            self.received.push((ctx.now(), msg));
        }
    }

    fn two_sinks(config: SimConfig) -> Network<u64, Sink> {
        Network::new(
            config,
            [(SiteId(0), Sink { received: vec![] }), (SiteId(1), Sink { received: vec![] })],
        )
    }

    #[test]
    fn fifo_links_preserve_order() {
        let mut net = two_sinks(SimConfig {
            seed: 7,
            latency: LatencyModel::Uniform { min: 1, max: 100 },
            fifo_links: true,
        });
        // All messages flow node0 → node1 on one link: with FIFO on, they
        // must arrive in injection order despite jittered latencies.
        for i in 0..20u64 {
            net.inject(NodeId(0), NodeId(1), 100 + i);
        }
        net.run_to_quiescence(10_000);
        let seen: Vec<u64> = net.node(NodeId(1)).received.iter().map(|&(_, m)| m).collect();
        assert_eq!(seen, (100..120).collect::<Vec<_>>());
    }

    #[test]
    fn non_fifo_links_can_reorder() {
        // With wide jitter and FIFO off, some pair must reorder.
        let mut net = two_sinks(SimConfig {
            seed: 1,
            latency: LatencyModel::Uniform { min: 1, max: 1000 },
            fifo_links: false,
        });
        for i in 0..50u64 {
            net.inject(NodeId(0), NodeId(1), 100 + i);
        }
        net.run_to_quiescence(10_000);
        let seen: Vec<u64> = net.node(NodeId(1)).received.iter().map(|&(_, m)| m).collect();
        let sorted = {
            let mut s = seen.clone();
            s.sort_unstable();
            s
        };
        assert_ne!(seen, sorted, "expected at least one reordering");
    }

    #[test]
    fn per_hop_latency_distinguishes_sites() {
        let config = SimConfig {
            seed: 3,
            latency: LatencyModel::PerHop { local: 1, remote_min: 50, remote_max: 60 },
            fifo_links: false,
        };
        let mut net = Network::new(
            config,
            [
                (SiteId(0), Countdown { received: vec![] }),
                (SiteId(0), Countdown { received: vec![] }),
                (SiteId(1), Countdown { received: vec![] }),
            ],
        );
        net.inject(NodeId(0), NodeId(1), 0); // local
        net.inject(NodeId(0), NodeId(2), 0); // remote
        net.run_to_quiescence(10);
        let local_t = net.node(NodeId(1)).received[0].0;
        let remote_t = net.node(NodeId(2)).received[0].0;
        assert!(local_t <= 2, "local {local_t}");
        assert!(remote_t >= 50, "remote {remote_t}");
        assert_eq!(net.stats().sent_remote, 1);
        assert_eq!(net.stats().sent_total, 2);
    }

    #[test]
    fn quiescence_on_empty_queue() {
        let mut net = two_nodes(SimConfig::default());
        let out = net.run_to_quiescence(10);
        assert_eq!(out, RunOutcome { steps: 0, termination: Termination::Quiescent });
        assert!(!net.step());
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let mut net = two_nodes(SimConfig::default());
        net.inject(NodeId(0), NodeId(1), 100);
        let out = net.run_to_quiescence(3);
        assert_eq!(out.steps, 3);
        assert_eq!(out.termination, Termination::BudgetExhausted);
        assert!(!out.is_quiescent());
        // Exactly exhausting the budget on the last delivery still counts
        // as quiescent: nothing is left in flight.
        let mut net = two_nodes(SimConfig::default());
        net.inject(NodeId(0), NodeId(1), 2);
        let out = net.run_to_quiescence(3);
        assert_eq!(out, RunOutcome { steps: 3, termination: Termination::Quiescent });
    }

    use crate::faults::FaultPlan;

    #[test]
    fn dropped_messages_never_arrive() {
        let mut net = two_sinks(SimConfig::default());
        net.set_faults(FaultPlan::new(9).drop_rate(1.0));
        for i in 0..10u64 {
            net.inject(NodeId(0), NodeId(1), i); // injection is exempt
        }
        net.run_to_quiescence(1_000);
        assert_eq!(net.node(NodeId(1)).received.len(), 10);

        // Node-to-node traffic is not exempt: replies all vanish.
        let mut net = two_nodes(SimConfig::default());
        net.set_faults(FaultPlan::new(9).drop_rate(1.0));
        net.inject(NodeId(0), NodeId(1), 5);
        let out = net.run_to_quiescence(1_000);
        assert_eq!(out.steps, 1, "only the injected message is delivered");
        assert_eq!(net.fault_stats().unwrap().dropped, 1);
    }

    /// On the first delivery, sends `count` messages to node 1.
    struct Burst {
        count: u64,
    }
    impl Process<u64> for Burst {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, _msg: u64) {
            for i in 0..self.count {
                ctx.send(NodeId(1), i);
            }
        }
    }

    #[test]
    fn duplicates_arrive_twice() {
        // Injection is exempt; the burst relay's sends are node-to-node
        // and each is duplicated with certainty.
        let mut net = Network::new(
            SimConfig::default(),
            [
                (SiteId(0), BurstOrSink::Burst(Burst { count: 5 })),
                (SiteId(1), BurstOrSink::Sink(Sink { received: vec![] })),
            ],
        );
        net.set_faults(FaultPlan::new(4).duplicate_rate(1.0));
        net.inject(NodeId(1), NodeId(0), 0);
        net.run_to_quiescence(1_000);
        assert_eq!(net.fault_stats().unwrap().duplicated, 5);
        let BurstOrSink::Sink(sink) = net.node(NodeId(1)) else {
            panic!("node 1 is the sink");
        };
        assert_eq!(sink.received.len(), 10, "each of 5 sends arrives twice");
    }

    /// Either role, so one network can mix processes.
    enum BurstOrSink {
        Burst(Burst),
        Sink(Sink),
    }
    impl Process<u64> for BurstOrSink {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            match self {
                BurstOrSink::Burst(b) => b.on_message(ctx, from, msg),
                BurstOrSink::Sink(s) => s.on_message(ctx, from, msg),
            }
        }
    }

    #[test]
    fn self_sends_bypass_link_faults() {
        /// Schedules itself a timer chain; link faults must not break it.
        struct Timer {
            fired: u32,
        }
        impl Process<u64> for Timer {
            fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
                self.fired += 1;
                if msg > 0 {
                    ctx.send_after(ctx.self_id, msg - 1, 5);
                }
            }
        }
        let mut net = Network::new(SimConfig::default(), [(SiteId(0), Timer { fired: 0 })]);
        net.set_faults(FaultPlan::new(2).drop_rate(1.0).duplicate_rate(1.0));
        net.inject(NodeId(0), NodeId(0), 4);
        net.run_to_quiescence(100);
        assert_eq!(net.node(NodeId(0)).fired, 5);
        assert_eq!(net.fault_stats().unwrap().dropped, 0);
    }

    #[test]
    fn partition_blocks_then_heals() {
        let mut net =
            two_nodes(SimConfig { seed: 5, latency: LatencyModel::Fixed(1), fifo_links: true });
        net.set_faults(FaultPlan::new(5).partition(SiteId(0), SiteId(1), 0, 50));
        net.inject(NodeId(0), NodeId(1), 3);
        net.run_to_quiescence(1_000);
        // The injected message arrives (exempt), but the reply at t≈2 is
        // cut by the partition.
        assert_eq!(net.node(NodeId(0)).received.len(), 0);
        assert_eq!(net.fault_stats().unwrap().partition_dropped, 1);

        // Same scenario after the heal time: full ping-pong completes.
        let mut net =
            two_nodes(SimConfig { seed: 5, latency: LatencyModel::Fixed(60), fifo_links: true });
        net.set_faults(FaultPlan::new(5).partition(SiteId(0), SiteId(1), 0, 50));
        net.inject(NodeId(0), NodeId(1), 3);
        let out = net.run_to_quiescence(1_000);
        assert_eq!(out.steps, 4);
        assert_eq!(net.fault_stats().unwrap().partition_dropped, 0);
    }

    #[test]
    fn crashed_node_loses_messages_and_restart_hook_runs() {
        /// Counts deliveries; on restart announces itself to node 0.
        struct Phoenix {
            received: Vec<u64>,
            restarts: u32,
        }
        impl Process<u64> for Phoenix {
            fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
                self.received.push(msg);
            }
            fn on_restart(&mut self, ctx: &mut Ctx<'_, u64>) {
                self.restarts += 1;
                ctx.send(NodeId(0), 999);
            }
        }
        let config = SimConfig { seed: 1, latency: LatencyModel::Fixed(1), fifo_links: true };
        let mut net = Network::new(
            config,
            [
                (SiteId(0), Phoenix { received: vec![], restarts: 0 }),
                (SiteId(1), Phoenix { received: vec![], restarts: 0 }),
            ],
        );
        net.set_faults(FaultPlan::new(0).crash(NodeId(1), 2, Some(100)));
        net.inject(NodeId(0), NodeId(1), 1); // arrives ~t=1, before crash
        net.inject(NodeId(0), NodeId(1), 2); // FIFO pushes to t=2: lost
        let out = net.run_to_quiescence(1_000);
        assert!(out.is_quiescent());
        assert_eq!(net.node(NodeId(1)).received, vec![1]);
        assert_eq!(net.node(NodeId(1)).restarts, 1);
        // The restart announcement reached node 0 after the restart time.
        assert_eq!(net.node(NodeId(0)).received, vec![999]);
        assert!(net.now() >= 100);
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.crash_dropped, 1);
        assert_eq!(stats.restarts, 1);
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let run = |fault_seed| {
            let mut net = two_nodes(SimConfig {
                seed: 42,
                latency: LatencyModel::Uniform { min: 1, max: 30 },
                fifo_links: false,
            });
            net.set_faults(
                FaultPlan::new(fault_seed).drop_rate(0.2).duplicate_rate(0.2).jitter(0, 9),
            );
            net.inject(NodeId(0), NodeId(1), 12);
            net.run_to_quiescence(10_000);
            let stats = *net.fault_stats().unwrap();
            (net.now(), stats, net.node(NodeId(1)).received.clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "fault seed changes the run");
    }

    #[test]
    fn jitter_reorders_even_on_fifo_links() {
        // A burst of 30 node-to-node messages on a FIFO link with fixed
        // base latency: without jitter they arrive in order, with jitter
        // the fault-delayed copies bypass the FIFO clamp and overtake.
        let mut net = Network::new(
            SimConfig { seed: 11, latency: LatencyModel::Fixed(2), fifo_links: true },
            [
                (SiteId(0), BurstOrSink::Burst(Burst { count: 30 })),
                (SiteId(1), BurstOrSink::Sink(Sink { received: vec![] })),
            ],
        );
        net.set_faults(FaultPlan::new(13).jitter(0, 40));
        net.inject(NodeId(1), NodeId(0), 0);
        net.run_to_quiescence(10_000);
        let BurstOrSink::Sink(sink) = net.node(NodeId(1)) else {
            panic!("node 1 is the sink");
        };
        let seen: Vec<u64> = sink.received.iter().map(|&(_, m)| m).collect();
        assert_eq!(seen.len(), 30, "nothing dropped, nothing duplicated");
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_ne!(seen, sorted, "expected at least one reordering");
        assert!(net.fault_stats().unwrap().delayed > 0);
    }
}
