//! A threaded executor for the same [`Process`] nodes as [`Network`]:
//! every node runs on its own OS thread with a channel inbox, so the
//! actor code is exercised under *real* concurrency and nondeterministic
//! interleavings (runs are checked for safety, not for bitwise equality
//! with the deterministic simulator).
//!
//! # Divergences from [`Network`]
//!
//! This executor has **no virtual clock**, and its statistics reflect
//! that honestly rather than pretending otherwise:
//!
//! - every send is recorded with the simulator's *minimum* latency of 1,
//!   regardless of the configured latency model — there is no model here
//!   at all, real thread scheduling is the only source of delay;
//! - `Ctx::now()` equals the global delivery counter (`now == seq`), so
//!   "time" is a delivery count, not ticks, and durations are not
//!   comparable to [`Network`] durations;
//! - [`Ctx::send_after`] extra delays degrade to immediate sends — timer
//!   semantics need the virtual clock and simply do not exist here;
//! - per-link FIFO is whatever the channels give (per-sender order),
//!   and there is no fault layer.
//!
//! Runs that need timing fidelity or worker-count-invariant results
//! belong on [`Network`] or on the sharded parallel executor
//! ([`run_sharded`]); this executor's job is purely to shake out
//! real-concurrency safety bugs in the node code.
//!
//! [`Network`]: crate::Network
//! [`run_sharded`]: crate::run_sharded

use crate::net::{Ctx, NodeId, Process, RunOutcome, SiteId, Termination};
use crate::stats::NetStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Envelope<M> {
    from: NodeId,
    msg: M,
}

/// Run `nodes` under threads until quiescence (no message in flight and
/// all inboxes drained), returning the nodes for inspection together
/// with a [`RunOutcome`] (real delivery count, honest [`Termination`])
/// and the aggregated [`NetStats`].
///
/// `injections` seeds the run. Quiescence is tracked with an in-flight
/// counter: it is incremented at send time and decremented only after the
/// receiving node has fully processed the message (including enqueueing
/// its replies), so a zero counter means the system is silent.
///
/// There is no virtual clock, so every send is recorded with the
/// simulator's minimum latency of 1; the delivery count doubles as the
/// global sequence, exactly as it does on [`Network`].
///
/// [`Network`]: crate::Network
pub fn run_threaded<M, P>(
    nodes: Vec<(SiteId, P)>,
    injections: Vec<(NodeId, NodeId, M)>,
    max_messages: u64,
) -> (Vec<P>, RunOutcome, NetStats)
where
    M: Send + 'static,
    P: Process<M> + Send + 'static,
{
    let n = nodes.len();
    let sites: Arc<Vec<u32>> = Arc::new(nodes.iter().map(|(s, _)| s.0).collect());
    let in_flight = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let exhausted = Arc::new(AtomicBool::new(false));
    let mut senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Envelope<M>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    let mut seed_stats = NetStats::default();
    for (from, to, msg) in injections {
        seed_stats.record_send(sites[from.0 as usize] != sites[to.0 as usize], 1);
        in_flight.fetch_add(1, Ordering::SeqCst);
        senders[to.0 as usize].send(Envelope { from, msg }).expect("receiver alive");
    }

    let mut handles = Vec::with_capacity(n);
    for (ix, ((_site, mut proc_), rx)) in nodes.into_iter().zip(receivers).enumerate() {
        let senders = senders.clone();
        let sites = Arc::clone(&sites);
        let in_flight = Arc::clone(&in_flight);
        let delivered = Arc::clone(&delivered);
        let exhausted = Arc::clone(&exhausted);
        let self_id = NodeId(ix as u32);
        handles.push(std::thread::spawn(move || {
            let mut stats = NetStats::default();
            loop {
                match rx.recv_timeout(Duration::from_millis(5)) {
                    Ok(env) => {
                        let seq = delivered.fetch_add(1, Ordering::SeqCst) + 1;
                        stats.record_delivery(sites[ix]);
                        let mut outbox: Vec<(NodeId, M, u64)> = Vec::new();
                        {
                            let mut ctx = Ctx::for_threaded(self_id, seq, &mut outbox);
                            proc_.on_message(&mut ctx, env.from, env.msg);
                        }
                        // The threaded executor has no virtual clock:
                        // extra delays degrade to immediate sends.
                        for (to, msg, _extra) in outbox {
                            stats.record_send(sites[ix] != sites[to.0 as usize], 1);
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            let _ = senders[to.0 as usize].send(Envelope { from: self_id, msg });
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        // Quiescent: no message queued or being processed
                        // anywhere (the counter is decremented only after
                        // replies are enqueued, so zero is conclusive).
                        // Checked *before* the budget: delivering exactly
                        // `max_messages` and then going silent is
                        // convergence, not exhaustion — the same tie-break
                        // `Network::run_to_quiescence` applies.
                        if in_flight.load(Ordering::SeqCst) == 0 && rx.is_empty() {
                            return (proc_, stats);
                        }
                        if delivered.load(Ordering::SeqCst) >= max_messages {
                            exhausted.store(true, Ordering::SeqCst);
                            return (proc_, stats); // over budget: bail out
                        }
                    }
                }
            }
        }));
    }
    // Senders on the main thread must drop so threads can detect closure;
    // we instead rely on the quiescence condition above.
    drop(senders);
    let mut stats = seed_stats;
    let procs: Vec<P> = handles
        .into_iter()
        .map(|h| {
            let (proc_, local) = h.join().expect("node thread panicked");
            stats.absorb(&local);
            proc_
        })
        .collect();
    let termination = if exhausted.load(Ordering::SeqCst) {
        Termination::BudgetExhausted
    } else {
        Termination::Quiescent
    };
    let outcome = RunOutcome { steps: delivered.load(Ordering::SeqCst), termination };
    (procs, outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Ctx, NodeId, Process, SiteId};

    struct Counter {
        seen: u64,
    }

    impl Process<u64> for Counter {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.seen += 1;
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    #[test]
    fn threaded_ping_pong_reaches_quiescence() {
        let nodes = vec![(SiteId(0), Counter { seen: 0 }), (SiteId(1), Counter { seen: 0 })];
        let (out, outcome, stats) = run_threaded(nodes, vec![(NodeId(0), NodeId(1), 9)], 10_000);
        let total: u64 = out.iter().map(|c| c.seen).sum();
        assert_eq!(total, 10);
        assert_eq!(outcome.termination, Termination::Quiescent);
        assert_eq!(outcome.steps, 10, "every delivery counted");
        assert_eq!(stats.delivered_total, 10);
        assert_eq!(stats.sent_total, 10, "injection plus nine replies");
        assert_eq!(stats.sent_remote, 10, "the two nodes sit on different sites");
    }

    #[test]
    fn threaded_many_senders() {
        let nodes: Vec<(SiteId, Counter)> =
            (0..8).map(|i| (SiteId(i % 2), Counter { seen: 0 })).collect();
        let injections: Vec<(NodeId, NodeId, u64)> =
            (0..8).map(|i| (NodeId(i), NodeId((i + 1) % 8), 5)).collect();
        let (out, outcome, stats) = run_threaded(nodes, injections, 100_000);
        let total: u64 = out.iter().map(|c| c.seen).sum();
        assert_eq!(total, 8 * 6);
        assert_eq!(outcome.steps, 8 * 6);
        assert_eq!(stats.delivered_total, 8 * 6);
    }

    #[test]
    fn threaded_budget_exhaustion_is_reported() {
        // An endless ping-pong (every reply re-arms the countdown) can
        // only end by budget; the outcome must say so honestly.
        struct Echo;
        impl Process<u64> for Echo {
            fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
                ctx.send(from, msg);
            }
        }
        let nodes = vec![(SiteId(0), Echo), (SiteId(0), Echo)];
        let (_, outcome, _) = run_threaded(nodes, vec![(NodeId(0), NodeId(1), 1)], 50);
        assert_eq!(outcome.termination, Termination::BudgetExhausted);
        assert!(outcome.steps >= 50);
    }

    #[test]
    fn threaded_exact_budget_quiescence_is_not_exhaustion() {
        // A 9-countdown ping-pong delivers exactly 10 messages and then
        // goes silent: with max_messages == 10 that is convergence, and
        // the outcome must say Quiescent — the same tie-break the
        // deterministic Network applies when its budget runs out on the
        // very last delivery.
        let nodes = vec![(SiteId(0), Counter { seen: 0 }), (SiteId(1), Counter { seen: 0 })];
        let (out, outcome, stats) = run_threaded(nodes, vec![(NodeId(0), NodeId(1), 9)], 10);
        let total: u64 = out.iter().map(|c| c.seen).sum();
        assert_eq!(total, 10, "all ten deliveries happened");
        assert_eq!(outcome.steps, 10);
        assert_eq!(outcome.termination, Termination::Quiescent);
        assert_eq!(stats.delivered_total, 10);
    }

    #[test]
    fn threaded_divergence_latency_is_always_one() {
        // The documented divergence from Network: no latency model, every
        // send recorded with latency 1 — so the latency sum equals the
        // send count and p99 is 1 whatever the real scheduling did.
        let nodes = vec![(SiteId(0), Counter { seen: 0 }), (SiteId(1), Counter { seen: 0 })];
        let (_, outcome, stats) = run_threaded(nodes, vec![(NodeId(0), NodeId(1), 7)], 10_000);
        assert_eq!(outcome.termination, Termination::Quiescent);
        assert_eq!(stats.latency_sum, stats.sent_total, "every send costs exactly 1 tick");
        assert_eq!(stats.p99(), 1);
    }
}
