//! Seed-corpus regressions for the fault layer: every test pins one
//! (workflow, fault plan, seed) triple that once exposed a bug or an
//! interesting corner of the fault machinery, named after what it
//! exercises. Exploration finds new cases; this file keeps them found.
//!
//! The corpus deliberately replays *full scheduler* scenarios through
//! `sim`'s fault hooks (dev-dependency cycle on `dist`/`testkit` — the
//! fault layer is meaningless without traffic to perturb).

use agent::EventAttrs;
use dist::{
    run_tenant, Arrival, ExecConfig, FreeEventSpec, ReliableConfig, TenantConfig, WorkflowSpec,
};
use event_algebra::{parse_expr, Literal, SymbolId, SymbolTable};
use sim::{FaultPlan, NodeId, SiteId, Termination};
use testkit::conformance::{audit_tenant_isolation, check_determinism, check_run};

/// Example 11: mutually-promising events on two sites.
fn mutual_promise_spec() -> WorkflowSpec {
    let mut table = SymbolTable::new();
    let d1 = parse_expr("~e + f", &mut table).unwrap();
    let d2 = parse_expr("~f + e", &mut table).unwrap();
    let e = table.event("e");
    let f = table.event("f");
    WorkflowSpec {
        table,
        dependencies: vec![d1, d2],
        agents: vec![],
        free_events: vec![
            FreeEventSpec {
                site: SiteId(0),
                lit: e,
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            },
            FreeEventSpec {
                site: SiteId(1),
                lit: f,
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            },
        ],
    }
}

/// A Klein pipeline of `n` events spread over `n` sites.
fn pipeline_spec(n: u32) -> WorkflowSpec {
    let syms: Vec<SymbolId> = (0..n).map(SymbolId).collect();
    let mut table = SymbolTable::new();
    for i in 0..n {
        table.intern(&format!("e{i}"));
    }
    let free_events = syms
        .iter()
        .enumerate()
        .map(|(i, &s)| FreeEventSpec {
            site: SiteId(i as u32),
            lit: Literal::pos(s),
            attrs: EventAttrs::controllable(),
            attempt_after: Some(1),
        })
        .collect();
    WorkflowSpec {
        table,
        dependencies: testkit::klein_pipeline(&syms),
        agents: vec![],
        free_events,
    }
}

fn hardened(seed: u64) -> ExecConfig {
    let mut config = ExecConfig::seeded(seed);
    config.reliable = Some(ReliableConfig::default());
    config
}

/// seed 17 / n = 3: the shrunk counterexample from an early
/// `klein_pipeline_completes` failure (see
/// `dist/tests/exec_props.proptest-regressions`). Re-pinned here under a
/// 20% lossy link — the schedule that once wedged the pipeline must now
/// ride out drops too.
#[test]
fn pipeline_seed17_survives_lossy_link() {
    let spec = pipeline_spec(3);
    let plan = FaultPlan::new(17).drop_rate(0.2).duplicate_rate(0.2);
    let run = check_run(&spec, hardened(17), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    assert_eq!(run.report.trace.len(), 3);
}

/// A duplicate storm (90% duplication): receiver-side dedup must make
/// redelivery invisible — exactly-once processing, no double firing, and
/// a trace identical in shape to the clean run.
#[test]
fn duplicate_storm_is_idempotent() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(41).duplicate_rate(0.9);
    let run = check_run(&spec, hardened(8), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    assert_eq!(run.report.trace.len(), 2, "each event fires exactly once");
}

/// A partition that opens before the first promise round and heals late:
/// retransmission timers must carry the consensus across the heal.
#[test]
fn partition_heals_and_consensus_completes() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(23).partition(SiteId(0), SiteId(1), 0, 600);
    let run = check_run(&spec, hardened(23), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
}

/// The crash schedule from `dist/tests/crash_restart.rs`, kept in the
/// corpus: node 0 dies at t=2 mid-round and restarts at t=100 with its
/// state rebuilt from the write-ahead log.
#[test]
fn crash_restart_seed13_completes() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(13).crash(NodeId(0), 2, Some(100));
    let run = check_run(&spec, hardened(21), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    assert!(run.report.broken_promises.is_empty());
}

/// The post-occurrence crash that exposed the sequence-replay bug: node 0
/// dies at t=40 — *after* its event has occurred — and restarts. The WAL
/// replay must rebuild the occurrence under its original delivery
/// context; the broken replay re-announced it under a fabricated
/// restart-time sequence number, double-residuating subscribers' guards
/// and (on colliding seqs) diverging their views of the occurrence order.
#[test]
fn crash_after_occurrence_seed13_keeps_views_convergent() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(13).crash(NodeId(0), 40, Some(300));
    let run = check_run(&spec, hardened(21), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    assert_eq!(run.report.trace.len(), 2, "both events fire exactly once");
}

/// Chaos plan (drops + duplicates + jitter + partition) over the
/// pipeline: the full gauntlet, plus a byte-for-byte replay check —
/// fault injection must not leak nondeterminism into the simulation.
#[test]
fn pipeline_chaos_seed9_is_deterministic() {
    let spec = pipeline_spec(4);
    let plan = FaultPlan::new(9).drop_rate(0.2).duplicate_rate(0.2).jitter(0, 20).partition(
        SiteId(0),
        SiteId(1),
        20,
        400,
    );
    let run = check_run(&spec, hardened(9), plan.clone(), true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    let failures = check_determinism(&spec, hardened(9), plan);
    assert!(failures.is_empty(), "{failures:?}");
}

/// A fault plan with every knob at zero must be byte-identical to no
/// plan at all: the fault layer's mere presence cannot perturb the
/// simulation (its RNG stream is separate from latency sampling).
#[test]
fn empty_plan_is_transparent() {
    let spec = mutual_promise_spec();
    let clean = dist::run_workflow(&spec, ExecConfig::seeded(6));
    let faulted = dist::run_workflow_with_faults(&spec, ExecConfig::seeded(6), FaultPlan::new(99));
    assert_eq!(clean.trace, faulted.trace);
    assert_eq!(clean.duration, faulted.duration);
    assert_eq!(clean.steps, faulted.steps);
    assert_eq!(faulted.termination, Termination::Quiescent);
}

// --- Multi-instance crash-restart corpus -------------------------------
//
// The tenant engine shares one instance-keyed WAL across a fleet; these
// regressions pin the recovery corners that only exist with several
// instances live at once.

/// Crash-restart with three concurrently live instances: node 0 dies and
/// restarts *in every instance*, and each restart must replay only its
/// own instance's WAL slice. The isolation audit proves each instance's
/// outcome still equals its solo crash-run baseline — no phantom
/// promises, no cross-instance replay.
#[test]
fn crash_restart_with_three_live_instances_stays_isolated() {
    let specs = vec![mutual_promise_spec()];
    let arrivals: Vec<Arrival> =
        (0..3u64).map(|i| Arrival::new(i + 1, 0, i * 3, 0xC0DE ^ i)).collect();
    let mut config = TenantConfig::new(hardened(21));
    config.plan = Some(FaultPlan::new(13).crash(NodeId(0), 40, Some(300)));
    let (failures, report) = audit_tenant_isolation(&specs, &arrivals, &config);
    assert!(failures.is_empty(), "{failures:?}");
    assert!(report.all_satisfied());
    for o in &report.instances {
        assert!(o.report.broken_promises.is_empty(), "instance {}", o.instance);
    }
}

/// The restart instance-stamp regression the tenant audit caught: the
/// rebuilt transport used to default its stamp to `InstanceId::ROOT`, so
/// a restarted node in any instance other than 0 rejected every peer
/// envelope as foreign and wedged behind retransmission storms —
/// invisible to single-instance runs, where ROOT happens to be correct.
/// Pin it: a crashed node in instance 7 drops zero foreign envelopes.
#[test]
fn restarted_node_keeps_its_instance_stamp() {
    let specs = vec![mutual_promise_spec()];
    let arrivals = vec![Arrival::new(7, 0, 0, 0x51A6)];
    let mut config = TenantConfig::new(hardened(21));
    config.plan = Some(FaultPlan::new(13).crash(NodeId(0), 2, Some(100)));
    let report = run_tenant(&specs, &arrivals, &config);
    assert_eq!(report.cross_instance_dropped, 0, "restart lost the instance stamp");
    assert!(report.all_satisfied());
    assert!(report.instances[0].report.broken_promises.is_empty());
}

/// The shared WAL after a three-instance crash run: slices exist only
/// for admitted instances, every slice's delivery order is monotone, and
/// per-sender envelope sequences never repeat within a slice — a replay
/// that fabricated or reused a sequence number would break all three.
#[test]
fn instance_keyed_wal_slices_stay_disjoint_and_monotonic() {
    let specs = vec![mutual_promise_spec()];
    let arrivals: Vec<Arrival> =
        (0..3u64).map(|i| Arrival::new(i + 1, 0, i * 2, 0xBEEF ^ i)).collect();
    let mut config = TenantConfig::new(hardened(21));
    config.plan = Some(FaultPlan::new(13).crash(NodeId(0), 40, Some(300)));
    let report = run_tenant(&specs, &arrivals, &config);
    let wal = report.wal.as_ref().expect("a crash plan arms the WAL");
    assert!(wal.total() > 0, "the crash window saw no logged traffic");
    let known: std::collections::BTreeSet<_> = arrivals.iter().map(|a| a.instance).collect();
    for i in wal.instances() {
        assert!(known.contains(&i), "phantom WAL slice for {i}");
        for node in 0..2u32 {
            let log = wal.log_of(i, node);
            for pair in log.windows(2) {
                assert!(
                    pair[0].delivery_seq < pair[1].delivery_seq,
                    "{i}/n{node}: delivery order not monotone"
                );
            }
            let mut last_env: std::collections::BTreeMap<_, u64> = Default::default();
            for entry in &log {
                if let Some(seq) = entry.env_seq {
                    if let Some(&prev) = last_env.get(&entry.from) {
                        assert!(seq > prev, "{i}/n{node}: envelope seq {seq} reused");
                    }
                    last_env.insert(entry.from, seq);
                }
            }
        }
    }
}
