//! Seed-corpus regressions for the fault layer: every test pins one
//! (workflow, fault plan, seed) triple that once exposed a bug or an
//! interesting corner of the fault machinery, named after what it
//! exercises. Exploration finds new cases; this file keeps them found.
//!
//! The corpus deliberately replays *full scheduler* scenarios through
//! `sim`'s fault hooks (dev-dependency cycle on `dist`/`testkit` — the
//! fault layer is meaningless without traffic to perturb).

use agent::EventAttrs;
use dist::{ExecConfig, FreeEventSpec, ReliableConfig, WorkflowSpec};
use event_algebra::{parse_expr, Literal, SymbolId, SymbolTable};
use sim::{FaultPlan, NodeId, SiteId, Termination};
use testkit::conformance::{check_determinism, check_run};

/// Example 11: mutually-promising events on two sites.
fn mutual_promise_spec() -> WorkflowSpec {
    let mut table = SymbolTable::new();
    let d1 = parse_expr("~e + f", &mut table).unwrap();
    let d2 = parse_expr("~f + e", &mut table).unwrap();
    let e = table.event("e");
    let f = table.event("f");
    WorkflowSpec {
        table,
        dependencies: vec![d1, d2],
        agents: vec![],
        free_events: vec![
            FreeEventSpec {
                site: SiteId(0),
                lit: e,
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            },
            FreeEventSpec {
                site: SiteId(1),
                lit: f,
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            },
        ],
    }
}

/// A Klein pipeline of `n` events spread over `n` sites.
fn pipeline_spec(n: u32) -> WorkflowSpec {
    let syms: Vec<SymbolId> = (0..n).map(SymbolId).collect();
    let mut table = SymbolTable::new();
    for i in 0..n {
        table.intern(&format!("e{i}"));
    }
    let free_events = syms
        .iter()
        .enumerate()
        .map(|(i, &s)| FreeEventSpec {
            site: SiteId(i as u32),
            lit: Literal::pos(s),
            attrs: EventAttrs::controllable(),
            attempt_after: Some(1),
        })
        .collect();
    WorkflowSpec {
        table,
        dependencies: testkit::klein_pipeline(&syms),
        agents: vec![],
        free_events,
    }
}

fn hardened(seed: u64) -> ExecConfig {
    let mut config = ExecConfig::seeded(seed);
    config.reliable = Some(ReliableConfig::default());
    config
}

/// seed 17 / n = 3: the shrunk counterexample from an early
/// `klein_pipeline_completes` failure (see
/// `dist/tests/exec_props.proptest-regressions`). Re-pinned here under a
/// 20% lossy link — the schedule that once wedged the pipeline must now
/// ride out drops too.
#[test]
fn pipeline_seed17_survives_lossy_link() {
    let spec = pipeline_spec(3);
    let plan = FaultPlan::new(17).drop_rate(0.2).duplicate_rate(0.2);
    let run = check_run(&spec, hardened(17), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    assert_eq!(run.report.trace.len(), 3);
}

/// A duplicate storm (90% duplication): receiver-side dedup must make
/// redelivery invisible — exactly-once processing, no double firing, and
/// a trace identical in shape to the clean run.
#[test]
fn duplicate_storm_is_idempotent() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(41).duplicate_rate(0.9);
    let run = check_run(&spec, hardened(8), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    assert_eq!(run.report.trace.len(), 2, "each event fires exactly once");
}

/// A partition that opens before the first promise round and heals late:
/// retransmission timers must carry the consensus across the heal.
#[test]
fn partition_heals_and_consensus_completes() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(23).partition(SiteId(0), SiteId(1), 0, 600);
    let run = check_run(&spec, hardened(23), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
}

/// The crash schedule from `dist/tests/crash_restart.rs`, kept in the
/// corpus: node 0 dies at t=2 mid-round and restarts at t=100 with its
/// state rebuilt from the write-ahead log.
#[test]
fn crash_restart_seed13_completes() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(13).crash(NodeId(0), 2, Some(100));
    let run = check_run(&spec, hardened(21), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    assert!(run.report.broken_promises.is_empty());
}

/// The post-occurrence crash that exposed the sequence-replay bug: node 0
/// dies at t=40 — *after* its event has occurred — and restarts. The WAL
/// replay must rebuild the occurrence under its original delivery
/// context; the broken replay re-announced it under a fabricated
/// restart-time sequence number, double-residuating subscribers' guards
/// and (on colliding seqs) diverging their views of the occurrence order.
#[test]
fn crash_after_occurrence_seed13_keeps_views_convergent() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(13).crash(NodeId(0), 40, Some(300));
    let run = check_run(&spec, hardened(21), plan, true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    assert_eq!(run.report.trace.len(), 2, "both events fire exactly once");
}

/// Chaos plan (drops + duplicates + jitter + partition) over the
/// pipeline: the full gauntlet, plus a byte-for-byte replay check —
/// fault injection must not leak nondeterminism into the simulation.
#[test]
fn pipeline_chaos_seed9_is_deterministic() {
    let spec = pipeline_spec(4);
    let plan = FaultPlan::new(9).drop_rate(0.2).duplicate_rate(0.2).jitter(0, 20).partition(
        SiteId(0),
        SiteId(1),
        20,
        400,
    );
    let run = check_run(&spec, hardened(9), plan.clone(), true);
    assert!(run.is_conformant(), "{:?}", run.failures);
    let failures = check_determinism(&spec, hardened(9), plan);
    assert!(failures.is_empty(), "{failures:?}");
}

/// A fault plan with every knob at zero must be byte-identical to no
/// plan at all: the fault layer's mere presence cannot perturb the
/// simulation (its RNG stream is separate from latency sampling).
#[test]
fn empty_plan_is_transparent() {
    let spec = mutual_promise_spec();
    let clean = dist::run_workflow(&spec, ExecConfig::seeded(6));
    let faulted = dist::run_workflow_with_faults(&spec, ExecConfig::seeded(6), FaultPlan::new(99));
    assert_eq!(clean.trace, faulted.trace);
    assert_eq!(clean.duration, faulted.duration);
    assert_eq!(clean.steps, faulted.steps);
    assert_eq!(faulted.termination, Termination::Quiescent);
}
