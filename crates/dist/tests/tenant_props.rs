//! Property tests of the multi-tenant engine: random seeded workloads
//! never leak facts across instance boundaries (the isolation audit
//! stays green under lossy links), fleets are shard-invariant, budget
//! exhaustion is reported honestly, and a deliberately cross-wired
//! instance is always caught and correctly attributed.
//!
//! Strategies stick to plain integer ranges so the suite also runs
//! against the offline proptest stub (`scripts/shadow-check.sh`).

use agent::EventAttrs;
use dist::{
    run_tenant, ExecConfig, FreeEventSpec, InstanceId, ReliableConfig, TenantConfig, WorkflowSpec,
};
use event_algebra::{parse_expr, SymbolTable};
use proptest::prelude::*;
use sim::{FaultPlan, LatencyModel, SimConfig, SiteId, Termination};
use testkit::conformance::audit_tenant_isolation;
use testkit::workload::{drive, generate, WorkloadConfig};

/// A precedence pipeline `e0 < e1 < … < e{n-1}` with one controllable
/// free event per site, not yet driven — the shape the spec pipeline
/// emits and [`drive`] arms. Precedence (not mutual promise) so a
/// starved □-announcement visibly wedges the instance.
fn precedence_template(n: u32) -> WorkflowSpec {
    let mut table = SymbolTable::new();
    let mut deps = Vec::new();
    for i in 0..n.saturating_sub(1) {
        let j = i + 1;
        deps.push(parse_expr(&format!("~e{i} + ~e{j} + e{i}.e{j}"), &mut table).unwrap());
    }
    let free_events = (0..n)
        .map(|i| FreeEventSpec {
            site: SiteId(i),
            lit: table.event(&format!("e{i}")),
            attrs: EventAttrs::controllable(),
            attempt_after: None,
        })
        .collect();
    WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
}

fn templates() -> Vec<WorkflowSpec> {
    vec![drive(&precedence_template(3)), drive(&precedence_template(5))]
}

fn hardened(seed: u64) -> ExecConfig {
    let mut config = ExecConfig::seeded(seed);
    config.sim =
        SimConfig { seed, latency: LatencyModel::Uniform { min: 1, max: 20 }, fifo_links: true };
    config.reliable = Some(ReliableConfig::default());
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ISOLATION: on random seeded fleets over a mixed template
    /// population, with a 15% lossy + duplicating link, no fact ever
    /// crosses an instance boundary and every instance's outcome equals
    /// its independent single-instance baseline — the full differential
    /// audit, not just the counters.
    #[test]
    fn random_fleets_pass_the_isolation_audit(seed in 0u64..24, n in 3u64..9) {
        let specs = templates();
        let arrivals = generate(&specs, &WorkloadConfig::new(n, seed));
        let mut config = TenantConfig::new(hardened(seed));
        config.plan = Some(FaultPlan::new(seed ^ 0x7E4A).drop_rate(0.15).duplicate_rate(0.15));
        config.shards = 1 + (seed as usize % 3);
        let (failures, report) = audit_tenant_isolation(&specs, &arrivals, &config);
        prop_assert!(failures.is_empty(), "seed {seed} n {n}: {failures:?}");
        prop_assert_eq!(report.cross_instance_dropped, 0);
        prop_assert_eq!(report.cross_instance_rejected, 0);
    }

    /// SHARD INVARIANCE: the fleet outcome is a pure function of
    /// (specs, arrivals, exec) — the shard count changes wall-clock
    /// parallelism only, never a single instance's trace, duration or
    /// termination.
    #[test]
    fn fleets_are_shard_invariant(seed in 0u64..20, shards in 2usize..6) {
        let specs = templates();
        let arrivals = generate(&specs, &WorkloadConfig::new(6, seed));
        let mut solo = TenantConfig::new(hardened(seed));
        solo.shards = 1;
        let mut wide = TenantConfig::new(hardened(seed));
        wide.shards = shards;
        let a = run_tenant(&specs, &arrivals, &solo);
        let b = run_tenant(&specs, &arrivals, &wide);
        prop_assert_eq!(a.instances.len(), b.instances.len());
        for (x, y) in a.instances.iter().zip(&b.instances) {
            prop_assert_eq!(x.instance, y.instance);
            prop_assert_eq!(&x.report.trace, &y.report.trace, "instance {:?}", x.instance);
            prop_assert_eq!(x.report.duration, y.report.duration);
            prop_assert_eq!(x.report.steps, y.report.steps);
            prop_assert_eq!(x.report.termination, y.report.termination);
            prop_assert_eq!(x.finished_at, y.finished_at);
        }
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.events, b.events);
    }

    /// HONEST TERMINATION: every instance is accounted for exactly once
    /// as quiesced or exhausted, and the roll-up counters agree with the
    /// per-instance termination verdicts — a starved delivery budget is
    /// never silently upgraded to success.
    #[test]
    fn termination_accounting_is_honest(seed in 0u64..20, budget in 1u64..40) {
        let specs = templates();
        let arrivals = generate(&specs, &WorkloadConfig::new(5, seed));
        let mut exec = hardened(seed);
        exec.max_steps = budget; // tight enough that some fleets starve
        let report = run_tenant(&specs, &arrivals, &TenantConfig::new(exec));
        prop_assert_eq!(report.quiesced + report.exhausted, report.instances.len());
        for o in &report.instances {
            match o.report.termination {
                Termination::Quiescent => prop_assert!(o.report.steps <= budget),
                Termination::BudgetExhausted => {
                    prop_assert!(o.report.steps >= budget, "instance {:?}", o.instance);
                }
            }
        }
        let quiesced = report
            .instances
            .iter()
            .filter(|o| o.report.termination == Termination::Quiescent)
            .count();
        prop_assert_eq!(report.quiesced, quiesced);
    }

    /// MUTATION: cross-wiring any one instance's announcement stamp is
    /// caught by the audit — the transport counters light up and the
    /// differential comparison names the mutant (and only the mutant)
    /// as diverging from its solo baseline.
    #[test]
    fn cross_wired_instance_is_always_caught(seed in 0u64..12, victim in 0u64..4) {
        let specs = vec![drive(&precedence_template(4))];
        let arrivals = generate(&specs, &WorkloadConfig::new(4, seed));
        let mut config = TenantConfig::new(hardened(seed));
        config.cross_wire = Some(InstanceId(victim));
        let (failures, report) = audit_tenant_isolation(&specs, &arrivals, &config);
        prop_assert!(!failures.is_empty(), "seed {seed}: mutant i{victim} escaped the audit");
        prop_assert!(report.cross_instance_rejected > 0, "no rejection recorded");
        let tag = format!("instance i{victim}:");
        prop_assert!(
            failures.iter().any(|f| f.contains(&tag)),
            "failures name the wrong instance: {failures:?}"
        );
        // Healthy neighbors stay clean: no failure implicates them.
        for other in (0..4).filter(|&o| o != victim) {
            let other_tag = format!("instance i{other}:");
            prop_assert!(
                !failures.iter().any(|f| f.contains(&other_tag)),
                "innocent i{other} implicated: {failures:?}"
            );
        }
    }
}
