//! Property tests for the Section 5 dynamic scheduler: mutual exclusion
//! under random adversarial interleavings, and serializability-style
//! uniform ordering (the paper's concluding remark in Example 13:
//! "concurrency control requirements such as serializability are
//! similar, except that they impose a uniform order over data access
//! events").

use dist::param::{mutex_pair, DynamicScheduler, Outcome, PExpr, Term};
use event_algebra::Literal;
use proptest::prelude::*;

/// Drive two looping tasks through a random interleaving of enter/exit
/// attempts; the scheduler may park enters, which retry implicitly when
/// exits occur. Checks the exclusion invariant on the realized trace.
fn run_mutex_interleaving(order: &[(u8, bool)]) -> DynamicScheduler {
    let (d12, d21) = mutex_pair("b1", "e1", "b2", "e2");
    let mut s = DynamicScheduler::new(vec![d12, d21]);
    let mut iter = [0u64, 0u64];
    let mut inside = [None::<u64>, None::<u64>];
    for &(task, enter) in order {
        let t = task as usize;
        if enter {
            if inside[t].is_some() {
                continue; // task already inside: cannot enter again
            }
            iter[t] += 1;
            let k = iter[t];
            let (var, b, e) = if t == 0 { ("x", "b1", "e1") } else { ("y", "b2", "e2") };
            s.bind(var, k);
            match s.attempt(&format!("{b}[{k}]")) {
                Outcome::Granted => {
                    s.guarantee(&format!("{e}[{k}]"));
                    inside[t] = Some(k);
                }
                Outcome::Parked => {
                    // Entering remains pending; the task cannot proceed,
                    // but it is still obligated to exit once inside. We
                    // model the task as abandoning the pending enter for
                    // this round (it will mint a fresh iteration later).
                }
                Outcome::Rejected => {}
            }
        } else if let Some(k) = inside[t].take() {
            let e = if t == 0 { "e1" } else { "e2" };
            // Exits of entered sections are guaranteed: must be granted.
            assert_eq!(
                s.attempt(&format!("{e}[{k}]")),
                Outcome::Granted,
                "guaranteed exit must be granted"
            );
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exclusion invariant holds on every realized trace, for every
    /// random interleaving of enters and exits.
    #[test]
    fn mutex_invariant_under_random_interleavings(
        order in prop::collection::vec((0u8..2, any::<bool>()), 4..24)
    ) {
        let s = run_mutex_interleaving(&order);
        let trace = s.trace();
        let evs = trace.events();
        let name_pos = |n: &str| {
            s.table.lookup(n).and_then(|sym| {
                evs.iter().position(|l| l.symbol() == sym && l.is_pos())
            })
        };
        for k in 1..=24u64 {
            for j in 1..=24u64 {
                if let (Some(b1), Some(e1), Some(b2)) = (
                    name_pos(&format!("b1[{k}]")),
                    name_pos(&format!("e1[{k}]")),
                    name_pos(&format!("b2[{j}]")),
                ) {
                    prop_assert!(
                        !(b1 < b2 && b2 < e1),
                        "b2[{j}] inside T1's section {k}: {trace}"
                    );
                }
                if let (Some(b2), Some(e2), Some(b1)) = (
                    name_pos(&format!("b2[{k}]")),
                    name_pos(&format!("e2[{k}]")),
                    name_pos(&format!("b1[{j}]")),
                ) {
                    prop_assert!(
                        !(b2 < b1 && b1 < e2),
                        "b1[{j}] inside T2's section {k}: {trace}"
                    );
                }
            }
        }
    }
}

/// Serializability-style uniform ordering: two transactions access two
/// shared items; the dependencies impose that the access order agrees on
/// *every* item (as the paper notes, "a uniform order over data access
/// events"). Template per item z:
///
/// `w2[z]·w1[z] + w̄1[z] + w̄2[z] + w1[z]·w2[z]` is trivial (either order);
/// the uniformity comes from tying both items to the same direction via
/// the mutex-shaped dependency used twice, sharing the direction token.
#[test]
fn uniform_access_order_across_items() {
    // Accesses: t1 writes item a then b; t2 writes a then b. Uniform
    // order means: if t1's a-write precedes t2's, then also for b.
    // Encode with two mutex-style dependencies sharing variables:
    //   w2a[y]·w1a[x] + w̄1b[x] + w̄2a[y] + w1b[x]·w2a[y]
    // ("if t1 accessed a before t2, t1 finishes b before t2 touches a" —
    // two-phase-locking style ordering).
    let d = PExpr::Or(vec![
        PExpr::Seq(vec![
            PExpr::lit("w2a", &[Term::Var("y".into())]),
            PExpr::lit("w1a", &[Term::Var("x".into())]),
        ]),
        PExpr::comp("w1b", &[Term::Var("x".into())]),
        PExpr::comp("w2a", &[Term::Var("y".into())]),
        PExpr::Seq(vec![
            PExpr::lit("w1b", &[Term::Var("x".into())]),
            PExpr::lit("w2a", &[Term::Var("y".into())]),
        ]),
    ]);
    let d2 = PExpr::Or(vec![
        PExpr::Seq(vec![
            PExpr::lit("w1a", &[Term::Var("x".into())]),
            PExpr::lit("w2a", &[Term::Var("y".into())]),
        ]),
        PExpr::comp("w2b", &[Term::Var("y".into())]),
        PExpr::comp("w1a", &[Term::Var("x".into())]),
        PExpr::Seq(vec![
            PExpr::lit("w2b", &[Term::Var("y".into())]),
            PExpr::lit("w1a", &[Term::Var("x".into())]),
        ]),
    ]);
    let mut s = DynamicScheduler::new(vec![d, d2]);
    s.bind("x", 1);
    s.bind("y", 1);
    // t1 writes a first.
    assert_eq!(s.attempt("w1a[1]"), Outcome::Granted);
    s.guarantee("w1b[1]");
    // t2's a-write must now wait until t1 finishes b.
    assert_eq!(s.attempt("w2a[1]"), Outcome::Parked);
    assert_eq!(s.attempt("w1b[1]"), Outcome::Granted);
    // Parked w2a wakes after w1b.
    let trace = s.trace();
    let evs = trace.events();
    let pos = |n: &str| {
        s.table.lookup(n).and_then(|sym| evs.iter().position(|l| l.symbol() == sym && l.is_pos()))
    };
    let (w1a, w1b, w2a) = (
        pos("w1a[1]").unwrap(),
        pos("w1b[1]").unwrap(),
        pos("w2a[1]").expect("t2's access proceeded after t1 finished"),
    );
    assert!(w1a < w2a && w1b < w2a, "uniform order violated: {trace}");
    s.guarantee("w2b[1]");
    assert_eq!(s.attempt("w2b[1]"), Outcome::Granted);
    assert!(s.all_satisfied(), "{}", s.trace());
    let _ = Literal::pos(event_algebra::SymbolId(0));
}
