//! Exhaustive interleaving exploration: for small workflows, every
//! possible delivery order of the protocol's messages is executed (DFS
//! over the pending-message set, cloning node state at each branch), and
//! every reachable terminal state is checked safe — the realized trace
//! satisfies all dependencies whenever all symbols resolved. This is a
//! model check of the actor protocol itself, independent of any latency
//! model.

use agent::EventAttrs;
use dist::{build_workflow, ExecConfig, FreeEventSpec, Msg, Node, WorkflowSpec};
use event_algebra::{parse_expr, satisfies, Expr, Literal, SymbolId, SymbolTable, Trace};
use sim::{Ctx, NodeId, SiteId};

#[derive(Clone)]
struct State {
    nodes: Vec<Node>,
    pending: Vec<(NodeId, NodeId, Msg)>,
    delivered: u64,
}

struct Explorer {
    deps: Vec<Expr>,
    symbols: Vec<SymbolId>,
    actor_index: Vec<usize>,
    paths: u64,
    violations: Vec<String>,
    max_paths: u64,
}

impl Explorer {
    fn deliver(&mut self, mut st: State, ix: usize) -> State {
        let (from, to, msg) = st.pending.swap_remove(ix);
        st.delivered += 1;
        let mut outbox: Vec<(NodeId, Msg, u64)> = Vec::new();
        {
            let mut ctx = Ctx::manual(to, st.delivered, st.delivered, &mut outbox);
            use sim::Process;
            st.nodes[to.0 as usize].on_message(&mut ctx, from, msg);
        }
        for (t, m, _d) in outbox {
            st.pending.push((to, t, m));
        }
        st
    }

    fn check_terminal(&mut self, st: &State) {
        // Collect the realized trace from actor occurrence order.
        let mut occs: Vec<(u64, Literal)> = Vec::new();
        let mut unresolved = false;
        for (&s, &ix) in self.symbols.iter().zip(&self.actor_index) {
            let Node::Actor(a) = &st.nodes[ix] else { unreachable!() };
            match a.occurred {
                Some((l, _, seq)) => occs.push((seq, l)),
                None => unresolved = true,
            }
            let _ = s;
        }
        if unresolved {
            return; // liveness not asserted here; safety only
        }
        occs.sort_by_key(|&(s, _)| s);
        let trace = Trace::new(occs.iter().map(|&(_, l)| l)).expect("one per symbol");
        for d in &self.deps {
            if !satisfies(&trace, d) {
                self.violations.push(format!("trace {trace} violates {d}"));
            }
        }
    }

    fn dfs(&mut self, st: State) {
        if self.paths >= self.max_paths || !self.violations.is_empty() {
            return;
        }
        if st.pending.is_empty() {
            self.paths += 1;
            self.check_terminal(&st);
            return;
        }
        for ix in 0..st.pending.len() {
            let next = self.deliver(st.clone(), ix);
            self.dfs(next);
            if self.paths >= self.max_paths || !self.violations.is_empty() {
                return;
            }
        }
    }
}

fn explore(dep_srcs: &[&str], nsyms: u32, max_paths: u64) -> (u64, Vec<String>) {
    let mut table = SymbolTable::new();
    let deps: Vec<Expr> =
        dep_srcs.iter().map(|s| parse_expr(s, &mut table).expect("parse")).collect();
    let free_events = (0..nsyms)
        .map(|i| FreeEventSpec {
            site: SiteId(i),
            lit: Literal::pos(SymbolId(i)),
            attrs: EventAttrs::controllable(),
            attempt_after: Some(1),
        })
        .collect();
    let spec = WorkflowSpec { table, dependencies: deps.clone(), agents: vec![], free_events };
    let built = build_workflow(&spec, ExecConfig::seeded(0));
    let symbols = built.symbols.clone();
    let actor_index: Vec<usize> =
        symbols.iter().map(|s| built.routing.actor_of[s].0 as usize).collect();
    let nodes: Vec<Node> = built.nodes.into_iter().map(|(_, n)| n).collect();
    // Exploration has no clock, so injection delays are irrelevant here.
    let pending: Vec<(NodeId, NodeId, Msg)> =
        built.injections.into_iter().map(|(f, t, m, _)| (f, t, m)).collect();
    let mut ex =
        Explorer { deps, symbols, actor_index, paths: 0, violations: Vec::new(), max_paths };
    ex.dfs(State { nodes, pending, delivered: 0 });
    (ex.paths, ex.violations)
}

#[test]
fn d_precedes_is_safe_under_all_interleavings() {
    let (paths, violations) = explore(&["~e0 + ~e1 + e0.e1"], 2, 500_000);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(paths > 10, "explored {paths} complete interleavings");
}

#[test]
fn d_arrow_is_safe_under_all_interleavings() {
    let (paths, violations) = explore(&["~e0 + e1"], 2, 500_000);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(paths > 10, "explored {paths}");
}

#[test]
fn mutual_arrows_consensus_is_safe_under_all_interleavings() {
    // Example 11's cycle: both guards are ◇ of each other.
    let (paths, violations) = explore(&["~e0 + e1", "~e1 + e0"], 2, 500_000);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(paths > 10, "explored {paths}");
}

#[test]
fn three_event_pipeline_is_safe_under_bounded_interleavings() {
    let (paths, violations) = explore(&["~e0 + ~e1 + e0.e1", "~e1 + ~e2 + e1.e2"], 3, 200_000);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(paths > 10, "explored {paths}");
}
