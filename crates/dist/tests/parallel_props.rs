//! Property tests of the work-stealing parallel runtime: random specs
//! and fleets always match the deterministic single-queue simulator
//! (occurrence sets, verdicts and final □-views — the tenth audit),
//! results and scheduling metrics are invariant in the worker count,
//! and a forged [`ShardPlan`] independence claim is always caught by
//! the transposition audit with the racy pair correctly attributed.
//!
//! Strategies stick to plain integer ranges so the suite also runs
//! against the offline proptest stub (`scripts/shadow-check.sh`).

use agent::EventAttrs;
use dist::{run_parallel_fleet, ExecConfig, FreeEventSpec, WorkflowSpec};
use event_algebra::{parse_expr, ShardClass, ShardPlan, SymbolTable};
use proptest::prelude::*;
use sim::{ParallelConfig, SiteId};
use std::sync::Arc;
use testkit::conformance::{audit_parallel_conformance, audit_parallel_fleet};
use testkit::workload::{drive, generate, WorkloadConfig};

/// An arrow chain `□e0 → e1 → … → e{n-1}`: every dependency commutes,
/// so the Lemma 5 coupling fallback shards each event alone and the
/// parallel runtime actually runs multi-shard rounds.
fn chain_spec(n: u32) -> WorkflowSpec {
    let mut table = SymbolTable::new();
    let mut deps = Vec::new();
    for i in 0..n.saturating_sub(1) {
        deps.push(parse_expr(&format!("~e{i} + e{}", i + 1), &mut table).unwrap());
    }
    let free_events = (0..n)
        .map(|i| FreeEventSpec {
            site: SiteId(i),
            lit: table.event(&format!("e{i}")),
            attrs: EventAttrs::controllable(),
            attempt_after: Some(1),
        })
        .collect();
    WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
}

/// A precedence pipeline `e0 < e1 < … < e{n-1}`: sequential-composition
/// dependencies do *not* commute, so consecutive events colocate and
/// the fallback plan mixes multi-event classes with real coupling.
fn precedence_spec(n: u32) -> WorkflowSpec {
    let mut table = SymbolTable::new();
    let mut deps = Vec::new();
    for i in 0..n.saturating_sub(1) {
        let j = i + 1;
        deps.push(parse_expr(&format!("~e{i} + ~e{j} + e{i}.e{j}"), &mut table).unwrap());
    }
    let free_events = (0..n)
        .map(|i| FreeEventSpec {
            site: SiteId(i),
            lit: table.event(&format!("e{i}")),
            attrs: EventAttrs::controllable(),
            attempt_after: Some(1),
        })
        .collect();
    WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// ORACLE CONFORMANCE: on random seeds and sizes, both the commuting
    /// chain (singleton shards) and the coupled precedence pipeline
    /// (multi-event classes) pass the tenth audit at several worker
    /// counts — parallel occurrence sets, verdicts and final □-views
    /// equal the single-queue simulator's, and the transposition audits
    /// stay green over the parallel schedule.
    #[test]
    fn random_specs_conform_to_the_oracle(seed in 0u64..12, n in 2u32..7) {
        for spec in [chain_spec(n), precedence_spec(n)] {
            let (failures, run) =
                audit_parallel_conformance(&spec, &ExecConfig::seeded(seed), &[1, 3]);
            prop_assert!(failures.is_empty(), "seed {seed} n {n}: {failures:?}");
            prop_assert!(run.report.all_satisfied(), "seed {seed} n {n}");
        }
    }

    /// FLEET CONFORMANCE: random open-loop fleets (workload-generated
    /// arrivals with think-time overrides) run on the parallel engine
    /// match their isolated single-queue baselines instance by instance.
    #[test]
    fn random_fleets_match_solo_baselines(seed in 0u64..10, n in 2u64..7, workers in 1usize..5) {
        let specs = vec![drive(&precedence_spec(3)), drive(&chain_spec(4))];
        let arrivals = generate(&specs, &WorkloadConfig::new(n, seed));
        let mut config = ExecConfig::seeded(seed);
        config.parallel = Some(ParallelConfig::new(workers));
        let (failures, fleet) = audit_parallel_fleet(&specs, &arrivals, &config);
        prop_assert!(failures.is_empty(), "seed {seed} n {n} workers {workers}: {failures:?}");
        prop_assert_eq!(fleet.instances.len(), arrivals.len());
    }

    /// WORKER-COUNT DETERMINISM: the pool width is an execution detail.
    /// Histories are byte-identical across worker counts, and so is
    /// every *scheduling* metric that describes the round structure
    /// (rounds, shards, round width, per-shard load) — only wall-clock
    /// timing fields may differ between runs.
    #[test]
    fn metrics_are_worker_count_invariant(seed in 0u64..10, workers in 2usize..6) {
        let specs = vec![drive(&chain_spec(5))];
        let arrivals = generate(&specs, &WorkloadConfig::new(4, seed));
        let run = |w: usize| {
            let mut config = ExecConfig::seeded(seed);
            config.parallel = Some(ParallelConfig::new(w));
            run_parallel_fleet(&specs, &arrivals, &config)
        };
        let a = run(1);
        let b = run(workers);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.quiesced, b.quiesced);
        prop_assert_eq!(a.exhausted, b.exhausted);
        for (x, y) in a.instances.iter().zip(&b.instances) {
            prop_assert_eq!(&x.report.occurrences, &y.report.occurrences,
                "instance {:?}", x.instance);
            prop_assert_eq!(x.finished_at, y.finished_at);
        }
        prop_assert_eq!(a.stats.rounds, b.stats.rounds);
        prop_assert_eq!(a.stats.shards, b.stats.shards);
        prop_assert_eq!(a.stats.max_round_width, b.stats.max_round_width);
        prop_assert_eq!(&a.stats.per_shard_delivered, &b.stats.per_shard_delivered);
        prop_assert_eq!(&a.stats.per_shard_last_time, &b.stats.per_shard_last_time);
        prop_assert_eq!(a.stats.duration, b.stats.duration);
        prop_assert_eq!(b.stats.workers, workers.min(b.stats.shards.max(1)));
    }

    /// MUTATION: a shard plan that forges independence of a
    /// non-commuting precedence pair is caught by the tenth audit on
    /// every seed — through the transposition replay over the
    /// shard-keying plan at the latest — and the failure names the pair.
    #[test]
    fn forged_independence_claims_are_always_caught(seed in 0u64..10) {
        let mut table = SymbolTable::new();
        let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
        let e = table.event("e");
        let f = table.event("f");
        let spec = WorkflowSpec {
            table,
            dependencies: vec![d],
            agents: vec![],
            free_events: vec![
                FreeEventSpec {
                    site: SiteId(0),
                    lit: e,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
                FreeEventSpec {
                    site: SiteId(0),
                    lit: f,
                    attrs: EventAttrs::controllable(),
                    attempt_after: Some(1),
                },
            ],
        };
        let pair = event_algebra::shard::canonical(e.symbol(), f.symbol());
        let forged = ShardPlan {
            classes: vec![
                ShardClass { id: 0, events: vec![pair.0], site: None },
                ShardClass { id: 1, events: vec![pair.1], site: None },
            ],
            commuting: vec![pair],
            independent: vec![pair],
            ..ShardPlan::default()
        };
        let mut config = ExecConfig::seeded(seed);
        config.shard_plan = Some(Arc::new(forged));
        let (failures, _) = audit_parallel_conformance(&spec, &config, &[1]);
        prop_assert!(!failures.is_empty(), "seed {seed}: forged plan went undetected");
        prop_assert!(
            failures.iter().any(|fl| fl.contains("schedule race") && fl.contains('e')),
            "seed {seed}: the race must be attributed to the forged pair: {failures:?}"
        );
    }
}
