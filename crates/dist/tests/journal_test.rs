//! The execution journal records a coherent timeline of scheduling
//! decisions.

use agent::EventAttrs;
use dist::{run_workflow, ExecConfig, FreeEventSpec, JournalKind, WorkflowSpec};
use event_algebra::{parse_expr, Literal, SymbolTable};
use sim::SiteId;

#[test]
fn journal_captures_the_d_precedes_story() {
    let mut table = SymbolTable::new();
    let d = parse_expr("~e + ~f + e.f", &mut table).unwrap();
    let e = table.event("e");
    let f = table.event("f");
    let spec = WorkflowSpec {
        table,
        dependencies: vec![d],
        agents: vec![],
        free_events: vec![
            FreeEventSpec {
                site: SiteId(0),
                lit: f,
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            },
            FreeEventSpec {
                site: SiteId(1),
                lit: e,
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            },
        ],
    };
    let mut config = ExecConfig::seeded(5);
    config.journal = true;
    let report = run_workflow(&spec, config);
    assert!(report.all_satisfied(), "{report:#?}");
    assert!(!report.journal.is_empty());

    // Attempts precede occurrences; every occurrence in the trace is
    // journaled; timestamps are non-decreasing.
    let mut last = 0;
    for entry in &report.journal {
        assert!(entry.time >= last, "timeline out of order");
        last = entry.time;
    }
    for &(lit, _, _) in &report.occurrences {
        assert!(
            report.journal.iter().any(|en| en.kind == JournalKind::Occurred(lit)),
            "occurrence {lit} missing from journal"
        );
    }
    let attempt_pos = report
        .journal
        .iter()
        .position(|en| matches!(en.kind, JournalKind::Attempt(l) if l == f))
        .expect("f's attempt journaled");
    let occur_pos = report
        .journal
        .iter()
        .position(|en| en.kind == JournalKind::Occurred(f))
        .expect("f occurred");
    assert!(attempt_pos < occur_pos, "attempt recorded before occurrence");

    // The rendered timeline mentions the named events.
    let rendered = dist::Journal::new();
    for en in &report.journal {
        rendered.record(en.time, en.kind.clone());
    }
    let text = rendered.render(&spec.table);
    assert!(text.contains("OCCURRED  e"), "{text}");
    let _ = Literal::pos(event_algebra::SymbolId(0));
}

#[test]
fn journal_is_empty_when_disabled() {
    let mut table = SymbolTable::new();
    let d = parse_expr("~e + f", &mut table).unwrap();
    let e = table.event("e");
    let spec = WorkflowSpec {
        table,
        dependencies: vec![d],
        agents: vec![],
        free_events: vec![FreeEventSpec {
            site: SiteId(0),
            lit: e,
            attrs: EventAttrs::controllable(),
            attempt_after: Some(1),
        }],
    };
    let report = run_workflow(&spec, ExecConfig::seeded(1));
    assert!(report.journal.is_empty());
}
