//! Protocol-level unit tests: hand-built actors on a minimal network,
//! driving individual messages and asserting the exact protocol behavior
//! (grant/park/announce/promise/hold), independent of the executor's
//! compilation pipeline.

use agent::EventAttrs;
use dist::{DepTracker, InstanceId, Msg, Node, Routing, SymbolActor};
use event_algebra::{Expr, Literal, SymbolId};
use sim::{LatencyModel, Network, NodeId, SimConfig, SiteId};
use std::sync::Arc;
use temporal::Guard;

fn fixed_net(nodes: Vec<(SiteId, Node)>) -> Network<Msg, Node> {
    Network::new(SimConfig { seed: 1, latency: LatencyModel::Fixed(1), fifo_links: true }, nodes)
}

fn actor_node(
    sym: u32,
    pos_guard: Guard,
    attrs: EventAttrs,
    deps: Vec<(usize, DepTracker)>,
    routing: &Arc<Routing>,
) -> Node {
    Node::Actor(SymbolActor::new(
        SymbolId(sym),
        pos_guard,
        Guard::top(),
        attrs,
        EventAttrs::immediate(),
        deps,
        Arc::clone(routing),
    ))
}

fn occurred(net: &Network<Msg, Node>, node: NodeId) -> Option<Literal> {
    match net.node(node) {
        Node::Actor(a) => a.occurred.map(|(l, _, _)| l),
        _ => None,
    }
}

#[test]
fn top_guard_attempt_occurs_and_announces() {
    let e = SymbolId(0);
    let f = SymbolId(1);
    let mut routing = Routing::default();
    routing.actor_of.insert(e, NodeId(0));
    routing.actor_of.insert(f, NodeId(1));
    // f's actor subscribes to e's announcements.
    routing.subscribers_of.insert(e, vec![NodeId(1)]);
    routing.subscribers_of.insert(f, vec![]);
    let routing = Arc::new(routing);
    // f's guard: □e — parked until e's announcement arrives.
    let mut net = fixed_net(vec![
        (SiteId(0), actor_node(0, Guard::top(), EventAttrs::controllable(), vec![], &routing)),
        (
            SiteId(1),
            actor_node(
                1,
                Guard::occurred(Literal::pos(e)),
                EventAttrs::controllable(),
                vec![],
                &routing,
            ),
        ),
    ]);
    // Attempt f first: parks.
    net.inject(NodeId(1), NodeId(1), Msg::Attempt { lit: Literal::pos(f) });
    net.run_to_quiescence(100);
    assert_eq!(occurred(&net, NodeId(1)), None, "f must park on []e");
    // Attempt e: occurs, announcement releases f.
    net.inject(NodeId(0), NodeId(0), Msg::Attempt { lit: Literal::pos(e) });
    net.run_to_quiescence(100);
    assert_eq!(occurred(&net, NodeId(0)), Some(Literal::pos(e)));
    assert_eq!(occurred(&net, NodeId(1)), Some(Literal::pos(f)));
}

#[test]
fn inform_bypasses_guards() {
    let e = SymbolId(0);
    let mut routing = Routing::default();
    routing.actor_of.insert(e, NodeId(0));
    routing.subscribers_of.insert(e, vec![]);
    let routing = Arc::new(routing);
    // Guard 0 — yet an Inform (immediate event, e.g. abort) must pass.
    let mut net = fixed_net(vec![(
        SiteId(0),
        actor_node(0, Guard::bottom(), EventAttrs::immediate(), vec![], &routing),
    )]);
    net.inject(NodeId(0), NodeId(0), Msg::Inform { lit: Literal::pos(e) });
    net.run_to_quiescence(100);
    assert_eq!(occurred(&net, NodeId(0)), Some(Literal::pos(e)));
}

#[test]
fn duplicate_informs_are_idempotent() {
    let e = SymbolId(0);
    let mut routing = Routing::default();
    routing.actor_of.insert(e, NodeId(0));
    routing.subscribers_of.insert(e, vec![]);
    let routing = Arc::new(routing);
    let mut net = fixed_net(vec![(
        SiteId(0),
        actor_node(0, Guard::top(), EventAttrs::immediate(), vec![], &routing),
    )]);
    net.inject(NodeId(0), NodeId(0), Msg::Inform { lit: Literal::pos(e) });
    net.inject(NodeId(0), NodeId(0), Msg::Inform { lit: Literal::neg(e) });
    net.run_to_quiescence(100);
    // First inform wins; the conflicting one is ignored.
    assert_eq!(occurred(&net, NodeId(0)), Some(Literal::pos(e)));
}

#[test]
fn promise_flow_between_two_actors() {
    // e's guard: ◇f. f's guard: ⊤ but f is only attempted later.
    let e = SymbolId(0);
    let f = SymbolId(1);
    let mut routing = Routing::default();
    routing.actor_of.insert(e, NodeId(0));
    routing.actor_of.insert(f, NodeId(1));
    routing.subscribers_of.insert(e, vec![NodeId(1)]);
    routing.subscribers_of.insert(f, vec![NodeId(0)]);
    let routing = Arc::new(routing);
    let mut net = fixed_net(vec![
        (
            SiteId(0),
            actor_node(
                0,
                Guard::eventually(Literal::pos(f)),
                EventAttrs::controllable(),
                vec![],
                &routing,
            ),
        ),
        (SiteId(1), actor_node(1, Guard::top(), EventAttrs::controllable(), vec![], &routing)),
    ]);
    // e attempts; its promise request reaches f's actor, which cannot
    // grant yet (f not attempted, not triggerable): request held pending.
    net.inject(NodeId(0), NodeId(0), Msg::Attempt { lit: Literal::pos(e) });
    net.run_to_quiescence(100);
    assert_eq!(occurred(&net, NodeId(0)), None, "e waits for the promise");
    // f attempts: grantable now; the held request is serviced, e proceeds.
    net.inject(NodeId(1), NodeId(1), Msg::Attempt { lit: Literal::pos(f) });
    net.run_to_quiescence(100);
    assert_eq!(occurred(&net, NodeId(1)), Some(Literal::pos(f)));
    assert_eq!(occurred(&net, NodeId(0)), Some(Literal::pos(e)));
}

#[test]
fn not_yet_agreement_holds_and_releases() {
    // e's guard: ¬f (Example 9.6's G(D<, e)).
    let e = SymbolId(0);
    let f = SymbolId(1);
    let mut routing = Routing::default();
    routing.actor_of.insert(e, NodeId(0));
    routing.actor_of.insert(f, NodeId(1));
    routing.subscribers_of.insert(e, vec![NodeId(1)]);
    routing.subscribers_of.insert(f, vec![NodeId(0)]);
    let routing = Arc::new(routing);
    let mut net = fixed_net(vec![
        (
            SiteId(0),
            actor_node(
                0,
                Guard::not_yet(Literal::pos(f)),
                EventAttrs::controllable(),
                vec![],
                &routing,
            ),
        ),
        (SiteId(1), actor_node(1, Guard::top(), EventAttrs::controllable(), vec![], &routing)),
    ]);
    net.inject(NodeId(0), NodeId(0), Msg::Attempt { lit: Literal::pos(e) });
    net.run_to_quiescence(100);
    // e got the agreement and occurred; f was held during the window.
    assert_eq!(occurred(&net, NodeId(0)), Some(Literal::pos(e)));
    let Node::Actor(fa) = net.node(NodeId(1)) else { unreachable!() };
    assert!(fa.holds.is_empty(), "hold released after e decided");
    assert!(fa.stats.holds_granted >= 1);
    // f can still occur afterwards.
    net.inject(NodeId(1), NodeId(1), Msg::Attempt { lit: Literal::pos(f) });
    net.run_to_quiescence(100);
    assert_eq!(occurred(&net, NodeId(1)), Some(Literal::pos(f)));
}

#[test]
fn rejection_forces_complement_through_its_guard() {
    // e's guard: 0 (can never occur). Attempting e rejects it and the
    // complement occurs (Section 3.3(c)).
    let e = SymbolId(0);
    let mut routing = Routing::default();
    routing.actor_of.insert(e, NodeId(0));
    routing.subscribers_of.insert(e, vec![]);
    let routing = Arc::new(routing);
    let mut net = fixed_net(vec![(
        SiteId(0),
        actor_node(0, Guard::bottom(), EventAttrs::controllable(), vec![], &routing),
    )]);
    net.inject(NodeId(0), NodeId(0), Msg::Attempt { lit: Literal::pos(e) });
    net.run_to_quiescence(100);
    assert_eq!(occurred(&net, NodeId(0)), Some(Literal::neg(e)));
    let Node::Actor(a) = net.node(NodeId(0)) else { unreachable!() };
    assert_eq!(a.stats.rejected, 1);
}

#[test]
fn attempt_after_occurrence_is_idempotent() {
    let e = SymbolId(0);
    let mut routing = Routing::default();
    routing.actor_of.insert(e, NodeId(0));
    routing.subscribers_of.insert(e, vec![]);
    let routing = Arc::new(routing);
    let mut net = fixed_net(vec![(
        SiteId(0),
        actor_node(0, Guard::top(), EventAttrs::controllable(), vec![], &routing),
    )]);
    net.inject(NodeId(0), NodeId(0), Msg::Attempt { lit: Literal::pos(e) });
    net.run_to_quiescence(100);
    let Node::Actor(a) = net.node(NodeId(0)) else { unreachable!() };
    let (l1, t1, s1) = a.occurred.unwrap();
    net.inject(NodeId(0), NodeId(0), Msg::Attempt { lit: Literal::pos(e) });
    net.run_to_quiescence(100);
    let Node::Actor(a) = net.node(NodeId(0)) else { unreachable!() };
    assert_eq!(a.occurred.unwrap(), (l1, t1, s1), "occurrence is immutable");
    assert_eq!(a.stats.attempts, 2);
    assert_eq!(a.stats.granted, 1);
}

#[test]
fn announcements_tolerate_reordering_for_sequence_guards() {
    // Faithful-mode guard ◇(a·b) at actor c: facts □a (seq 10) and □b
    // (seq 20) arriving *out of order* must still discharge correctly.
    let a = Literal::pos(SymbolId(0));
    let b = Literal::pos(SymbolId(1));
    let c = SymbolId(2);
    let mut routing = Routing::default();
    routing.actor_of.insert(c, NodeId(0));
    routing.subscribers_of.insert(c, vec![]);
    let routing = Arc::new(routing);
    let seq_guard = Guard::eventually_expr(&Expr::seq([Expr::lit(a), Expr::lit(b)]));
    let mut net = fixed_net(vec![(
        SiteId(0),
        actor_node(2, seq_guard, EventAttrs::controllable(), vec![], &routing),
    )]);
    net.inject(NodeId(0), NodeId(0), Msg::Attempt { lit: Literal::pos(c) });
    // Deliver b's announcement (occurrence seq 20) before a's (seq 10):
    // naive in-arrival-order residuation would kill the sequence.
    net.inject(
        NodeId(0),
        NodeId(0),
        Msg::Announce { lit: b, at: 20, seq: 20, instance: InstanceId::ROOT },
    );
    net.run_to_quiescence(100);
    assert_eq!(occurred(&net, NodeId(0)), None);
    net.inject(
        NodeId(0),
        NodeId(0),
        Msg::Announce { lit: a, at: 10, seq: 10, instance: InstanceId::ROOT },
    );
    net.run_to_quiescence(100);
    assert_eq!(
        occurred(&net, NodeId(0)),
        Some(Literal::pos(c)),
        "ordered rebuild recovered a-before-b"
    );
}
