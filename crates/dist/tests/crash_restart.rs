//! Crash–restart recovery: a `SymbolActor` killed mid-promise-round must
//! rebuild its state from the durable journal on restart and either
//! complete the round or abort it cleanly — never leave a phantom
//! promise behind.
//!
//! The workload is the Example 11 mutual-promise consensus (`~e + f`,
//! `~f + e`): both events can only fire through a promise exchange
//! between their actors, so a well-timed crash lands inside a round.

use agent::EventAttrs;
use dist::{
    run_workflow_with_faults, ExecConfig, FreeEventSpec, JournalKind, ReliableConfig, WorkflowSpec,
};
use event_algebra::{parse_expr, SymbolTable};
use sim::{FaultPlan, NodeId, SiteId, Termination};
use testkit::conformance::{audit_guards, check_determinism};

/// Two free events on distinct sites whose dependencies force a mutual
/// promise round (`e` fires iff `f` does).
fn mutual_promise_spec() -> WorkflowSpec {
    let mut table = SymbolTable::new();
    let d1 = parse_expr("~e + f", &mut table).unwrap();
    let d2 = parse_expr("~f + e", &mut table).unwrap();
    let e = table.event("e");
    let f = table.event("f");
    WorkflowSpec {
        table,
        dependencies: vec![d1, d2],
        agents: vec![],
        free_events: vec![
            FreeEventSpec {
                site: SiteId(0),
                lit: e,
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            },
            FreeEventSpec {
                site: SiteId(1),
                lit: f,
                attrs: EventAttrs::controllable(),
                attempt_after: Some(1),
            },
        ],
    }
}

fn reliable_config(seed: u64) -> ExecConfig {
    let mut config = ExecConfig::seeded(seed);
    config.reliable = Some(ReliableConfig::default());
    config.journal = true;
    config
}

/// Kill actor 0 (symbol `e`) shortly after startup — inside the first
/// promise round — and restart it. The restarted actor replays its
/// journal, the retransmission layer re-delivers what the crash ate, and
/// the round completes: both events fire, views agree, no broken
/// promises.
#[test]
fn killed_actor_recovers_and_round_completes() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(13).crash(NodeId(0), 2, Some(100));
    let report = run_workflow_with_faults(&spec, reliable_config(21), plan);

    assert_eq!(report.termination, Termination::Quiescent);
    assert!(report.all_satisfied(), "unsatisfied: {:?}", report.satisfied);
    assert_eq!(report.trace.len(), 2, "both events fire: {:?}", report.trace);
    assert!(report.divergence.is_empty(), "views diverged: {:?}", report.divergence);
    assert!(report.broken_promises.is_empty(), "phantom promise: {:?}", report.broken_promises);
    assert!(audit_guards(&spec, &report).is_empty());

    let restarted = report
        .journal
        .iter()
        .any(|entry| matches!(entry.kind, JournalKind::Restarted { node: 0, .. }));
    let rendered: Vec<String> =
        report.journal.iter().map(|entry| entry.kind.display(&spec.table)).collect();
    assert!(restarted, "journal records the restart: {rendered:?}");
}

/// Same crash, but the node never comes back. The surviving actor's
/// promise round must abort cleanly: the run still quiesces (timeouts
/// bounded by the retry cap), no guard fires falsely, and the survivor
/// holds no outstanding promise granted *to* the dead peer that it then
/// acted on — the trace stays empty.
#[test]
fn permanently_crashed_peer_aborts_round_cleanly() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(13).crash(NodeId(0), 2, None);
    let report = run_workflow_with_faults(&spec, reliable_config(21), plan);

    assert_eq!(report.termination, Termination::Quiescent, "retry caps bound the run");
    assert!(report.trace.is_empty(), "no event fires half a consensus: {:?}", report.trace);
    // The abort is *clean*: with neither event occurring, the appended
    // complements satisfy both disjunctive dependencies vacuously.
    assert!(report.all_satisfied(), "complements satisfy the disjunctions");
    assert!(report.divergence.is_empty());
    assert!(audit_guards(&spec, &report).is_empty());
}

/// The crash–restart schedule is part of the deterministic simulation:
/// the same (workflow, plan, seed) triple reproduces the journal byte
/// for byte, including the `Restarted` entry and replay count.
#[test]
fn crash_restart_runs_are_deterministic() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(13).crash(NodeId(0), 2, Some(100));
    let failures = check_determinism(&spec, reliable_config(21), plan);
    assert!(failures.is_empty(), "{failures:?}");
}

/// A crash window that opens *before* the seed injections land: the
/// actor loses its initial `Attempt` entirely and must be revived by the
/// retransmission layer alone. State is re-derived from an empty journal
/// (`replayed == 0` is legal) and the workflow still completes.
#[test]
fn crash_before_first_delivery_still_recovers() {
    let spec = mutual_promise_spec();
    let plan = FaultPlan::new(5).crash(NodeId(0), 0, Some(200));
    let report = run_workflow_with_faults(&spec, reliable_config(33), plan);

    assert_eq!(report.termination, Termination::Quiescent);
    assert!(report.divergence.is_empty());
    assert!(audit_guards(&spec, &report).is_empty());
}

/// A crash window that opens *after* the node's event has occurred: the
/// WAL replay must rebuild the occurrence with its pre-crash time and
/// global sequence number, so the restarted actor's re-announcement
/// deduplicates at every subscriber instead of landing as a second fact
/// at a fabricated sequence (double-residuation / view divergence).
#[test]
fn crash_after_occurrence_preserves_sequence_numbers() {
    let spec = mutual_promise_spec();
    // The crash fires long after the run has quiesced, so the pre-crash
    // execution is identical to one under an empty plan — the rebuilt
    // report must match that baseline occurrence for occurrence.
    let baseline = run_workflow_with_faults(&spec, reliable_config(21), FaultPlan::new(13));
    assert_eq!(baseline.trace.len(), 2, "both events fire: {:?}", baseline.trace);

    let plan = FaultPlan::new(13).crash(NodeId(0), 1_000, Some(1_100));
    let report = run_workflow_with_faults(&spec, reliable_config(21), plan);
    assert_eq!(report.termination, Termination::Quiescent);
    assert!(report.all_satisfied(), "unsatisfied: {:?}", report.satisfied);
    assert!(report.divergence.is_empty(), "views diverged: {:?}", report.divergence);
    assert!(audit_guards(&spec, &report).is_empty());
    assert_eq!(
        report.occurrences, baseline.occurrences,
        "rebuilt occurrence must carry its pre-crash (time, seq)"
    );
}

/// A crash window inside the announcement exchange — after `e` occurred
/// but while its announcement may still be in flight. Whatever the
/// interleaving, recovery must never fabricate a new sequence number for
/// the rebuilt occurrence: views stay convergent across a band of seeds.
#[test]
fn mid_exchange_crash_never_diverges_views() {
    let spec = mutual_promise_spec();
    for seed in 0..16 {
        // t=40 typically lands after the first occurrence (attempts at
        // t=1, one promise round at 10-20 ticks per hop).
        let plan = FaultPlan::new(seed).crash(NodeId(0), 40, Some(300));
        let report = run_workflow_with_faults(&spec, reliable_config(seed), plan);
        assert_eq!(report.termination, Termination::Quiescent, "seed {seed}");
        assert!(report.divergence.is_empty(), "seed {seed}: {:?}", report.divergence);
        assert!(audit_guards(&spec, &report).is_empty(), "seed {seed}");
        assert!(report.all_satisfied(), "seed {seed}: {:?}", report.satisfied);
    }
}
