//! Property tests of the scheduler under injected faults: random
//! workflows stay safe and consistent on lossy links, the confluent
//! workload families converge to the same final fixpoint as their
//! fault-free runs, and every faulty run replays bit for bit.

use agent::EventAttrs;
use dist::{
    run_workflow, run_workflow_with_faults, ExecConfig, FreeEventSpec, ReliableConfig, WorkflowSpec,
};
use event_algebra::{Expr, Literal, SymbolId, SymbolTable};
use proptest::prelude::*;
use sim::{FaultPlan, LatencyModel, SimConfig, SiteId};
use testkit::conformance::{check_determinism, check_run};
use testkit::Gen;

fn spec_with_free_events(deps: Vec<Expr>, syms: &[SymbolId]) -> WorkflowSpec {
    let mut table = SymbolTable::new();
    for (i, _) in syms.iter().enumerate() {
        table.intern(&format!("e{i}"));
    }
    let free_events = syms
        .iter()
        .enumerate()
        .map(|(i, &s)| FreeEventSpec {
            site: SiteId(i as u32),
            lit: Literal::pos(s),
            attrs: EventAttrs::controllable(),
            attempt_after: Some(1),
        })
        .collect();
    WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
}

fn faulty_config(seed: u64) -> ExecConfig {
    let mut config = ExecConfig::seeded(seed);
    config.sim =
        SimConfig { seed, latency: LatencyModel::Uniform { min: 1, max: 30 }, fifo_links: true };
    config.reliable = Some(ReliableConfig::default());
    config
}

/// 20% drop + 20% duplication — the acceptance-level lossy link.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed ^ 0xFA17).drop_rate(0.2).duplicate_rate(0.2)
}

/// The multiset of literals a run settled on, with its satisfaction
/// vector: the □/◇ fixpoint, independent of arrival order.
fn fixpoint(report: &dist::RunReport) -> (Vec<Literal>, Vec<bool>) {
    let mut evs = report.maximal_trace.events().to_vec();
    evs.sort_unstable();
    (evs, report.satisfied.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// SAFETY under faults: on random workflows over ≤5 symbols, a run
    /// across 20% drop + 20% duplication still quiesces, never fires an
    /// event with a false faithful guard, and never lets two actors
    /// disagree on the global occurrence order.
    #[test]
    fn random_workflows_conform_under_lossy_links(seed in 0u64..40, gen_seed in 0u64..10) {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let mut g = Gen::new(gen_seed);
        let deps = g.workflow(&syms, 2, 2);
        let spec = spec_with_free_events(deps.clone(), &syms);
        let run = check_run(&spec, faulty_config(seed), lossy_plan(seed), false);
        prop_assert!(run.is_conformant(), "seed {seed} deps {deps:?}: {:?}", run.failures);
    }

    /// CONVERGENCE: the Klein pipeline is confluent — whatever the link
    /// does, the faulty run reaches the same final fixpoint (same events,
    /// same satisfaction vector) as the fault-free run on the same seed.
    #[test]
    fn klein_pipeline_fixpoint_survives_faults(seed in 0u64..30, n in 3usize..6) {
        let syms: Vec<SymbolId> = (0..n as u32).map(SymbolId).collect();
        let spec = spec_with_free_events(testkit::klein_pipeline(&syms), &syms);
        let clean = run_workflow(&spec, faulty_config(seed));
        let faulty = run_workflow_with_faults(&spec, faulty_config(seed), lossy_plan(seed));
        prop_assert!(clean.all_satisfied(), "clean run must complete");
        prop_assert_eq!(fixpoint(&clean), fixpoint(&faulty), "seed {}", seed);
    }

    /// Same convergence property for the arrow fan-out family.
    #[test]
    fn arrow_fanout_fixpoint_survives_faults(seed in 0u64..30, n in 2usize..5) {
        let syms: Vec<SymbolId> = (0..=n as u32).map(SymbolId).collect();
        let spec = spec_with_free_events(testkit::arrow_fanout(syms[0], &syms[1..]), &syms);
        let clean = run_workflow(&spec, faulty_config(seed));
        let faulty = run_workflow_with_faults(&spec, faulty_config(seed), lossy_plan(seed));
        prop_assert_eq!(fixpoint(&clean), fixpoint(&faulty), "seed {}", seed);
    }

    /// Same convergence property for independent disjoint arrows.
    #[test]
    fn disjoint_arrows_fixpoint_survives_faults(seed in 0u64..30, pairs in 2usize..4) {
        let syms: Vec<SymbolId> = (0..2 * pairs as u32).map(SymbolId).collect();
        let spec = spec_with_free_events(testkit::disjoint_arrows(&syms), &syms);
        let clean = run_workflow(&spec, faulty_config(seed));
        let faulty = run_workflow_with_faults(&spec, faulty_config(seed), lossy_plan(seed));
        prop_assert_eq!(fixpoint(&clean), fixpoint(&faulty), "seed {}", seed);
    }

    /// REPLAY: a faulty run is a pure function of (workflow, plan, seed) —
    /// re-running reproduces the journal byte for byte and the trace,
    /// duration and step count exactly.
    #[test]
    fn faulty_runs_replay_bit_for_bit(seed in 0u64..20, gen_seed in 0u64..6) {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let mut g = Gen::new(gen_seed);
        let deps = g.workflow(&syms, 2, 2);
        let spec = spec_with_free_events(deps, &syms);
        let plan = lossy_plan(seed).jitter(0, 20);
        let failures = check_determinism(&spec, faulty_config(seed), plan);
        prop_assert!(failures.is_empty(), "seed {seed}: {failures:?}");
    }
}
