//! End-to-end property tests of the distributed scheduler: safety on
//! random workflows, empirical liveness on the well-behaved Klein
//! families, determinism per seed, and threaded-executor safety.

use agent::EventAttrs;
use dist::{
    run_workflow, run_workflow_threaded, DepRuntime, ExecConfig, FreeEventSpec, GuardMode,
    WorkflowSpec,
};
use event_algebra::{Expr, Literal, SymbolId, SymbolTable};
use proptest::prelude::*;
use sim::{LatencyModel, SimConfig, SiteId};
use testkit::Gen;

fn spec_with_free_events(deps: Vec<Expr>, syms: &[SymbolId], spread_sites: bool) -> WorkflowSpec {
    let mut table = SymbolTable::new();
    for (i, _) in syms.iter().enumerate() {
        table.intern(&format!("e{i}"));
    }
    let free_events = syms
        .iter()
        .enumerate()
        .map(|(i, &s)| FreeEventSpec {
            site: SiteId(if spread_sites { i as u32 } else { 0 }),
            lit: Literal::pos(s),
            attrs: EventAttrs::controllable(),
            attempt_after: Some(1),
        })
        .collect();
    WorkflowSpec { table, dependencies: deps, agents: vec![], free_events }
}

fn config(seed: u64, mode: GuardMode) -> ExecConfig {
    ExecConfig {
        sim: SimConfig {
            seed,
            latency: LatencyModel::Uniform { min: 1, max: 30 },
            fifo_links: true,
        },
        guard_mode: mode,
        max_steps: 200_000,
        lazy: None,
        journal: false,
        reliable: None,
        dep_runtime: DepRuntime::default(),
        record: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SAFETY: whatever happens (parking, promises, rejections), when a
    /// run resolves every symbol through the protocol, the realized trace
    /// satisfies every dependency — the operational face of Theorem 6.
    /// Runs where some event stays parked are judged on the complemented
    /// maximal extension only if nothing was left undecided.
    #[test]
    fn random_workflows_are_safe(seed in 0u64..500, gen_seed in 0u64..50) {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let mut g = Gen::new(gen_seed);
        let deps = g.workflow(&syms, 2, 2);
        for mode in [GuardMode::Weakened, GuardMode::Faithful] {
            let spec = spec_with_free_events(deps.clone(), &syms, true);
            let report = run_workflow(&spec, config(seed, mode));
            prop_assert!(report.steps < 200_000, "runaway at seed {seed}");
            if report.unresolved.is_empty() && report.broken_promises.is_empty() {
                prop_assert!(
                    report.all_satisfied(),
                    "UNSAFE seed {seed} mode {mode:?}: {report:#?} deps {deps:?}"
                );
            }
        }
    }

    /// Determinism: identical seeds give identical traces.
    #[test]
    fn runs_are_deterministic(seed in 0u64..100, gen_seed in 0u64..20) {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let mut g = Gen::new(gen_seed);
        let deps = g.workflow(&syms, 2, 2);
        let r1 = run_workflow(&spec_with_free_events(deps.clone(), &syms, true), config(seed, GuardMode::Weakened));
        let r2 = run_workflow(&spec_with_free_events(deps, &syms, true), config(seed, GuardMode::Weakened));
        prop_assert_eq!(r1.trace, r2.trace);
        prop_assert_eq!(r1.duration, r2.duration);
        prop_assert_eq!(r1.net.sent_total, r2.net.sent_total);
    }

    /// LIVENESS (empirical) on the Klein pipeline family: all events
    /// resolve and every precedence holds, across seeds.
    #[test]
    fn klein_pipeline_completes(seed in 0u64..200, n in 3usize..6) {
        let syms: Vec<SymbolId> = (0..n as u32).map(SymbolId).collect();
        let deps = testkit::klein_pipeline(&syms);
        let spec = spec_with_free_events(deps, &syms, true);
        let report = run_workflow(&spec, config(seed, GuardMode::Weakened));
        prop_assert!(report.all_satisfied(), "seed {seed}: {report:#?}");
        prop_assert!(report.unresolved.is_empty(), "seed {seed}: {report:#?}");
        // Every event occurred positively, in pipeline order.
        let evs = report.trace.events();
        prop_assert_eq!(evs.len(), n);
        for w in syms.windows(2) {
            let a = evs.iter().position(|&l| l == Literal::pos(w[0])).expect("occurred");
            let b = evs.iter().position(|&l| l == Literal::pos(w[1])).expect("occurred");
            prop_assert!(a < b, "order violated at seed {seed}: {:?}", report.trace);
        }
    }

    /// The arrow fan-out family (one root enabling many leaves via D→)
    /// completes with every leaf occurring after the promises settle.
    #[test]
    fn arrow_fanout_completes(seed in 0u64..100, n in 2usize..5) {
        let syms: Vec<SymbolId> = (0..=n as u32).map(SymbolId).collect();
        let deps = testkit::arrow_fanout(syms[0], &syms[1..]);
        let spec = spec_with_free_events(deps, &syms, true);
        let report = run_workflow(&spec, config(seed, GuardMode::Weakened));
        prop_assert!(report.all_satisfied(), "seed {seed}: {report:#?}");
        prop_assert!(report.unresolved.is_empty(), "seed {seed}: {report:#?}");
    }
}

/// Threaded executor: real concurrency, safety only (schedules are
/// nondeterministic). Uses the Klein pipeline to also check liveness
/// under threads.
#[test]
fn threaded_pipeline_is_safe() {
    for round in 0..5 {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let deps = testkit::klein_pipeline(&syms);
        let spec = spec_with_free_events(deps, &syms, true);
        let report = run_workflow_threaded(&spec, config(round, GuardMode::Weakened));
        assert!(report.all_satisfied(), "round {round}: {report:#?}");
        assert!(report.unresolved.is_empty(), "round {round}: {report:#?}");
    }
}

/// The same random workflows run threaded: safety assertions only.
#[test]
fn threaded_random_workflows_are_safe() {
    for gen_seed in 0..8u64 {
        let syms: Vec<SymbolId> = (0..4).map(SymbolId).collect();
        let mut g = Gen::new(gen_seed);
        let deps = g.workflow(&syms, 2, 2);
        let spec = spec_with_free_events(deps.clone(), &syms, true);
        let report = run_workflow_threaded(&spec, config(gen_seed, GuardMode::Weakened));
        if report.unresolved.is_empty() && report.broken_promises.is_empty() {
            assert!(
                report.all_satisfied(),
                "UNSAFE threaded gen {gen_seed}: {report:#?} deps {deps:?}"
            );
        }
    }
}
