//! Execution journal: a structured, time-stamped record of every
//! scheduling decision an execution makes — occurrences, parks,
//! rejections, announcements, promises, holds and triggers. Invaluable
//! for debugging dependency specifications ("why did my compensation
//! run?") and for the experiment harness's message accounting.

use event_algebra::{Literal, SymbolTable};
use parking_lot::Mutex;
use sim::Time;
use std::fmt;
use std::sync::Arc;

/// One recorded scheduling step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalKind {
    /// An agent's attempt arrived at the actor.
    Attempt(Literal),
    /// The event occurred (by acceptance, triggering, inform, or forced
    /// complement).
    Occurred(Literal),
    /// The attempt parked (guard not yet discharged).
    Parked(Literal),
    /// The attempt was rejected (guard dead) — the complement was forced.
    Rejected(Literal),
    /// The occurrence was announced to `subscribers` actors.
    Announced {
        /// The occurred event.
        lit: Literal,
        /// How many subscribers were notified.
        subscribers: usize,
    },
    /// A promise `◇lit` was requested on behalf of `for_lit`.
    PromiseRequested {
        /// The event whose promise is requested.
        lit: Literal,
        /// The blocked requester.
        for_lit: Literal,
    },
    /// The promise was granted (the event is now obligated).
    PromiseGranted(Literal),
    /// The promise was denied.
    PromiseDenied(Literal),
    /// A not-yet hold was granted on `lit` to `for_lit`'s actor.
    Held {
        /// The held event.
        lit: Literal,
        /// The requester it is held for.
        for_lit: Literal,
    },
    /// The hold on this actor was released.
    Released(Literal),
    /// A triggerable event was proactively triggered (Section 3.3(b)).
    Triggered(Literal),
}

/// A journal entry with its virtual timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Virtual time of the step.
    pub time: Time,
    /// What happened.
    pub kind: JournalKind,
}

/// A shared, append-only journal (one per execution).
#[derive(Debug, Clone, Default)]
pub struct Journal {
    entries: Arc<Mutex<Vec<JournalEntry>>>,
}

impl Journal {
    /// Fresh empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Append an entry.
    pub fn record(&self, time: Time, kind: JournalKind) {
        self.entries.lock().push(JournalEntry { time, kind });
    }

    /// Snapshot the entries in record order.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.entries.lock().clone()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Render a human-readable timeline using the workflow's event names.
    pub fn render(&self, table: &SymbolTable) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for e in self.entries().iter() {
            let _ = writeln!(out, "{:>6}  {}", e.time, e.kind.display(table));
        }
        out
    }
}

impl JournalKind {
    /// Render with event names.
    pub fn display(&self, table: &SymbolTable) -> String {
        let n = |l: &Literal| table.literal_name(*l);
        match self {
            JournalKind::Attempt(l) => format!("attempt   {}", n(l)),
            JournalKind::Occurred(l) => format!("OCCURRED  {}", n(l)),
            JournalKind::Parked(l) => format!("parked    {}", n(l)),
            JournalKind::Rejected(l) => format!("REJECTED  {}", n(l)),
            JournalKind::Announced { lit, subscribers } => {
                format!("announce  {} -> {} subscribers", n(lit), subscribers)
            }
            JournalKind::PromiseRequested { lit, for_lit } => {
                format!("promise?  {} (for {})", n(lit), n(for_lit))
            }
            JournalKind::PromiseGranted(l) => format!("promise+  {}", n(l)),
            JournalKind::PromiseDenied(l) => format!("promise-  {}", n(l)),
            JournalKind::Held { lit, for_lit } => {
                format!("hold      {} (for {})", n(lit), n(for_lit))
            }
            JournalKind::Released(l) => format!("release   {}", n(l)),
            JournalKind::Triggered(l) => format!("TRIGGER   {}", n(l)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::SymbolTable;

    #[test]
    fn journal_records_and_renders() {
        let mut t = SymbolTable::new();
        let e = t.event("commit");
        let j = Journal::new();
        assert!(j.is_empty());
        j.record(3, JournalKind::Attempt(e));
        j.record(5, JournalKind::Occurred(e));
        assert_eq!(j.len(), 2);
        let s = j.render(&t);
        assert!(s.contains("attempt   commit"), "{s}");
        assert!(s.contains("OCCURRED  commit"), "{s}");
    }

    #[test]
    fn clones_share_the_log() {
        let j = Journal::new();
        let j2 = j.clone();
        j2.record(1, JournalKind::Released(Literal::pos(event_algebra::SymbolId(0))));
        assert_eq!(j.len(), 1);
    }
}
