//! Execution journal: a structured, time-stamped record of every
//! scheduling decision an execution makes — occurrences, parks,
//! rejections, announcements, promises, holds and triggers. Invaluable
//! for debugging dependency specifications ("why did my compensation
//! run?") and for the experiment harness's message accounting.

use crate::msg::InstanceId;
use event_algebra::{Literal, SymbolTable};
use parking_lot::Mutex;
use sim::Time;
use std::fmt;
use std::sync::Arc;

/// One recorded scheduling step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalKind {
    /// An agent's attempt arrived at the actor.
    Attempt(Literal),
    /// The event occurred (by acceptance, triggering, inform, or forced
    /// complement).
    Occurred(Literal),
    /// The attempt parked (guard not yet discharged).
    Parked(Literal),
    /// The attempt was rejected (guard dead) — the complement was forced.
    Rejected(Literal),
    /// The occurrence was announced to `subscribers` actors.
    Announced {
        /// The occurred event.
        lit: Literal,
        /// How many subscribers were notified.
        subscribers: usize,
    },
    /// A promise `◇lit` was requested on behalf of `for_lit`.
    PromiseRequested {
        /// The event whose promise is requested.
        lit: Literal,
        /// The blocked requester.
        for_lit: Literal,
    },
    /// The promise was granted (the event is now obligated).
    PromiseGranted(Literal),
    /// The promise was denied.
    PromiseDenied(Literal),
    /// A not-yet hold was granted on `lit` to `for_lit`'s actor.
    Held {
        /// The held event.
        lit: Literal,
        /// The requester it is held for.
        for_lit: Literal,
    },
    /// The hold on this actor was released.
    Released(Literal),
    /// A triggerable event was proactively triggered (Section 3.3(b)).
    Triggered(Literal),
    /// A crashed node came back and rebuilt its state from its
    /// write-ahead log (`replayed` = messages replayed from the log).
    Restarted {
        /// The restarted node.
        node: u32,
        /// How many logged messages were replayed to rebuild state.
        replayed: usize,
    },
    /// A promise round timed out and was aborted for retry (the
    /// anti-wedge path of the `◇` consensus).
    PromiseAborted {
        /// The event whose promise was requested.
        lit: Literal,
        /// The blocked requester the round was run for.
        for_lit: Literal,
    },
}

/// A journal entry with its virtual timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Virtual time of the step.
    pub time: Time,
    /// What happened.
    pub kind: JournalKind,
}

/// A shared, append-only journal (one per execution).
#[derive(Debug, Clone, Default)]
pub struct Journal {
    entries: Arc<Mutex<Vec<JournalEntry>>>,
}

impl Journal {
    /// Fresh empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Append an entry.
    pub fn record(&self, time: Time, kind: JournalKind) {
        self.entries.lock().push(JournalEntry { time, kind });
    }

    /// Snapshot the entries in record order.
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.entries.lock().clone()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Render a human-readable timeline using the workflow's event names.
    pub fn render(&self, table: &SymbolTable) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for e in self.entries().iter() {
            let _ = writeln!(out, "{:>6}  {}", e.time, e.kind.display(table));
        }
        out
    }
}

impl JournalKind {
    /// Render with event names.
    pub fn display(&self, table: &SymbolTable) -> String {
        let n = |l: &Literal| table.literal_name(*l);
        match self {
            JournalKind::Attempt(l) => format!("attempt   {}", n(l)),
            JournalKind::Occurred(l) => format!("OCCURRED  {}", n(l)),
            JournalKind::Parked(l) => format!("parked    {}", n(l)),
            JournalKind::Rejected(l) => format!("REJECTED  {}", n(l)),
            JournalKind::Announced { lit, subscribers } => {
                format!("announce  {} -> {} subscribers", n(lit), subscribers)
            }
            JournalKind::PromiseRequested { lit, for_lit } => {
                format!("promise?  {} (for {})", n(lit), n(for_lit))
            }
            JournalKind::PromiseGranted(l) => format!("promise+  {}", n(l)),
            JournalKind::PromiseDenied(l) => format!("promise-  {}", n(l)),
            JournalKind::Held { lit, for_lit } => {
                format!("hold      {} (for {})", n(lit), n(for_lit))
            }
            JournalKind::Released(l) => format!("release   {}", n(l)),
            JournalKind::Triggered(l) => format!("TRIGGER   {}", n(l)),
            JournalKind::Restarted { node, replayed } => {
                format!("RESTART   node {node} (replayed {replayed} messages)")
            }
            JournalKind::PromiseAborted { lit, for_lit } => {
                format!("promise~  {} (for {}, timed out)", n(lit), n(for_lit))
            }
        }
    }
}

/// One write-ahead-log record: a processed (post-dedup) protocol message
/// together with the delivery context it was processed under. Replaying
/// the message under its *original* virtual time and global delivery
/// sequence is what makes recovery exact — an occurrence decided during
/// replay is rebuilt with its pre-crash `(time, seq)`, so the restarted
/// actor's re-announcement deduplicates at every subscriber instead of
/// registering as a second fact at a fabricated sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// The sending node.
    pub from: sim::NodeId,
    /// The processed payload (transport envelope already stripped).
    pub msg: crate::msg::Msg,
    /// Virtual time the message was originally processed.
    pub at: Time,
    /// Global delivery sequence it was originally processed under.
    pub delivery_seq: u64,
    /// The at-least-once envelope sequence it arrived under, when it came
    /// through the reliability layer — used to rebuild the receive-side
    /// dedup set on restart, so a peer retransmitting a pre-crash
    /// envelope is suppressed rather than re-processed.
    pub env_seq: Option<u64>,
}

/// Durable per-node write-ahead log used by crash–restart recovery: the
/// executor appends every *processed* (post-dedup) protocol message
/// before handing it to the node, and a restarting node replays its log
/// to re-derive exactly the volatile state it had built from those
/// messages. Shared via `Arc`, standing in for each site's stable
/// storage.
///
/// Logs and sequence counters are keyed by `(instance, node)`: one store
/// can back a whole multi-tenant fleet, and a node crashing with several
/// live instances replays each instance's stream under its own original
/// delivery context. Single-instance runs key everything under
/// [`InstanceId::ROOT`].
///
/// [`InstanceId::ROOT`]: crate::msg::InstanceId::ROOT
#[derive(Debug, Clone, Default)]
pub struct NodeStore {
    logs: Arc<Mutex<PerNode<Vec<WalEntry>>>>,
    seqs: Arc<Mutex<PerNode<SeqCounters>>>,
}

/// Per-`(instance, node)` storage slices inside a [`NodeStore`].
type PerNode<T> = std::collections::BTreeMap<(InstanceId, u32), T>;

/// Latest outgoing transport sequence number per receiver.
type SeqCounters = std::collections::BTreeMap<sim::NodeId, u64>;

impl NodeStore {
    /// Fresh empty store.
    pub fn new() -> NodeStore {
        NodeStore::default()
    }

    /// Durably record the latest outgoing transport sequence number
    /// `node` (of `instance`) used towards `to`, so a restarted sender
    /// never reuses one.
    pub fn record_seq(&self, instance: InstanceId, node: u32, to: sim::NodeId, seq: u64) {
        self.seqs.lock().entry((instance, node)).or_default().insert(to, seq);
    }

    /// The per-receiver sequence counters `node` (of `instance`) had
    /// persisted.
    pub fn seqs_of(&self, instance: InstanceId, node: u32) -> SeqCounters {
        self.seqs.lock().get(&(instance, node)).cloned().unwrap_or_default()
    }

    /// Append one processed message to `node`'s log under `instance`.
    pub fn append(&self, instance: InstanceId, node: u32, entry: WalEntry) {
        self.logs.lock().entry((instance, node)).or_default().push(entry);
    }

    /// Snapshot `node`'s log for `instance` in append order.
    pub fn log_of(&self, instance: InstanceId, node: u32) -> Vec<WalEntry> {
        self.logs.lock().get(&(instance, node)).cloned().unwrap_or_default()
    }

    /// Total messages logged across all nodes and instances.
    pub fn total(&self) -> usize {
        self.logs.lock().values().map(Vec::len).sum()
    }

    /// The instances with at least one logged entry.
    pub fn instances(&self) -> Vec<InstanceId> {
        let mut out: Vec<InstanceId> = self.logs.lock().keys().map(|&(i, _)| i).collect();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::SymbolTable;

    #[test]
    fn journal_records_and_renders() {
        let mut t = SymbolTable::new();
        let e = t.event("commit");
        let j = Journal::new();
        assert!(j.is_empty());
        j.record(3, JournalKind::Attempt(e));
        j.record(5, JournalKind::Occurred(e));
        assert_eq!(j.len(), 2);
        let s = j.render(&t);
        assert!(s.contains("attempt   commit"), "{s}");
        assert!(s.contains("OCCURRED  commit"), "{s}");
    }

    #[test]
    fn clones_share_the_log() {
        let j = Journal::new();
        let j2 = j.clone();
        j2.record(1, JournalKind::Released(Literal::pos(event_algebra::SymbolId(0))));
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn recovery_kinds_render() {
        let mut t = SymbolTable::new();
        let e = t.event("pay");
        let j = Journal::new();
        j.record(7, JournalKind::Restarted { node: 3, replayed: 12 });
        j.record(9, JournalKind::PromiseAborted { lit: e, for_lit: e.complement() });
        let s = j.render(&t);
        assert!(s.contains("RESTART   node 3 (replayed 12 messages)"), "{s}");
        assert!(s.contains("promise~  pay"), "{s}");
    }

    #[test]
    fn node_store_logs_per_node_and_shares_clones() {
        use crate::msg::Msg;
        const I: InstanceId = InstanceId::ROOT;
        let entry = |from: u32, msg: Msg, delivery_seq: u64, env_seq: Option<u64>| WalEntry {
            from: sim::NodeId(from),
            msg,
            at: delivery_seq,
            delivery_seq,
            env_seq,
        };
        let store = NodeStore::new();
        let lit = Literal::pos(event_algebra::SymbolId(1));
        store.append(I, 2, entry(0, Msg::Attempt { lit }, 4, None));
        store.clone().append(I, 2, entry(1, Msg::Granted { lit }, 6, Some(3)));
        store.append(I, 5, entry(2, Msg::Kick, 9, None));
        assert_eq!(store.total(), 3);
        let log = store.log_of(I, 2);
        assert_eq!(log.len(), 2, "append order preserved per node");
        assert_eq!(log[0], entry(0, Msg::Attempt { lit }, 4, None));
        assert_eq!(log[1], entry(1, Msg::Granted { lit }, 6, Some(3)));
        assert!(store.log_of(I, 9).is_empty());
        store.record_seq(I, 2, sim::NodeId(1), 7);
        store.record_seq(I, 2, sim::NodeId(1), 9);
        assert_eq!(store.seqs_of(I, 2).get(&sim::NodeId(1)), Some(&9), "latest wins");
        assert!(store.seqs_of(I, 3).is_empty());
    }

    #[test]
    fn node_store_keeps_instances_apart() {
        use crate::msg::Msg;
        let (a, b) = (InstanceId(1), InstanceId(2));
        let store = NodeStore::new();
        let e = WalEntry {
            from: sim::NodeId(0),
            msg: Msg::Kick,
            at: 1,
            delivery_seq: 1,
            env_seq: None,
        };
        store.append(a, 0, e.clone());
        store.append(b, 0, e);
        store.record_seq(a, 0, sim::NodeId(1), 5);
        assert_eq!(store.log_of(a, 0).len(), 1, "same node, separate logs per instance");
        assert_eq!(store.log_of(b, 0).len(), 1);
        assert!(store.seqs_of(b, 0).is_empty(), "seq counters do not bleed across instances");
        assert_eq!(store.instances(), vec![a, b]);
    }
}
