//! The network-side wrapper around a [`TaskAgent`]: drives the task
//! through its script, requests permission for controllable events,
//! reports immediate ones, and services scheduler triggers (Section 2).

use crate::msg::Msg;
use agent::{EventIx, TaskAgent};
use event_algebra::Literal;
use sim::{Ctx, NodeId};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::actor::Routing;

/// One planned step of a task agent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptStep {
    /// Attempt (or, for immediate events, perform) the named event.
    Event(String),
    /// Think time: the task works locally for this many virtual ticks
    /// before its next step.
    Wait(u64),
}

/// What the agent intends to do, in order. Triggers from the scheduler
/// interleave with the script.
#[derive(Debug, Clone, Default)]
pub struct Script {
    /// Steps, executed in order as the skeleton allows.
    pub steps: Vec<ScriptStep>,
}

impl Script {
    /// A script attempting the named events in order.
    pub fn of(steps: &[&str]) -> Script {
        Script { steps: steps.iter().map(|s| ScriptStep::Event((*s).to_owned())).collect() }
    }

    /// A script with explicit steps (events and waits).
    pub fn steps(steps: Vec<ScriptStep>) -> Script {
        Script { steps }
    }

    /// Append an event step.
    pub fn then(mut self, name: &str) -> Script {
        self.steps.push(ScriptStep::Event(name.to_owned()));
        self
    }

    /// Append a think-time step.
    pub fn wait(mut self, ticks: u64) -> Script {
        self.steps.push(ScriptStep::Wait(ticks));
        self
    }
}

/// A resolved script step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Event(EventIx),
    Wait(u64),
}

/// The agent process: a task skeleton plus a driver.
#[derive(Debug, Clone)]
pub struct AgentNode {
    /// The task skeleton.
    pub agent: TaskAgent,
    script: VecDeque<Step>,
    pending_triggers: VecDeque<EventIx>,
    /// An attempt outstanding at the actor (event index).
    waiting: Option<EventIx>,
    /// A wait step in progress (think time; resumes on the timer kick).
    sleeping: bool,
    /// Events that were rejected (their complements occurred).
    pub rejected: Vec<EventIx>,
    /// The literals this agent fired, in order (local view).
    pub fired: Vec<Literal>,
    routing: Arc<Routing>,
}

impl AgentNode {
    /// Wrap `agent` with a script (event names must exist in the agent).
    pub fn new(agent: TaskAgent, script: &Script, routing: Arc<Routing>) -> AgentNode {
        let steps = script
            .steps
            .iter()
            .map(|step| match step {
                ScriptStep::Event(name) => Step::Event(
                    agent
                        .event_named(name)
                        .unwrap_or_else(|| panic!("agent {} has no event {name}", agent.name)),
                ),
                ScriptStep::Wait(t) => Step::Wait(*t),
            })
            .collect();
        AgentNode {
            agent,
            script: steps,
            pending_triggers: VecDeque::new(),
            waiting: None,
            sleeping: false,
            rejected: Vec::new(),
            fired: Vec::new(),
            routing,
        }
    }

    /// Swap the routing tables — used by the fleet engines when cloning
    /// a prototype node whose [`NodeId`]s must be offset per instance.
    pub(crate) fn set_routing(&mut self, routing: Arc<Routing>) {
        self.routing = routing;
    }

    fn actor_for(&self, ev: EventIx) -> NodeId {
        let lit = self.agent.literal_of(ev);
        self.routing.actor_of[&lit.symbol()]
    }

    /// Handle a message from the scheduler (or the initial kick / a
    /// think-time wake-up).
    pub fn handle(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        match msg {
            Msg::Kick => {
                self.sleeping = false;
            }
            Msg::Granted { lit } => {
                // Accept the verdict only if it matches the outstanding
                // attempt: after retransmissions or an actor restart, a
                // duplicate or stale verdict can arrive when we are not
                // (or no longer) waiting on that event — firing the wrong
                // transition on it would corrupt the task state machine.
                if self.waiting.map(|ev| self.agent.literal_of(ev)) == Some(lit) {
                    let ev = self.waiting.take().expect("checked above");
                    self.fire(ctx, ev);
                }
            }
            Msg::Rejected { lit } => {
                if self.waiting.map(|ev| self.agent.literal_of(ev)) == Some(lit) {
                    let ev = self.waiting.take().expect("checked above");
                    self.rejected.push(ev);
                }
            }
            Msg::Trigger { lit } => {
                if let Some(ev) = self.agent.events.iter().position(|e| e.literal == lit) {
                    if !self.pending_triggers.contains(&ev) {
                        self.pending_triggers.push_back(ev);
                    }
                }
            }
            other => panic!("agent {} received {other:?}", self.agent.name),
        }
        self.advance(ctx);
    }

    /// Fire a granted/triggered event locally and notify of any events
    /// that have become unreachable (their complements occurred).
    fn fire(&mut self, ctx: &mut Ctx<'_, Msg>, ev: EventIx) {
        let before = self.reachable_events();
        self.agent.fire(ev).expect("scheduler granted an illegal transition");
        self.fired.push(self.agent.literal_of(ev));
        // Complements: events reachable before but not after are now
        // impossible in this task — their complements occur.
        let after = self.reachable_events();
        for e in before {
            if e != ev && !after.contains(&e) && !self.fired.contains(&self.agent.literal_of(e)) {
                let lit = self.agent.literal_of(e);
                ctx.send(self.actor_for(e), Msg::Inform { lit: lit.complement() });
            }
        }
    }

    /// Events reachable (fireable eventually) from the current state.
    fn reachable_events(&self) -> Vec<EventIx> {
        let mut reach_states = vec![false; self.agent.states.len()];
        let mut stack = vec![self.agent.current];
        reach_states[self.agent.current] = true;
        while let Some(s) = stack.pop() {
            for &(from, _, to) in &self.agent.transitions {
                if from == s && !reach_states[to] {
                    reach_states[to] = true;
                    stack.push(to);
                }
            }
        }
        let mut evs: Vec<EventIx> = self
            .agent
            .transitions
            .iter()
            .filter(|&&(from, _, _)| reach_states[from])
            .map(|&(_, e, _)| e)
            .collect();
        evs.sort_unstable();
        evs.dedup();
        evs
    }

    /// Take the next action: service a trigger if possible, else the next
    /// script step.
    fn advance(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.waiting.is_some() || self.sleeping {
            return;
        }
        // Triggers first (the scheduler's proactive requests).
        if let Some(pos) = self.pending_triggers.iter().position(|&ev| self.agent.can_fire(ev)) {
            let ev = self.pending_triggers.remove(pos).expect("index valid");
            self.start_attempt(ctx, ev);
            return;
        }
        // Script steps: skip steps that can no longer fire.
        while let Some(&step) = self.script.front() {
            match step {
                Step::Wait(ticks) => {
                    self.script.pop_front();
                    self.sleeping = true;
                    // Wake ourselves after the think time.
                    ctx.send_after(ctx.self_id, Msg::Kick, ticks);
                    return;
                }
                Step::Event(ev) => {
                    if self.agent.can_fire(ev) {
                        self.script.pop_front();
                        self.start_attempt(ctx, ev);
                        return;
                    }
                    // Unfireable right now: if it can never fire again,
                    // drop it; otherwise wait (a trigger may move the
                    // state machine).
                    if self.reachable_events().contains(&ev) {
                        return;
                    }
                    self.script.pop_front();
                }
            }
        }
    }

    /// Called by the executor after a crashed agent's state has been
    /// rebuilt by replaying its write-ahead log. An outstanding attempt
    /// is re-sent (the actor's attempt handling is idempotent, and if it
    /// already decided, it simply re-sends the verdict). A think-time nap
    /// is cut short — its wake-up timer died with the node.
    pub fn resume(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Some(ev) = self.waiting {
            let lit = self.agent.literal_of(ev);
            ctx.send(self.actor_for(ev), Msg::Attempt { lit });
            return;
        }
        self.sleeping = false;
        self.advance(ctx);
    }

    fn start_attempt(&mut self, ctx: &mut Ctx<'_, Msg>, ev: EventIx) {
        let lit = self.agent.literal_of(ev);
        let attrs = self.agent.events[ev].attrs;
        if attrs.controllable {
            self.waiting = Some(ev);
            ctx.send(self.actor_for(ev), Msg::Attempt { lit });
        } else {
            // Immediate: fire locally and inform.
            self.fire(ctx, ev);
            ctx.send(self.actor_for(ev), Msg::Inform { lit });
            self.advance(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agent::library::rda_transaction;
    use event_algebra::SymbolTable;

    #[test]
    fn script_resolution_panics_on_unknown_event() {
        let mut t = SymbolTable::new();
        let a = rda_transaction("x", &mut t);
        let routing = Arc::new(Routing::default());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            AgentNode::new(a, &Script::of(&["frobnicate"]), routing)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn script_of_builds_steps() {
        let s = Script::of(&["start", "commit"]);
        assert_eq!(
            s.steps,
            vec![ScriptStep::Event("start".into()), ScriptStep::Event("commit".into())]
        );
        let s2 = Script::of(&["start"]).wait(10).then("commit");
        assert_eq!(s2.steps.len(), 3);
        assert_eq!(s2.steps[1], ScriptStep::Wait(10));
    }
    // Behavior under scheduling is covered by the executor tests.
}
