//! The wire protocol of the distributed event-centric scheduler
//! (Sections 2 and 4.3).
//!
//! Three kinds of traffic flow through the network:
//!
//! 1. **agent ↔ actor** — permission requests for controllable events,
//!    notifications of immediate events, grants/rejections, and proactive
//!    triggers;
//! 2. **actor → actor** — `□e` occurrence announcements (Section 4.3);
//! 3. **actor ↔ actor consensus** — `◇e` promises (Example 11) and the
//!    not-yet agreement used for `¬e` guards.

use event_algebra::Literal;
use sim::Time;

/// A message of the scheduling protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Executor → agent: start driving your script (carries no literal).
    Kick,
    /// Ticker → actor: lazy-mode periodic re-evaluation (the ablation of
    /// experiment C3; carries no literal).
    Tick,

    // ----- agent → actor -----
    /// A task agent requests permission for a controllable event.
    Attempt {
        /// The event being attempted.
        lit: Literal,
    },
    /// A task agent reports an immediate (nonrejectable, nondelayable)
    /// event such as `abort`: the scheduler has no choice but to accept.
    Inform {
        /// The event that happened.
        lit: Literal,
    },

    // ----- actor → agent -----
    /// Permission granted: the event has (logically) occurred; the agent
    /// fires the transition.
    Granted {
        /// The attempted event.
        lit: Literal,
    },
    /// Permission permanently denied (the guard reduced to `0`).
    Rejected {
        /// The attempted event.
        lit: Literal,
    },
    /// The scheduler proactively causes a triggerable event
    /// (Section 3.3(b)).
    Trigger {
        /// The event to perform.
        lit: Literal,
    },

    // ----- actor → actor -----
    /// `□e`: the event occurred (with its occurrence timestamp, so
    /// receivers can apply facts in temporal order — the "consistent view
    /// of the temporal order of events" of Section 6).
    Announce {
        /// The occurred event.
        lit: Literal,
        /// Virtual time of the occurrence.
        at: Time,
        /// Global occurrence sequence number.
        seq: u64,
    },
    /// Request: "promise `◇lit` so that `for_lit` may proceed"
    /// (Example 11's consensus).
    PromiseRequest {
        /// The event whose promise is requested.
        lit: Literal,
        /// The requester's event (the granter may assume `◇for_lit`).
        for_lit: Literal,
    },
    /// Grant of `◇lit`: the granter's event is now obligated to occur.
    PromiseGrant {
        /// The promised event.
        lit: Literal,
    },
    /// The promise cannot be given (the event is dead or cannot be
    /// guaranteed).
    PromiseDeny {
        /// The event whose promise was requested.
        lit: Literal,
    },
    /// Query: "has `lit`'s symbol resolved? if not, hold it until I
    /// decide" — the agreement protocol behind `¬f` guards.
    NotYetQuery {
        /// The event asked about.
        lit: Literal,
        /// The requester's event.
        for_lit: Literal,
    },
    /// `lit` has not occurred; its actor holds it pending `Release`.
    NotYetGrant {
        /// The queried event.
        lit: Literal,
    },
    /// The query cannot be granted now (the event occurred, or priority
    /// says the requester must yield). The requester re-queries when new
    /// facts arrive.
    NotYetDeny {
        /// The queried event.
        lit: Literal,
        /// `true` if the denial is because the event already occurred.
        occurred: bool,
    },
    /// The requester of a hold has decided (occurred, died, or gave up):
    /// the held event may proceed.
    Release {
        /// The previously held event.
        lit: Literal,
    },
}

impl Msg {
    /// The literal this message concerns (`None` for [`Msg::Kick`]).
    pub fn literal(&self) -> Option<Literal> {
        match self {
            Msg::Kick | Msg::Tick => None,
            Msg::Attempt { lit }
            | Msg::Inform { lit }
            | Msg::Granted { lit }
            | Msg::Rejected { lit }
            | Msg::Trigger { lit }
            | Msg::Announce { lit, .. }
            | Msg::PromiseRequest { lit, .. }
            | Msg::PromiseGrant { lit }
            | Msg::PromiseDeny { lit }
            | Msg::NotYetQuery { lit, .. }
            | Msg::NotYetGrant { lit }
            | Msg::NotYetDeny { lit, .. }
            | Msg::Release { lit } => Some(*lit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{Literal, SymbolId};

    #[test]
    fn literal_extraction_covers_all_variants() {
        let l = Literal::pos(SymbolId(3));
        let msgs = [
            Msg::Attempt { lit: l },
            Msg::Inform { lit: l },
            Msg::Granted { lit: l },
            Msg::Rejected { lit: l },
            Msg::Trigger { lit: l },
            Msg::Announce { lit: l, at: 5, seq: 1 },
            Msg::PromiseRequest { lit: l, for_lit: l.complement() },
            Msg::PromiseGrant { lit: l },
            Msg::PromiseDeny { lit: l },
            Msg::NotYetQuery { lit: l, for_lit: l.complement() },
            Msg::NotYetGrant { lit: l },
            Msg::NotYetDeny { lit: l, occurred: false },
            Msg::Release { lit: l },
        ];
        for m in msgs {
            assert_eq!(m.literal(), Some(l), "{m:?}");
        }
        assert_eq!(Msg::Kick.literal(), None);
    }
}
