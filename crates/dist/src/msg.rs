//! The wire protocol of the distributed event-centric scheduler
//! (Sections 2 and 4.3).
//!
//! Three kinds of traffic flow through the network:
//!
//! 1. **agent ↔ actor** — permission requests for controllable events,
//!    notifications of immediate events, grants/rejections, and proactive
//!    triggers;
//! 2. **actor → actor** — `□e` occurrence announcements (Section 4.3);
//! 3. **actor ↔ actor consensus** — `◇e` promises (Example 11) and the
//!    not-yet agreement used for `¬e` guards.

use event_algebra::Literal;
use sim::{NodeId, Time};

/// Identifies one live workflow instance in a multi-tenant run.
///
/// Every fact-bearing wire message (occurrence announcements and
/// at-least-once envelopes) carries the instance it belongs to, and
/// receivers ignore foreign-instance traffic — the addressing layer that
/// keeps co-resident instances from leaking facts into each other.
/// Single-instance runs use [`InstanceId::ROOT`] everywhere, which is the
/// `Default` and keeps their behavior byte-identical to before instances
/// existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstanceId(pub u64);

impl InstanceId {
    /// The implicit instance of every single-instance run.
    pub const ROOT: InstanceId = InstanceId(0);
}

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A message of the scheduling protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Executor → agent: start driving your script (carries no literal).
    Kick,
    /// Ticker → actor: lazy-mode periodic re-evaluation (the ablation of
    /// experiment C3; carries no literal).
    Tick,

    // ----- agent → actor -----
    /// A task agent requests permission for a controllable event.
    Attempt {
        /// The event being attempted.
        lit: Literal,
    },
    /// A task agent reports an immediate (nonrejectable, nondelayable)
    /// event such as `abort`: the scheduler has no choice but to accept.
    Inform {
        /// The event that happened.
        lit: Literal,
    },

    // ----- actor → agent -----
    /// Permission granted: the event has (logically) occurred; the agent
    /// fires the transition.
    Granted {
        /// The attempted event.
        lit: Literal,
    },
    /// Permission permanently denied (the guard reduced to `0`).
    Rejected {
        /// The attempted event.
        lit: Literal,
    },
    /// The scheduler proactively causes a triggerable event
    /// (Section 3.3(b)).
    Trigger {
        /// The event to perform.
        lit: Literal,
    },

    // ----- actor → actor -----
    /// `□e`: the event occurred (with its occurrence timestamp, so
    /// receivers can apply facts in temporal order — the "consistent view
    /// of the temporal order of events" of Section 6).
    Announce {
        /// The occurred event.
        lit: Literal,
        /// Virtual time of the occurrence.
        at: Time,
        /// Global occurrence sequence number.
        seq: u64,
        /// The workflow instance the occurrence belongs to; receivers
        /// drop announcements from foreign instances.
        instance: InstanceId,
    },
    /// Request: "promise `◇lit` so that `for_lit` may proceed"
    /// (Example 11's consensus).
    PromiseRequest {
        /// The event whose promise is requested.
        lit: Literal,
        /// The requester's event (the granter may assume `◇for_lit`).
        for_lit: Literal,
    },
    /// Grant of `◇lit`: the granter's event is now obligated to occur.
    PromiseGrant {
        /// The promised event.
        lit: Literal,
    },
    /// The promise cannot be given (the event is dead or cannot be
    /// guaranteed).
    PromiseDeny {
        /// The event whose promise was requested.
        lit: Literal,
    },
    /// Query: "has `lit`'s symbol resolved? if not, hold it until I
    /// decide" — the agreement protocol behind `¬f` guards.
    NotYetQuery {
        /// The event asked about.
        lit: Literal,
        /// The requester's event.
        for_lit: Literal,
    },
    /// `lit` has not occurred; its actor holds it pending `Release`.
    NotYetGrant {
        /// The queried event.
        lit: Literal,
    },
    /// The query cannot be granted now (the event occurred, or priority
    /// says the requester must yield). The requester re-queries when new
    /// facts arrive.
    NotYetDeny {
        /// The queried event.
        lit: Literal,
        /// `true` if the denial is because the event already occurred.
        occurred: bool,
    },
    /// The requester of a hold has decided (occurred, died, or gave up):
    /// the held event may proceed.
    Release {
        /// The previously held event.
        lit: Literal,
    },

    // ----- reliability layer (at-least-once delivery) -----
    /// A protocol message wrapped in a sender-assigned per-link sequence
    /// number. The receiver acks every copy and delivers the payload at
    /// most once (dedup by `(sender, seq)`), so retransmission gives
    /// at-least-once transport with exactly-once *processing*.
    Seq {
        /// Sender-assigned sequence number, monotone per (sender,
        /// receiver) pair.
        seq: u64,
        /// The sending node's workflow instance: a receiver belonging to
        /// a different instance drops the envelope without acking it.
        instance: InstanceId,
        /// The wrapped protocol message.
        inner: Box<Msg>,
    },
    /// Acknowledges receipt of the envelope with this sequence number
    /// (acks themselves are fire-and-forget: a lost ack just causes a
    /// retransmission, which is then deduplicated).
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// Self-addressed retransmission timer: if envelope `seq` to `to` is
    /// still unacked when this fires, resend it and re-arm with backoff.
    RetryTimer {
        /// The receiver of the guarded envelope.
        to: NodeId,
        /// The guarded sequence number.
        seq: u64,
    },
    /// Self-addressed promise-round timer: if the `◇lit` request made on
    /// behalf of `for_lit` is still unanswered when this fires, the round
    /// is aborted and re-entered, so mutually-`◇` consensus cannot wedge
    /// on a lost or long-delayed promise.
    PromiseExpire {
        /// The event whose promise was requested.
        lit: Literal,
        /// The requester's event.
        for_lit: Literal,
    },
}

impl Msg {
    /// A short static label naming this message's kind, used by the
    /// flight recorder to tag network spans. A [`Msg::Seq`] envelope
    /// reports its payload's kind (the envelope lifecycle has its own
    /// `env_*` span family).
    pub fn kind_label(&self) -> &'static str {
        match self {
            Msg::Kick => "kick",
            Msg::Tick => "tick",
            Msg::Attempt { .. } => "attempt",
            Msg::Inform { .. } => "inform",
            Msg::Granted { .. } => "granted",
            Msg::Rejected { .. } => "rejected",
            Msg::Trigger { .. } => "trigger",
            Msg::Announce { .. } => "announce",
            Msg::PromiseRequest { .. } => "promise_req",
            Msg::PromiseGrant { .. } => "promise_grant",
            Msg::PromiseDeny { .. } => "promise_deny",
            Msg::NotYetQuery { .. } => "notyet_query",
            Msg::NotYetGrant { .. } => "notyet_grant",
            Msg::NotYetDeny { .. } => "notyet_deny",
            Msg::Release { .. } => "release",
            Msg::Seq { inner, .. } => inner.kind_label(),
            Msg::Ack { .. } => "ack",
            Msg::RetryTimer { .. } => "retry_timer",
            Msg::PromiseExpire { .. } => "promise_expire",
        }
    }

    /// The literal this message concerns (`None` for [`Msg::Kick`] and
    /// the transport-level variants; a [`Msg::Seq`] envelope defers to
    /// its payload).
    pub fn literal(&self) -> Option<Literal> {
        match self {
            Msg::Kick | Msg::Tick | Msg::Ack { .. } | Msg::RetryTimer { .. } => None,
            Msg::Seq { inner, .. } => inner.literal(),
            Msg::PromiseExpire { lit, .. } => Some(*lit),
            Msg::Attempt { lit }
            | Msg::Inform { lit }
            | Msg::Granted { lit }
            | Msg::Rejected { lit }
            | Msg::Trigger { lit }
            | Msg::Announce { lit, .. }
            | Msg::PromiseRequest { lit, .. }
            | Msg::PromiseGrant { lit }
            | Msg::PromiseDeny { lit }
            | Msg::NotYetQuery { lit, .. }
            | Msg::NotYetGrant { lit }
            | Msg::NotYetDeny { lit, .. }
            | Msg::Release { lit } => Some(*lit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use event_algebra::{Literal, SymbolId};

    #[test]
    fn literal_extraction_covers_all_variants() {
        let l = Literal::pos(SymbolId(3));
        let msgs = [
            Msg::Attempt { lit: l },
            Msg::Inform { lit: l },
            Msg::Granted { lit: l },
            Msg::Rejected { lit: l },
            Msg::Trigger { lit: l },
            Msg::Announce { lit: l, at: 5, seq: 1, instance: InstanceId::ROOT },
            Msg::PromiseRequest { lit: l, for_lit: l.complement() },
            Msg::PromiseGrant { lit: l },
            Msg::PromiseDeny { lit: l },
            Msg::NotYetQuery { lit: l, for_lit: l.complement() },
            Msg::NotYetGrant { lit: l },
            Msg::NotYetDeny { lit: l, occurred: false },
            Msg::Release { lit: l },
            Msg::Seq {
                seq: 9,
                instance: InstanceId::ROOT,
                inner: Box::new(Msg::Announce {
                    lit: l,
                    at: 5,
                    seq: 1,
                    instance: InstanceId::ROOT,
                }),
            },
            Msg::PromiseExpire { lit: l, for_lit: l.complement() },
        ];
        for m in msgs {
            assert_eq!(m.literal(), Some(l), "{m:?}");
        }
        assert_eq!(Msg::Kick.literal(), None);
        assert_eq!(Msg::Tick.literal(), None);
        assert_eq!(Msg::Ack { seq: 1 }.literal(), None);
        assert_eq!(Msg::RetryTimer { to: NodeId(2), seq: 1 }.literal(), None);
        assert_eq!(
            Msg::Seq { seq: 1, instance: InstanceId::ROOT, inner: Box::new(Msg::Kick) }.literal(),
            None,
            "envelope defers to payload"
        );
    }
}
