//! Parametrized events and arbitrary tasks (Section 5).
//!
//! Event atoms carry a tuple of parameters (`e[x]`, `b2[y]`); variables
//! are implicitly universally quantified. Two mechanisms from the paper:
//!
//! - **Intra-workflow parameters** (Example 12): a workflow template whose
//!   variables are all bound when the key event occurs — instantiation
//!   yields an ordinary ground workflow, scheduled as in Section 4.
//! - **Inter-workflow / arbitrary tasks** (Examples 13–14): variables bind
//!   lazily as task iterations mint fresh event *tokens* (per-agent
//!   counters); ground dependencies are instantiated per binding
//!   combination, and guards grow, shrink, and *resurrect* as instances
//!   discharge ([`ParamGuard`]).

use event_algebra::{Expr, Literal, SymbolId, SymbolTable, Trace};
use guard::GuardSynth;
use std::collections::{BTreeMap, BTreeSet};
use temporal::Guard;

pub use event_algebra::{Binding, PEvent, PExpr, PLit, Term};

/// Example 13's mutual-exclusion dependency (one direction): if `t1`
/// enters its critical section before `t2` does, `t1` exits before `t2`
/// enters. `b_` names the enter events, `e_` the exits; `x`/`y` are the
/// iteration variables.
pub fn mutex_dependency(b2: &str, b1: &str, e1: &str) -> PExpr {
    let x = [Term::Var("x".into())];
    let y = [Term::Var("y".into())];
    PExpr::Or(vec![
        PExpr::Seq(vec![PExpr::lit(b2, &y), PExpr::lit(b1, &x)]),
        PExpr::comp(e1, &x),
        PExpr::comp(b2, &y),
        PExpr::Seq(vec![PExpr::lit(e1, &x), PExpr::lit(b2, &y)]),
    ])
}

/// Both directions of Example 13 with *consistent* variable roles: `x`
/// always indexes task 1's iterations (`b1`/`e1`) and `y` task 2's
/// (`b2`/`e2`), in both templates.
///
/// (Calling [`mutex_dependency`] twice with the roles swapped silently
/// inverts which variable indexes which task, so cross-iteration
/// instances `(x=2, y=1)` of the second direction are never instantiated
/// — a bug our property tests caught by finding an interleaving where a
/// later iteration slipped into the other task's critical section.)
pub fn mutex_pair(b1: &str, e1: &str, b2: &str, e2: &str) -> (PExpr, PExpr) {
    let x = [Term::Var("x".into())];
    let y = [Term::Var("y".into())];
    let d12 = PExpr::Or(vec![
        PExpr::Seq(vec![PExpr::lit(b2, &y), PExpr::lit(b1, &x)]),
        PExpr::comp(e1, &x),
        PExpr::comp(b2, &y),
        PExpr::Seq(vec![PExpr::lit(e1, &x), PExpr::lit(b2, &y)]),
    ]);
    let d21 = PExpr::Or(vec![
        PExpr::Seq(vec![PExpr::lit(b1, &x), PExpr::lit(b2, &y)]),
        PExpr::comp(e2, &y),
        PExpr::comp(b1, &x),
        PExpr::Seq(vec![PExpr::lit(e2, &y), PExpr::lit(b1, &x)]),
    ]);
    (d12, d21)
}

/// Per-agent event counters: mint fresh tokens so event *types* in
/// looping tasks become distinct event *instances* (Section 5.2 — "each
/// agent can maintain a counter for each event and increment it whenever
/// it attempts an event").
#[derive(Debug, Default)]
pub struct TokenCounter {
    counts: BTreeMap<String, u64>,
}

impl TokenCounter {
    /// New counter set.
    pub fn new() -> TokenCounter {
        TokenCounter::default()
    }

    /// Mint the next token for `event_type` (1-based).
    pub fn mint(&mut self, event_type: &str) -> u64 {
        let c = self.counts.entry(event_type.to_owned()).or_insert(0);
        *c += 1;
        *c
    }

    /// Tokens minted so far for `event_type`.
    pub fn count(&self, event_type: &str) -> u64 {
        self.counts.get(event_type).copied().unwrap_or(0)
    }
}

/// The outcome of attempting a ground event at the dynamic scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The event occurred.
    Granted,
    /// The event parked (its guard is not yet discharged).
    Parked,
    /// The event can never occur (guard dead).
    Rejected,
}

/// A scheduler for parametrized dependencies over arbitrary (looping)
/// tasks: as variables acquire new values, dependency templates are
/// instantiated on demand, each ground dependency's *residual* is
/// advanced by occurrences, and acceptance follows Section 3.4: an event
/// is accepted iff every residual stays satisfiable in a future
/// consistent with the *inevitable* events (events a task guarantees to
/// perform, e.g. the exit of an entered critical section).
#[derive(Debug)]
pub struct DynamicScheduler {
    /// Ground symbol table (instances like `b1[3]`).
    pub table: SymbolTable,
    templates: Vec<PExpr>,
    var_values: BTreeMap<String, BTreeSet<u64>>,
    instantiated: BTreeSet<Vec<(String, u64)>>,
    /// Ground dependencies instantiated so far.
    pub ground_deps: Vec<Expr>,
    /// Current residual of each ground dependency.
    pub residuals: Vec<Expr>,
    occurred: Vec<Literal>,
    resolved: BTreeSet<SymbolId>,
    parked: BTreeSet<Literal>,
    inevitable: BTreeSet<Literal>,
    synth: GuardSynth,
}

impl DynamicScheduler {
    /// Scheduler over the given dependency templates.
    pub fn new(templates: Vec<PExpr>) -> DynamicScheduler {
        DynamicScheduler {
            table: SymbolTable::new(),
            templates,
            var_values: BTreeMap::new(),
            instantiated: BTreeSet::new(),
            ground_deps: Vec::new(),
            residuals: Vec::new(),
            occurred: Vec::new(),
            resolved: BTreeSet::new(),
            parked: BTreeSet::new(),
            inevitable: BTreeSet::new(),
            synth: GuardSynth::new(),
        }
    }

    /// Bind a new value for `var` (a fresh task iteration), instantiating
    /// every template for every now-complete binding combination.
    pub fn bind(&mut self, var: &str, value: u64) {
        self.var_values.entry(var.to_owned()).or_default().insert(value);
        let templates = self.templates.clone();
        for t in &templates {
            let vars: Vec<String> = t.vars().into_iter().collect();
            if !vars.iter().any(|v| v == var) {
                continue;
            }
            if !vars.iter().all(|v| self.var_values.contains_key(v)) {
                continue;
            }
            self.enumerate_bindings(t, &vars, var, value);
        }
    }

    fn enumerate_bindings(&mut self, t: &PExpr, vars: &[String], fixed: &str, value: u64) {
        // Cartesian product over known values, with `fixed` pinned to the
        // new value (older combinations were instantiated earlier).
        let mut partial: Binding = BTreeMap::new();
        partial.insert(fixed.to_owned(), value);
        let free: Vec<&String> = vars.iter().filter(|v| v.as_str() != fixed).collect();
        self.product(t, &free, 0, &mut partial);
    }

    fn product(&mut self, t: &PExpr, free: &[&String], ix: usize, partial: &mut Binding) {
        if ix == free.len() {
            let key: Vec<(String, u64)> = {
                let mut k: Vec<(String, u64)> =
                    partial.iter().map(|(a, b)| (a.clone(), *b)).collect();
                k.push(("__tmpl".into(), self.template_index(t)));
                k
            };
            if !self.instantiated.insert(key) {
                return;
            }
            let ground = t.instantiate(partial, &mut self.table);
            self.add_ground_dep(ground);
            return;
        }
        let values: Vec<u64> = self
            .var_values
            .get(free[ix].as_str())
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for v in values {
            partial.insert(free[ix].clone(), v);
            self.product(t, free, ix + 1, partial);
        }
        partial.remove(free[ix].as_str());
    }

    fn template_index(&self, t: &PExpr) -> u64 {
        self.templates.iter().position(|x| x == t).unwrap_or(0) as u64
    }

    fn add_ground_dep(&mut self, dep: Expr) {
        // The new dependency's residual starts at the dependency itself,
        // advanced by all past occurrences in order (the obligation
        // "grows" — Example 14's dynamics at the dependency level).
        let mut residual = event_algebra::normalize(&dep);
        for &f in &self.occurred {
            residual = event_algebra::residuate(&residual, f);
        }
        self.ground_deps.push(dep);
        self.residuals.push(residual);
    }

    /// Declare `instance` *inevitable*: some task guarantees it will
    /// occur (e.g. the exit event of an entered critical section). Future
    /// acceptance decisions only consider completions containing it.
    pub fn guarantee(&mut self, instance: &str) {
        let sym = self.table.intern(instance);
        self.inevitable.insert(Literal::pos(sym));
        self.wake_parked();
    }

    /// Current synthesized (weakened) guard of a ground literal — for
    /// introspection and the figure-regeneration harness.
    pub fn guard_of(&mut self, lit: Literal) -> Guard {
        let mut g = Guard::top();
        let deps = self.ground_deps.clone();
        for d in &deps {
            if d.mentions(lit.symbol()) {
                g = g.and(&self.synth.guard(d, lit).weaken_sequences());
            }
        }
        for &f in &self.occurred.clone() {
            g = g.assume_occurred(f);
        }
        g
    }

    /// Attempt a ground event by instance name (e.g. `"b1[3]"`).
    pub fn attempt(&mut self, instance: &str) -> Outcome {
        let sym = self.table.intern(instance);
        self.attempt_lit(Literal::pos(sym))
    }

    /// Attempt a ground literal.
    pub fn attempt_lit(&mut self, lit: Literal) -> Outcome {
        if self.resolved.contains(&lit.symbol()) {
            return if self.occurred.contains(&lit) { Outcome::Granted } else { Outcome::Rejected };
        }
        match self.acceptability(lit) {
            Acceptability::Safe => {
                self.parked.remove(&lit);
                self.occur(lit);
                Outcome::Granted
            }
            Acceptability::Dead => {
                self.parked.remove(&lit);
                self.occur(lit.complement());
                Outcome::Rejected
            }
            Acceptability::Unsafe => {
                self.parked.insert(lit);
                Outcome::Parked
            }
        }
    }

    /// Section 3.4's acceptance test, instantiated with inevitability:
    /// `lit` may occur iff for every ground dependency, the residual after
    /// `lit` remains satisfiable by a completion avoiding the complements
    /// of all inevitable events. `Dead` only when *no satisfying
    /// completion of some residual ever contains* `lit` (an immediately
    /// fatal residual merely means "not yet": the attempt parks).
    fn acceptability(&self, lit: Literal) -> Acceptability {
        let avoid: BTreeSet<Literal> = self.inevitable.iter().map(|l| l.complement()).collect();
        let mut safe = true;
        for r in &self.residuals {
            if !event_algebra::satisfiable_avoiding(r, lit.complement()) {
                return Acceptability::Dead;
            }
            let next = event_algebra::residuate(r, lit);
            if !event_algebra::satisfiable(&next)
                || !event_algebra::satisfiable_avoiding_all(&next, &avoid)
            {
                safe = false;
            }
        }
        if safe {
            Acceptability::Safe
        } else {
            Acceptability::Unsafe
        }
    }

    fn occur(&mut self, lit: Literal) {
        self.occurred.push(lit);
        self.resolved.insert(lit.symbol());
        self.inevitable.remove(&lit);
        for r in &mut self.residuals {
            *r = event_algebra::residuate(r, lit);
        }
        self.wake_parked();
    }

    /// Re-evaluate parked attempts (in literal order for determinism).
    fn wake_parked(&mut self) {
        loop {
            let parked: Vec<Literal> = self.parked.iter().copied().collect();
            let mut progressed = false;
            for p in parked {
                if !self.parked.contains(&p) || self.resolved.contains(&p.symbol()) {
                    continue;
                }
                match self.acceptability(p) {
                    Acceptability::Safe => {
                        self.parked.remove(&p);
                        self.occur(p);
                        progressed = true;
                    }
                    Acceptability::Dead => {
                        self.parked.remove(&p);
                        self.occur(p.complement());
                        progressed = true;
                    }
                    Acceptability::Unsafe => {}
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Report an occurrence decided outside the scheduler (an immediate
    /// event).
    pub fn inform(&mut self, instance: &str) {
        let sym = self.table.intern(instance);
        let lit = Literal::pos(sym);
        if !self.resolved.contains(&sym) {
            self.occur(lit);
        }
    }

    /// The realized ground trace so far.
    pub fn trace(&self) -> Trace {
        Trace::new(self.occurred.iter().copied()).expect("occurrences resolve symbols once")
    }

    /// Events currently parked.
    pub fn parked(&self) -> Vec<Literal> {
        self.parked.iter().copied().collect()
    }

    /// Verify every instantiated ground dependency against the maximal
    /// extension of the realized trace (unresolved symbols complemented).
    pub fn all_satisfied(&self) -> bool {
        let mut events: Vec<Literal> = self.occurred.clone();
        let mut syms: BTreeSet<SymbolId> = BTreeSet::new();
        for d in &self.ground_deps {
            syms.extend(d.symbols());
        }
        for s in syms {
            if !self.resolved.contains(&s) {
                events.push(Literal::neg(s));
            }
        }
        let u = Trace::new(events).expect("distinct");
        self.ground_deps.iter().all(|d| event_algebra::satisfies(&u, d))
    }
}

/// Classification of an acceptance decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Acceptability {
    /// Every residual stays satisfiable consistently with guarantees.
    Safe,
    /// Some residual becomes flatly unsatisfiable: the event can never
    /// occur (its complement does).
    Dead,
    /// Satisfiable in general but not consistently with guarantees: park.
    Unsafe,
}

/// Instantiates the ground guard a template demands for one binding.
type TemplateFn = Box<dyn Fn(u64, &mut SymbolTable) -> Guard + Send>;

/// Example 14's parametrized guard: a template over a free variable whose
/// instances appear when matching tokens occur, reduce under facts, and
/// *resurrect* back to the template when discharged.
pub struct ParamGuard {
    /// Template: for each binding of the free variable, this ground guard
    /// must hold (universal quantification).
    template: TemplateFn,
    /// Live instances that are neither discharged nor dead.
    pub instances: BTreeMap<u64, Guard>,
    /// Bindings whose instance died (the guard is 0 overall while any
    /// exists).
    pub dead: BTreeSet<u64>,
}

impl std::fmt::Debug for ParamGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParamGuard")
            .field("instances", &self.instances)
            .field("dead", &self.dead)
            .finish_non_exhaustive()
    }
}

impl ParamGuard {
    /// Build from an instantiation function.
    pub fn new(template: impl Fn(u64, &mut SymbolTable) -> Guard + Send + 'static) -> ParamGuard {
        ParamGuard {
            template: Box::new(template),
            instances: BTreeMap::new(),
            dead: BTreeSet::new(),
        }
    }

    /// A token `value` became relevant (e.g. `f[ŷ]` occurred): ensure an
    /// instance exists, then apply the fact to that instance.
    pub fn on_fact(&mut self, value: u64, fact: Literal, table: &mut SymbolTable) {
        let inst = self.instances.entry(value).or_insert_with(|| (self.template)(value, table));
        *inst = inst.assume_occurred(fact);
        if inst.holds_now() {
            // Discharged: resurrect to the template (drop the instance).
            self.instances.remove(&value);
        } else if self.instances[&value].is_bottom() {
            self.instances.remove(&value);
            self.dead.insert(value);
        }
    }

    /// The guard holds now iff no live blocking instance and no dead one
    /// exists (unseen bindings hold vacuously — `¬f[y]` is true for all
    /// fresh `y`).
    pub fn enabled_now(&self) -> bool {
        self.dead.is_empty() && self.instances.values().all(Guard::holds_now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_grounds_variables() {
        let mut table = SymbolTable::new();
        let t = PExpr::Or(vec![
            PExpr::comp("f", &[Term::Var("y".into())]),
            PExpr::lit("g", &[Term::Var("y".into())]),
        ]);
        let mut b = Binding::new();
        b.insert("y".into(), 3);
        let g = t.instantiate(&b, &mut table);
        assert!(table.lookup("f[3]").is_some());
        assert!(table.lookup("g[3]").is_some());
        assert_eq!(g.symbols().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn instantiate_requires_complete_binding() {
        let mut table = SymbolTable::new();
        let t = PExpr::lit("f", &[Term::Var("y".into())]);
        let _ = t.instantiate(&Binding::new(), &mut table);
    }

    #[test]
    fn token_counters_mint_fresh_ids() {
        let mut c = TokenCounter::new();
        assert_eq!(c.mint("enter"), 1);
        assert_eq!(c.mint("enter"), 2);
        assert_eq!(c.mint("exit"), 1);
        assert_eq!(c.count("enter"), 2);
        assert_eq!(c.count("other"), 0);
    }

    #[test]
    fn example14_guard_grows_shrinks_resurrects() {
        // Guard on e[x]: ¬f[y] + □g[y], y free.
        let mut table = SymbolTable::new();
        let mut pg = ParamGuard::new(|y, table| {
            let f = table.event(&format!("f[{y}]"));
            let g = table.event(&format!("g[{y}]"));
            Guard::not_yet(f).or(&Guard::occurred(g))
        });
        // Initially enabled: no f[y] has happened.
        assert!(pg.enabled_now());
        // f[7] happens → instance □g[7] blocks.
        let f7 = table.event("f[7]");
        pg.on_fact(7, f7, &mut table);
        assert!(!pg.enabled_now());
        assert_eq!(pg.instances.len(), 1);
        // g[7] arrives → instance discharged, guard resurrected.
        let g7 = table.event("g[7]");
        pg.on_fact(7, g7, &mut table);
        assert!(pg.enabled_now());
        assert!(pg.instances.is_empty());
        // A different binding f[9] blocks again — growth after
        // resurrection (the loop case).
        let f9 = table.event("f[9]");
        pg.on_fact(9, f9, &mut table);
        assert!(!pg.enabled_now());
    }

    #[test]
    fn dynamic_scheduler_enforces_pairwise_mutex() {
        // Both directions of Example 13.
        let (d12, d21) = mutex_pair("b1", "e1", "b2", "e2");
        let mut s = DynamicScheduler::new(vec![d12, d21]);
        // Iteration 1 of both tasks.
        s.bind("x", 1);
        s.bind("y", 1);
        assert_eq!(s.attempt("b1[1]"), Outcome::Granted);
        // Entering obligates the exit (task structure): e1[1] will occur.
        s.guarantee("e1[1]");
        // T2 cannot enter while T1 is inside.
        assert_eq!(s.attempt("b2[1]"), Outcome::Parked);
        // T1 exits -> T2's parked enter fires.
        assert_eq!(s.attempt("e1[1]"), Outcome::Granted);
        assert!(s.trace().contains(Literal::pos(s.table.lookup("b2[1]").unwrap())));
        s.guarantee("e2[1]");
        assert_eq!(s.attempt("e2[1]"), Outcome::Granted);
        assert!(s.all_satisfied(), "{}", s.trace());
    }

    #[test]
    fn dynamic_scheduler_handles_loops() {
        // Three iterations of each task, interleaved: the per-agent token
        // counter turns the looping event *types* into fresh instances and
        // each pair of iterations gets its own ground dependency.
        let (d12, d21) = mutex_pair("b1", "e1", "b2", "e2");
        let mut s = DynamicScheduler::new(vec![d12, d21]);
        let mut c1 = TokenCounter::new();
        let mut c2 = TokenCounter::new();
        for _ in 0..3 {
            let k = c1.mint("b1");
            s.bind("x", k);
            assert_eq!(s.attempt(&format!("b1[{k}]")), Outcome::Granted, "iter {k}");
            s.guarantee(&format!("e1[{k}]"));
            assert_eq!(s.attempt(&format!("e1[{k}]")), Outcome::Granted);

            let j = c2.mint("b2");
            s.bind("y", j);
            assert_eq!(s.attempt(&format!("b2[{j}]")), Outcome::Granted, "iter {j}");
            s.guarantee(&format!("e2[{j}]"));
            assert_eq!(s.attempt(&format!("e2[{j}]")), Outcome::Granted);
        }
        assert_eq!(s.ground_deps.len(), 2 * 9, "3x3 bindings per direction");
        assert!(s.all_satisfied(), "{}", s.trace());
    }

    #[test]
    fn never_both_inside_critical_section() {
        // Adversarial interleaving: T2 attempts to enter while T1 is
        // inside; the attempt parks and fires only after T1's exit.
        let (d12, d21) = mutex_pair("b1", "e1", "b2", "e2");
        let mut s = DynamicScheduler::new(vec![d12, d21]);
        for k in 1..=2u64 {
            s.bind("x", k);
            s.bind("y", k);
        }
        assert_eq!(s.attempt("b1[1]"), Outcome::Granted);
        s.guarantee("e1[1]");
        assert_eq!(s.attempt("b2[1]"), Outcome::Parked);
        assert_eq!(s.attempt("b2[2]"), Outcome::Parked);
        assert_eq!(s.attempt("e1[1]"), Outcome::Granted);
        // Both parked enters wake after T1's exit (Example 13 constrains
        // cross-task interleaving only; T2's own iterations are governed
        // by its task structure, not by this dependency).
        let woke1 = s.trace().contains(Literal::pos(s.table.lookup("b2[1]").unwrap()));
        let woke2 = s.trace().contains(Literal::pos(s.table.lookup("b2[2]").unwrap()));
        assert!(woke1 && woke2, "parked enters wake after exit: {}", s.trace());
        // Verify the realized trace never has b2[j] strictly inside
        // [b1[k], e1[k]] or vice versa.
        let trace = s.trace();
        let evs = trace.events();
        let pos_of = |n: &str| {
            s.table.lookup(n).and_then(|sym| evs.iter().position(|&l| l == Literal::pos(sym)))
        };
        for k in 1..=2u64 {
            for j in 1..=2u64 {
                if let (Some(b1), Some(e1), Some(b2)) = (
                    pos_of(&format!("b1[{k}]")),
                    pos_of(&format!("e1[{k}]")),
                    pos_of(&format!("b2[{j}]")),
                ) {
                    assert!(
                        !(b1 < b2 && b2 < e1),
                        "b2[{j}] inside T1's critical section {k}: {trace}"
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_order_attempt_parks_then_fires() {
        // A strict order a·b: attempting b first is premature (parked,
        // not dead — b can still occur after a); once a occurs, the
        // parked b fires.
        let t = PExpr::Seq(vec![
            PExpr::lit("a", &[Term::Var("x".into())]),
            PExpr::lit("b", &[Term::Var("x".into())]),
        ]);
        let mut s = DynamicScheduler::new(vec![t]);
        s.bind("x", 1);
        assert_eq!(s.attempt("b[1]"), Outcome::Parked);
        assert_eq!(s.attempt("a[1]"), Outcome::Granted);
        let b = Literal::pos(s.table.lookup("b[1]").unwrap());
        assert!(s.trace().contains(b), "parked b fired after a: {}", s.trace());
        assert!(s.all_satisfied());
    }

    #[test]
    fn dead_attempt_rejects_and_complements() {
        // A prohibition ~a[x]: a can never occur in any satisfying
        // completion — attempting it is rejected and the complement
        // occurs.
        let t = PExpr::comp("a", &[Term::Var("x".into())]);
        let mut s = DynamicScheduler::new(vec![t]);
        s.bind("x", 1);
        assert_eq!(s.attempt("a[1]"), Outcome::Rejected);
        let a = Literal::pos(s.table.lookup("a[1]").unwrap());
        assert!(s.trace().contains(a.complement()));
        assert!(s.all_satisfied());
        // Repeat attempts stay rejected.
        assert_eq!(s.attempt("a[1]"), Outcome::Rejected);
    }
}
